//! Quickstart: generate a world, run the paper's pipeline, print the
//! headline results.
//!
//! ```sh
//! cargo run --release --example quickstart            # 10% scale
//! SCALE=1.0 cargo run --release --example quickstart  # paper scale
//! ```

use givetake::core::Pipeline;
use givetake::world::{World, WorldConfig};

fn main() {
    let scale: f64 = std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.10);
    let config = if (scale - 1.0).abs() < f64::EPSILON {
        WorldConfig::default()
    } else {
        WorldConfig::scaled(scale)
    };

    eprintln!(
        "generating world at scale {scale} (seed {:#x}) ...",
        config.seed
    );
    let world = World::generate(config);
    eprintln!(
        "  {} tweets, {} streams, {} chain txs, {} web sites",
        world.twitter.len(),
        world.youtube.stream_count(),
        world.chains.total_tx_count(),
        world.web.site_count(),
    );

    eprintln!("running the measurement pipeline ...");
    let run = Pipeline::new(&world).run();
    let r = &run.report;

    println!("== Table 1: datasets ==");
    println!(
        "  Twitter: {} domains, {} accounts, {} tweets",
        r.table1.twitter_domains, r.table1.twitter_accounts, r.table1.twitter_artifacts
    );
    println!(
        "  YouTube: {} domains, {} channels, {} streams",
        r.table1.youtube_domains, r.table1.youtube_accounts, r.table1.youtube_artifacts
    );

    println!("\n== Table 2: revenue (co-occurring / any, USD) ==");
    println!(
        "  Twitter: ${:.0} / ${:.0}  (BTC {:.0}, ETH {:.0}, XRP {:.0})",
        r.twitter_revenue.usd_co_occurring,
        r.twitter_revenue.usd_any,
        r.twitter_revenue.usd_btc,
        r.twitter_revenue.usd_eth,
        r.twitter_revenue.usd_xrp
    );
    println!(
        "  YouTube: ${:.0} / ${:.0}  (BTC {:.0}, ETH {:.0}, XRP {:.0})",
        r.youtube_revenue.usd_co_occurring,
        r.youtube_revenue.usd_any,
        r.youtube_revenue.usd_btc,
        r.youtube_revenue.usd_eth,
        r.youtube_revenue.usd_xrp
    );

    println!("\n== Conversion rates (Section 5.4) ==");
    println!(
        "  Twitter: {} victims / {} tweets = {:.4}% per tweet",
        r.twitter_conversions.unique_senders,
        r.twitter_conversions.denominator,
        r.twitter_conversions.rate * 100.0
    );
    println!(
        "  YouTube: {} victims / {} views = {:.5}% per view",
        r.youtube_conversions.unique_senders,
        r.youtube_conversions.denominator,
        r.youtube_conversions.rate * 100.0
    );
    println!(
        "  payment origins: {:.0}% from exchanges",
        r.origins.exchange_rate * 100.0
    );
    println!(
        "  whales: top {} of {} Twitter payments carry 50% of value",
        r.twitter_whales.top_for_half, r.twitter_whales.payments
    );

    println!("\n== Figure 3/4 weekly volume ==");
    println!("  Twitter {}", r.twitter_weekly.sparkline());
    println!("  YouTube {}", r.youtube_weekly.sparkline());

    println!("\n== Paper vs measured ==");
    print!("{}", r.render_comparison(scale));
}
