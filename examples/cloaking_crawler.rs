//! Cloaking vs the hardened crawler: host one scam site per cloaking
//! behaviour and show which crawler configurations get through —
//! the ablation behind the paper's Section 3.2 counter-measures.
//!
//! ```sh
//! cargo run --example cloaking_crawler
//! ```

use givetake::sim::SimTime;
use givetake::web::crawler::CrawlOutcome;
use givetake::web::{CloakingProfile, Crawler, CrawlerConfig, ScamSiteSpec, Url, WebHost};

fn site(domain: &str, cloaking: CloakingProfile, t0: SimTime) -> ScamSiteSpec {
    ScamSiteSpec {
        domain: domain.into(),
        landing_html: format!(
            "<html>Hurry! Send BTC to 1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa \
             to participate in the {domain} giveaway</html>"
        ),
        front_html: givetake::world::sites::front_html("Elon Musk"),
        cloaking,
        online_from: t0,
        offline_from: None,
    }
}

fn describe(outcome: &CrawlOutcome) -> &'static str {
    match outcome {
        CrawlOutcome::Page { .. } => "PAGE ✔",
        CrawlOutcome::Forbidden => "403",
        CrawlOutcome::Challenged => "challenge",
        CrawlOutcome::StuckAtFrontPage => "front page",
        CrawlOutcome::Error(_) => "error",
    }
}

fn main() {
    let t0 = SimTime::from_ymd(2023, 8, 1);
    let mut web = WebHost::new();
    let cases = [
        ("plain-give.com", CloakingProfile::default()),
        (
            "ip-cloaked-give.com",
            CloakingProfile {
                ip_cloaking: true,
                ..Default::default()
            },
        ),
        (
            "ua-cloaked-give.com",
            CloakingProfile {
                ua_cloaking: true,
                ..Default::default()
            },
        ),
        (
            "frontpage-give.com",
            CloakingProfile {
                front_page: true,
                ..Default::default()
            },
        ),
        (
            "cloudflare-give.com",
            CloakingProfile {
                cloudflare: true,
                ..Default::default()
            },
        ),
        (
            "fort-knox-give.com",
            CloakingProfile {
                ip_cloaking: true,
                ua_cloaking: true,
                front_page: true,
                cloudflare: true,
            },
        ),
    ];
    for (domain, cloaking) in &cases {
        web.add_scam_site(site(domain, *cloaking, t0));
    }

    let crawlers = [
        ("naive", CrawlerConfig::naive()),
        (
            "vpn only",
            CrawlerConfig {
                use_vpn: true,
                ..CrawlerConfig::naive()
            },
        ),
        (
            "vpn + ua",
            CrawlerConfig {
                use_vpn: true,
                spoof_user_agent: true,
                ..CrawlerConfig::naive()
            },
        ),
        ("hardened", CrawlerConfig::default()),
    ];

    print!("{:<24}", "site \\ crawler");
    for (name, _) in &crawlers {
        print!("{name:>14}");
    }
    println!();
    for (domain, _) in &cases {
        print!("{domain:<24}");
        let url = Url::parse(&format!("https://{domain}/")).unwrap();
        for (_, config) in &crawlers {
            let crawler = Crawler::new(*config);
            let outcome = crawler.crawl(&web, &url, t0);
            print!("{:>14}", describe(&outcome));
        }
        println!();
    }

    println!("\nyield per crawler configuration:");
    for (name, config) in &crawlers {
        let crawler = Crawler::new(*config);
        let reached = cases
            .iter()
            .filter(|(domain, _)| {
                let url = Url::parse(&format!("https://{domain}/")).unwrap();
                crawler.crawl(&web, &url, t0).html().is_some()
            })
            .count();
        println!("  {name:<10} {reached}/{} sites", cases.len());
    }
}
