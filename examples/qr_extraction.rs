//! QR lead extraction, end to end: encode a scam URL, paint it into a
//! synthetic video frame like a livestream overlay, scan the frame the
//! way the monitor does, and decode the payload — with damage injected
//! to show the Reed–Solomon correction at work.
//!
//! ```sh
//! cargo run --example qr_extraction
//! ```

use givetake::qr::{decode, encode, scan_frame, EcLevel, Frame};

fn main() {
    let url = "https://xrp-double-event.live/claim?src=qr";

    for level in [EcLevel::L, EcLevel::M, EcLevel::Q, EcLevel::H] {
        let matrix = encode(url.as_bytes(), level).unwrap();
        println!(
            "EC level {level:?}: version {} symbol ({}x{} modules), {:.0}% dark",
            (matrix.size() - 17) / 4,
            matrix.size(),
            matrix.size(),
            matrix.dark_fraction() * 100.0
        );
    }

    // Render into a "video frame" at 2 px/module, off-centre.
    let matrix = encode(url.as_bytes(), EcLevel::H).unwrap();
    let mut frame = Frame::blank(320, 240);
    frame.paint_qr(&matrix, 180, 100, 2);
    println!("\nframe 320x240 with QR at (180,100), scale 2");

    let hits = scan_frame(&frame);
    println!("scanner found {} symbol(s)", hits.len());
    for hit in &hits {
        println!(
            "  at ({}, {}), {} modules: {}",
            hit.left,
            hit.top,
            hit.symbol_size,
            String::from_utf8_lossy(&hit.payload)
        );
    }

    // Injected damage: flip an increasing number of data modules until
    // error correction gives out.
    println!("\ndamage tolerance at EC level H:");
    let mut flipped_total = 0;
    for rounds in [5usize, 15, 30, 60, 120] {
        let mut damaged = matrix.clone();
        let size = damaged.size();
        let mut flipped = 0;
        'outer: for r in 9..size - 9 {
            for c in 9..size - 9 {
                if !damaged.is_function(r, c) && (r * 31 + c * 17) % 7 == 0 {
                    let v = damaged.get(r, c);
                    damaged.set(r, c, !v);
                    flipped += 1;
                    if flipped >= rounds {
                        break 'outer;
                    }
                }
            }
        }
        flipped_total = flipped;
        match decode(&damaged) {
            Ok(payload) => println!(
                "  {flipped:>3} modules flipped: decoded OK ({})",
                String::from_utf8_lossy(&payload)
            ),
            Err(e) => println!("  {flipped:>3} modules flipped: {e}"),
        }
    }
    let _ = flipped_total;
}
