//! Blockchain forensics demo: victims pay a scam address, the scammer
//! consolidates and cashes out, and the analysis side reconstructs the
//! story with multi-input clustering and category tagging — including
//! the CoinJoin trap the clustering must not fall into.
//!
//! ```sh
//! cargo run --example chain_forensics
//! ```

use givetake::addr::{Address, AddressGenerator, BtcAddress, Coin};
use givetake::chain::{Amount, ChainView, OutPoint, TxOut};
use givetake::cluster::{Category, Clustering, TagService};
use givetake::sim::{RngFactory, SimDuration, SimTime};
use rand::SeedableRng;

fn btc(addr: Address) -> BtcAddress {
    match addr {
        Address::Btc(a) => a,
        _ => unreachable!(),
    }
}

fn main() {
    let factory = RngFactory::new(2024);
    let mut gen = AddressGenerator::new(rand::rngs::StdRng::seed_from_u64(
        factory.child_seed("addresses"),
    ));
    let mut chains = ChainView::new();
    let mut tags = TagService::new();
    let mut t = SimTime::from_ymd(2023, 10, 1);

    // The cast.
    let scam_a = btc(gen.generate(Coin::Btc));
    let scam_b = btc(gen.generate(Coin::Btc));
    let exchange: Vec<BtcAddress> = (0..4).map(|_| btc(gen.generate(Coin::Btc))).collect();
    let victims: Vec<BtcAddress> = (0..5).map(|_| btc(gen.generate(Coin::Btc))).collect();
    let cashout_dest = btc(gen.generate(Coin::Btc));
    let mixer = btc(gen.generate(Coin::Btc));
    for e in &exchange {
        tags.tag(Address::Btc(*e), Category::Exchange);
    }
    tags.tag(Address::Btc(mixer), Category::Mixing);

    // Fund everyone.
    for (i, v) in victims.iter().enumerate() {
        chains
            .btc
            .coinbase(*v, Amount(40_000_000 + i as u64 * 10_000_000), t)
            .unwrap();
    }
    for e in &exchange {
        chains.btc.coinbase(*e, Amount(500_000_000), t).unwrap();
    }

    // The exchange co-spends its hot wallets once (a withdrawal batch):
    // this is what lets one tag cover the whole exchange cluster.
    t += SimDuration::hours(1);
    let inputs: Vec<OutPoint> = exchange
        .iter()
        .flat_map(|e| chains.btc.utxos_of(*e).into_iter().map(|(op, _)| op))
        .collect();
    chains
        .btc
        .submit(
            &inputs,
            &[
                TxOut {
                    address: exchange[0],
                    value: Amount(1_500_000_000),
                },
                TxOut {
                    address: exchange[1],
                    value: Amount(499_990_000),
                },
            ],
            t,
        )
        .unwrap();

    // Victims pay the scam: three from personal wallets, two straight
    // from the exchange's custody.
    t += SimDuration::hours(2);
    for v in victims.iter().take(3) {
        chains
            .btc
            .pay(&[*v], scam_a, Amount(30_000_000), *v, Amount(10_000), t)
            .unwrap();
    }
    chains
        .btc
        .pay(
            &[exchange[0]],
            scam_a,
            Amount(80_000_000),
            exchange[0],
            Amount(10_000),
            t,
        )
        .unwrap();
    chains
        .btc
        .pay(
            &[exchange[1]],
            scam_b,
            Amount(120_000_000),
            exchange[1],
            Amount(10_000),
            t,
        )
        .unwrap();

    // A CoinJoin among unrelated users — clustering must skip it.
    t += SimDuration::hours(1);
    let cj_users: Vec<BtcAddress> = (0..4).map(|_| btc(gen.generate(Coin::Btc))).collect();
    for u in &cj_users {
        chains.btc.coinbase(*u, Amount(10_000_000), t).unwrap();
    }
    let cj_inputs: Vec<OutPoint> = cj_users
        .iter()
        .flat_map(|u| chains.btc.utxos_of(*u).into_iter().map(|(op, _)| op))
        .collect();
    let cj_outputs: Vec<TxOut> = (0..4)
        .map(|_| TxOut {
            address: btc(gen.generate(Coin::Btc)),
            value: Amount(9_990_000),
        })
        .collect();
    chains.btc.submit(&cj_inputs, &cj_outputs, t).unwrap();

    // The scammer co-spends both scam addresses to cash out: one output
    // to a fresh address, one to the mixer.
    t += SimDuration::days(2);
    let scam_inputs: Vec<OutPoint> = [scam_a, scam_b]
        .iter()
        .flat_map(|a| chains.btc.utxos_of(*a).into_iter().map(|(op, _)| op))
        .collect();
    chains
        .btc
        .submit(
            &scam_inputs,
            &[
                TxOut {
                    address: cashout_dest,
                    value: Amount(200_000_000),
                },
                TxOut {
                    address: mixer,
                    value: Amount(89_950_000),
                },
            ],
            t,
        )
        .unwrap();

    // ---- the forensics ----
    let mut clustering = Clustering::build(&chains.btc);
    println!("== incoming payments to scam address A ==");
    for transfer in chains.btc.incoming(scam_a) {
        let sender = transfer.senders[0];
        let origin = tags
            .category(sender, &mut clustering)
            .map(|c| c.to_string())
            .unwrap_or_else(|| "unlabeled".into());
        println!(
            "  {} sat from {} ({origin}) at {}",
            transfer.amount, sender, transfer.time
        );
    }

    println!("\n== clustering ==");
    println!(
        "  scam A and scam B share a cluster after the co-spend: {}",
        clustering.same_cluster(scam_a, scam_b)
    );
    println!(
        "  exchange cluster size: {}",
        clustering.cluster_size(exchange[0]).unwrap()
    );
    println!(
        "  CoinJoin participants NOT merged: {} (skipped {} CoinJoin tx)",
        !clustering.same_cluster(cj_users[0], cj_users[1]),
        clustering.skipped_coinjoins
    );

    println!("\n== cash-out destinations ==");
    for transfer in chains.btc.outgoing(scam_a) {
        let label = tags
            .category(transfer.recipient, &mut clustering)
            .map(|c| c.to_string())
            .unwrap_or_else(|| "unlabeled".into());
        println!(
            "  {} sat → {} ({label})",
            transfer.amount, transfer.recipient
        );
    }
}
