//! Livestream monitoring demo: watch a hand-built YouTube platform with
//! one scam stream and one benign stream, and show exactly what the
//! pipeline extracts — search hits, chat leads, QR decodes, crawled
//! landing pages, and the validation verdicts.
//!
//! ```sh
//! cargo run --example livestream_monitor
//! ```

use givetake::core::validate::validate_page;
use givetake::sim::{SimDuration, SimTime};
use givetake::social::{ChatMessage, LiveStream, LiveStreamId, StreamVideo, ViewerCurve, YouTube};
use givetake::stream::keywords::search_keyword_set;
use givetake::stream::monitor::{Monitor, MonitorConfig, UrlSource};
use givetake::web::{CloakingProfile, ScamSiteSpec, WebHost};

fn main() {
    let t0 = SimTime::from_ymd(2023, 9, 5);

    // ---- the platform ----
    let mut youtube = YouTube::new();
    let scam_channel = youtube.add_channel("Crypto News 24/7".into(), 84_000);
    let benign_channel = youtube.add_channel("Market Morning".into(), 12_000);

    youtube.add_stream(LiveStream {
        id: LiveStreamId(0),
        channel: scam_channel,
        title: "Brad Garlinghouse LIVE: 50,000,000 XRP giveaway".into(),
        description: "scan the QR code or use the link to participate".into(),
        language: "en".into(),
        fuzzy_topics: vec![],
        start: t0 + SimDuration::hours(2),
        end: t0 + SimDuration::hours(5),
        video: StreamVideo::ScamLoop {
            qr_url: "https://xrp-double-event.live/claim".into(),
            qr_duty_cycle: None,
            qr_scale: 2,
        },
        viewers: ViewerCurve {
            peak_concurrent: 1_400,
            total_views: 26_000,
        },
        chat: vec![ChatMessage {
            time: t0 + SimDuration::hours(2) + SimDuration::minutes(4),
            author: "event-mod".into(),
            text: "participate here: https://xrp-double-event.live/claim".into(),
        }],
    });
    youtube.add_stream(LiveStream {
        id: LiveStreamId(0),
        channel: benign_channel,
        title: "bitcoin price analysis — where next?".into(),
        description: "daily TA, not financial advice".into(),
        language: "en".into(),
        fuzzy_topics: vec![],
        start: t0 + SimDuration::hours(1),
        end: t0 + SimDuration::hours(4),
        video: StreamVideo::Benign,
        viewers: ViewerCurve {
            peak_concurrent: 300,
            total_views: 2_000,
        },
        chat: vec![ChatMessage {
            time: t0 + SimDuration::hours(1) + SimDuration::minutes(10),
            author: "viewer42".into(),
            text: "charts at https://chart-tools.example-tracker.com".into(),
        }],
    });

    // ---- the web the leads point at (with cloaking!) ----
    let mut web = WebHost::new();
    web.add_scam_site(ScamSiteSpec {
        domain: "xrp-double-event.live".into(),
        landing_html: givetake::world::sites::landing_html(
            "Brad Garlinghouse",
            &[givetake::world::sites::DisplayAddress::tracked(
                givetake::addr::Coin::Xrp,
                givetake::addr::Address::parse("rHb9CJAWyB4rj91VRWn96DkukG4bwdtyTh").unwrap(),
            )],
        ),
        front_html: givetake::world::sites::front_html("Brad Garlinghouse"),
        cloaking: CloakingProfile {
            ip_cloaking: true,
            ua_cloaking: true,
            front_page: true,
            cloudflare: true,
        },
        online_from: t0,
        offline_from: None,
    });
    web.add_benign_site(givetake::web::host::BenignSiteSpec {
        domain: "chart-tools.example-tracker.com".into(),
        html: "<html><h1>Portfolio charts</h1></html>".into(),
    });

    // ---- run the monitor for one virtual day ----
    let mut config = MonitorConfig::paper(t0, t0 + SimDuration::days(1));
    config.outage_days.clear();
    let keywords = search_keyword_set();
    let monitor = Monitor::new(config, search_keyword_set());
    let report = monitor.run(&youtube, &web);

    println!("== observed streams ==");
    for s in &report.streams {
        println!(
            "  [{}] {:?} \"{}\" — {} samples, {} with QR, peak {} concurrent, {} total views",
            s.channel_name,
            s.stream,
            s.title,
            s.samples,
            s.qr_samples,
            s.max_concurrent,
            s.max_total_views
        );
    }

    println!("\n== URL leads ==");
    for lead in &report.leads {
        let how = match lead.source {
            UrlSource::QrCode => "QR code",
            UrlSource::Chat => "chat",
        };
        println!(
            "  {} via {} (stream {:?}, first seen {})",
            lead.url, how, lead.stream, lead.first_seen
        );
    }

    println!("\n== crawled pages & validation ==");
    for (url, page) in &report.pages {
        let host = givetake::web::Url::parse(url).unwrap().host;
        let verdict = validate_page(&host, &page.html, &keywords);
        println!(
            "  {url}: {} bytes — addresses={} html_kw={} domain_kw={} → {}",
            page.html.len(),
            verdict.addresses.len(),
            verdict.html_keywords,
            verdict.domain_keywords,
            if verdict.is_scam() { "SCAM" } else { "benign" }
        );
        for a in &verdict.addresses {
            println!("      {} address {}", a.coin(), a);
        }
    }
}
