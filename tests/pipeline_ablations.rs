//! Ablation-style integration tests: the pipeline's design choices
//! must actually matter, and the whole run must be deterministic.

use givetake::core::Pipeline;
use givetake::sim::SimDuration;
use givetake::stream::keywords::search_keyword_set;
use givetake::stream::monitor::{Monitor, MonitorConfig};
use givetake::web::CrawlerConfig;
use givetake::world::{World, WorldConfig};
use std::sync::OnceLock;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| {
        let mut config = WorldConfig::scaled(0.03);
        config.seed = 0xAB1A;
        World::generate(config)
    })
}

#[test]
fn full_pipeline_is_deterministic() {
    let w = world();
    let a = Pipeline::new(w).run();
    let b = Pipeline::new(w).run();
    assert_eq!(a.report, b.report);
}

#[test]
fn naive_crawler_recovers_fewer_domains() {
    let w = world();
    let window_end = w.config.youtube_start + SimDuration::days(21);

    let run_with = |crawler: CrawlerConfig| {
        let mut config = MonitorConfig::paper(w.config.youtube_start, window_end);
        config.crawler = crawler;
        let monitor = Monitor::new(config, search_keyword_set());
        let report = monitor.run(&w.youtube, &w.web);
        let keywords = search_keyword_set();
        givetake::core::datasets::build_youtube_dataset(&report, &keywords)
            .domains
            .len()
    };

    let hardened = run_with(CrawlerConfig::default());
    let naive = run_with(CrawlerConfig::naive());
    assert!(
        naive < hardened,
        "cloaking must cost the naive crawler domains: naive {naive} vs hardened {hardened}"
    );
    assert!(hardened > 0);
}

#[test]
fn outage_days_reduce_observations() {
    let w = world();
    let window_end = w.config.youtube_start + SimDuration::days(7);

    let run_with = |outages: Vec<givetake::sim::CivilDate>| {
        let mut config = MonitorConfig::paper(w.config.youtube_start, window_end);
        config.outage_days = outages;
        let monitor = Monitor::new(config, search_keyword_set());
        monitor.run(&w.youtube, &w.web)
    };

    let clean = run_with(vec![]);
    // Knock out the first three days of the week.
    let start_date = w.config.youtube_start.date();
    let d2 = start_date.succ();
    let d3 = d2.succ();
    let outaged = run_with(vec![start_date, d2, d3]);
    assert!(outaged.searches_run < clean.searches_run);
    assert!(outaged.samples_run <= clean.samples_run);
    assert!(outaged.outage_ticks_skipped > 0);
}

#[test]
fn co_occurrence_window_sweep_is_monotone() {
    let w = world();
    let dataset = givetake::core::datasets::build_twitter_dataset(&w.twitter, &w.scam_db);
    let known = std::collections::HashSet::new();
    let clustering = givetake::cluster::ClusterView::build(&w.chains.btc);
    let tags = w.tags.resolver(&clustering);
    let mut previous = 0;
    let mut counts = Vec::new();
    for days in [0i64, 1, 3, 7, 30] {
        let analysis = givetake::core::payments::analyze_twitter_with_window(
            &dataset,
            SimDuration::days(days),
            &w.chains,
            &w.prices,
            &tags,
            &clustering,
            &known,
        );
        let n = analysis.funnel.payments_co_occurring_raw;
        assert!(
            n >= previous,
            "window {days}d lost payments: {n} < {previous}"
        );
        // "Any" payments are window-independent.
        assert_eq!(analysis.funnel.payments_any, analysis.payments.len());
        previous = n;
        counts.push(n);
    }
    // The sweep must actually discriminate: a zero-width window catches
    // (almost) nothing; a 30-day window catches more than the 1-day one.
    assert!(counts[0] < counts[4], "sweep flat: {counts:?}");
    assert!(counts[1] < counts[4], "sweep flat at the top: {counts:?}");
}

#[test]
fn coinjoin_unaware_clustering_merges_more() {
    let w = world();
    let aware = givetake::cluster::clustering::Clustering::build_with(
        &w.chains.btc,
        givetake::cluster::clustering::ClusteringOptions {
            coinjoin_aware: true,
        },
    );
    let naive = givetake::cluster::clustering::Clustering::build_with(
        &w.chains.btc,
        givetake::cluster::clustering::ClusteringOptions {
            coinjoin_aware: false,
        },
    );
    // Our world contains no CoinJoins by default, so the counts should
    // match — the ablation still checks the plumbing end to end.
    assert!(naive.cluster_count() <= aware.cluster_count());
    assert_eq!(aware.address_count(), naive.address_count());
}

#[test]
fn disabling_crawl_yields_no_pages() {
    let w = world();
    let mut config = MonitorConfig::paper(
        w.config.youtube_start,
        w.config.youtube_start + SimDuration::days(3),
    );
    config.crawl = false;
    let monitor = Monitor::new(config, search_keyword_set());
    let report = monitor.run(&w.youtube, &w.web);
    assert!(report.pages.is_empty());
    assert_eq!(report.crawl_attempts, 0);
    // Leads are still collected — only the crawl is off.
    assert!(!report.leads.is_empty());
}
