//! Chaos suite: the pipeline must complete under injected faults, and
//! fault runs may only *lose* observations relative to a clean run
//! (snapshot semantics: a retried call serves data as of its original
//! tick, a lost call serves nothing — faults never invent data).
//!
//! The clean-run determinism contract is pinned too: a `None` plan and
//! a quiet plan are exact no-ops, byte-identical to pre-fault behavior.

use givetake::core::{PaperRun, Pipeline};
use givetake::sim::faults::{ChaosProfile, FaultPlan};
use givetake::world::{World, WorldConfig};
use std::sync::OnceLock;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| {
        let mut config = WorldConfig::scaled(0.03);
        config.seed = 0xC4A0_5EED;
        World::generate(config)
    })
}

fn clean() -> &'static PaperRun {
    static R: OnceLock<PaperRun> = OnceLock::new();
    R.get_or_init(|| Pipeline::new(world()).threads(2).run())
}

/// Assert every "faults only remove observations" invariant against the
/// clean run.
fn assert_degraded_not_inflated(chaos: &PaperRun) {
    let base = clean();

    // Twitter's dataset comes straight from the archived tweet corpus —
    // no live collection, so no fault surface.
    assert_eq!(
        chaos.report.table1.twitter_domains,
        base.report.table1.twitter_domains
    );
    assert_eq!(
        chaos.report.table1.twitter_accounts,
        base.report.table1.twitter_accounts
    );
    assert_eq!(
        chaos.report.table1.twitter_artifacts,
        base.report.table1.twitter_artifacts
    );

    // YouTube's dataset is built from what the (faulted) monitor saw.
    assert!(chaos.report.table1.youtube_domains <= base.report.table1.youtube_domains);
    assert!(chaos.report.table1.youtube_accounts <= base.report.table1.youtube_accounts);
    assert!(chaos.report.table1.youtube_artifacts <= base.report.table1.youtube_artifacts);

    // Payment funnels go through the fault-gated RPC view.
    assert!(
        chaos.report.twitter_funnel.payments_final <= base.report.twitter_funnel.payments_final
    );
    assert!(
        chaos.report.youtube_funnel.payments_final <= base.report.youtube_funnel.payments_final
    );

    // Revenue is a sum over a subset of the clean payments.
    assert!(chaos.report.twitter_revenue.usd_any <= base.report.twitter_revenue.usd_any + 1e-6);
    assert!(chaos.report.youtube_revenue.usd_any <= base.report.youtube_revenue.usd_any + 1e-6);

    // Victim counts can only shrink.
    assert!(
        chaos.report.twitter_conversions.unique_senders
            <= base.report.twitter_conversions.unique_senders
    );
    assert!(
        chaos.report.youtube_conversions.unique_senders
            <= base.report.youtube_conversions.unique_senders
    );

    // Conversion *rates* stay in the clean run's ballpark: numerator and
    // denominator both shrink, so the ratio must not explode.
    for (c, b) in [
        (
            &chaos.report.twitter_conversions,
            &base.report.twitter_conversions,
        ),
        (
            &chaos.report.youtube_conversions,
            &base.report.youtube_conversions,
        ),
    ] {
        assert!(c.rate.is_finite());
        assert!(
            c.rate <= b.rate * 3.0 + 1e-9,
            "rate {} vs clean {}",
            c.rate,
            b.rate
        );
    }
}

#[test]
fn pipeline_completes_under_seeded_chaos() {
    for seed in [1u64, 2, 0xBAD_CAFE] {
        let chaos = Pipeline::new(world())
            .threads(2)
            .chaos(seed, &ChaosProfile::default())
            .run();
        assert!(chaos.degradation.enabled, "seed {seed}: plan attached");
        assert!(
            chaos.degradation.total.injected() > 0,
            "seed {seed}: default profile injects faults over a multi-month span"
        );
        assert_degraded_not_inflated(&chaos);
    }
}

#[test]
fn severe_chaos_still_completes() {
    let chaos = Pipeline::new(world())
        .threads(2)
        .chaos(9, &ChaosProfile::severe())
        .run();
    assert!(chaos.degradation.total.injected() > 0);
    assert!(
        chaos.degradation.total.lost > 0,
        "severe profile loses calls"
    );
    assert_degraded_not_inflated(&chaos);
}

#[test]
fn degradation_accounting_is_consistent() {
    let chaos = Pipeline::new(world())
        .threads(2)
        .chaos(5, &ChaosProfile::default())
        .run();
    let d = &chaos.degradation;

    // The total is exactly the merge of the per-stage entries.
    let mut summed = givetake::sim::faults::DegradationStats::default();
    for stage in &d.stages {
        summed.merge(&stage.stats);
    }
    assert_eq!(summed, d.total);

    // Every fault-gated stage reports, in a stable order.
    let names: Vec<&str> = d.stages.iter().map(|s| s.stage.as_str()).collect();
    assert_eq!(
        names,
        [
            "pilot_monitor",
            "main_monitor",
            "twitch_pilot",
            "twitter_payments",
            "youtube_payments",
            "outgoing_stats",
        ]
    );

    // Every injected fault belongs to a call that ended either
    // recovered or lost.
    if d.total.injected() > 0 {
        assert!(d.total.recovered + d.total.lost >= 1);
    }
    // Retries only happen in response to injected faults.
    assert!(d.total.retries <= d.total.injected() * 4);
}

#[test]
fn chaos_run_is_reproducible() {
    let a = Pipeline::new(world())
        .threads(2)
        .chaos(11, &ChaosProfile::default())
        .run();
    let b = Pipeline::new(world())
        .threads(2)
        .chaos(11, &ChaosProfile::default())
        .run();
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap()
    );
    assert_eq!(a.degradation, b.degradation);
}

#[test]
fn quiet_plan_matches_clean_run_byte_for_byte() {
    let quiet = Pipeline::new(world())
        .threads(2)
        .fault_plan(Some(FaultPlan::quiet(42)))
        .run();
    assert!(quiet.degradation.enabled);
    assert!(
        quiet.degradation.total.is_zero(),
        "quiet plan injects nothing"
    );
    assert_eq!(
        serde_json::to_string(&quiet.report).unwrap(),
        serde_json::to_string(&clean().report).unwrap(),
        "a fault plan with no windows must be an exact no-op"
    );
}

#[test]
fn clean_run_reports_disabled_degradation() {
    let base = clean();
    assert!(!base.degradation.enabled);
    assert!(base.degradation.total.is_zero());
    for stage in &base.degradation.stages {
        assert!(
            stage.stats.is_zero(),
            "stage {} degraded without a plan",
            stage.stage
        );
    }
}
