//! Checkpoint/resume pins: the stage-result store must never change
//! what the pipeline computes — only whether it recomputes. The
//! `PaperReport` JSON must be byte-identical across {no store, cold
//! store, warm store, resumed-after-kill} and across thread counts
//! sharing one store directory; a killed run must resume from its
//! completed stages instead of starting over.

use givetake::core::{PaperRun, Pipeline};
use givetake::store::RunStore;
use givetake::world::{World, WorldConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

const STAGES: u64 = 25;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| {
        let mut config = WorldConfig::scaled(0.03);
        config.seed = 0x5709_CAFE;
        World::generate(config)
    })
}

fn baseline_json() -> &'static str {
    static J: OnceLock<String> = OnceLock::new();
    J.get_or_init(|| {
        let run = Pipeline::new(world()).threads(1).run();
        serde_json::to_string(&run.report).expect("report serializes")
    })
}

fn json(run: &PaperRun) -> String {
    serde_json::to_string(&run.report).expect("report serializes")
}

/// Sum of one store counter across all stages.
fn store_metric(run: &PaperRun, metric: &str) -> u64 {
    run.telemetry
        .metrics
        .iter()
        .filter(|m| m.substrate == "store" && m.metric == metric)
        .map(|m| m.value)
        .sum()
}

/// A fresh scratch directory (removed on drop) for one test's store.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("gt-store-it-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn open(&self) -> Arc<RunStore> {
        Arc::new(RunStore::open(&self.0).expect("store opens"))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn cold_and_warm_runs_match_the_storeless_report() {
    let scratch = Scratch::new("cold-warm");
    let store = scratch.open();

    let cold = Pipeline::new(world())
        .threads(1)
        .store(Some(store.clone()))
        .run();
    assert_eq!(json(&cold), baseline_json(), "cold-store report diverged");
    assert_eq!(store_metric(&cold, "cache_hit"), 0);
    assert_eq!(store_metric(&cold, "cache_miss"), STAGES);

    let warm = Pipeline::new(world()).threads(1).store(Some(store)).run();
    assert_eq!(json(&warm), baseline_json(), "warm-store report diverged");
    assert_eq!(
        store_metric(&warm, "cache_hit"),
        STAGES,
        "a warm identical run must hit on every stage"
    );
    assert_eq!(store_metric(&warm, "cache_miss"), 0);
}

#[test]
fn thread_counts_share_one_store_directory() {
    // Keys are a pure function of sim state, so a 1-thread run's
    // entries serve 2- and 4-thread runs (and vice versa) — the
    // interchangeability that makes the store safe under `--threads`.
    let scratch = Scratch::new("threads");
    let store = scratch.open();

    for (i, threads) in [1usize, 2, 4].into_iter().enumerate() {
        let run = Pipeline::new(world())
            .threads(threads)
            .store(Some(store.clone()))
            .run();
        assert_eq!(
            json(&run),
            baseline_json(),
            "{threads}-thread stored report diverged"
        );
        let expected_hits = if i == 0 { 0 } else { STAGES };
        assert_eq!(
            store_metric(&run, "cache_hit"),
            expected_hits,
            "{threads}-thread run should {} the shared entries",
            if i == 0 { "populate" } else { "reuse" }
        );
    }
}

#[test]
fn killed_run_resumes_from_completed_stages() {
    let scratch = Scratch::new("kill-resume");

    // Let 6 stage writes complete, then die mid-write — the store
    // panics like a `kill -9` would leave the process: some entries
    // durable, one torn temp file, nothing else.
    let store = scratch.open();
    store.fail_writes_after(6);
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        Pipeline::new(world())
            .threads(1)
            .store(Some(store.clone()))
            .run()
    }));
    assert!(crashed.is_err(), "the simulated crash must abort the run");
    drop(store);

    // A new process: reopen the same directory and rerun. Only the
    // unfinished stages may execute.
    let store = scratch.open();
    let resumed = Pipeline::new(world()).threads(2).store(Some(store)).run();
    assert_eq!(
        json(&resumed),
        baseline_json(),
        "resumed report diverged from an uninterrupted run"
    );
    assert_eq!(
        store_metric(&resumed, "cache_hit"),
        6,
        "every entry the crashed run completed must be reused"
    );
    assert_eq!(store_metric(&resumed, "cache_miss"), STAGES - 6);
}

#[test]
fn multi_thread_crash_also_resumes() {
    // The simulated-crash panic fires inside a pool worker; it must
    // poison the run (not deadlock) and still leave a resumable store.
    let scratch = Scratch::new("kill-resume-mt");
    let store = scratch.open();
    store.fail_writes_after(4);
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        Pipeline::new(world())
            .threads(4)
            .store(Some(store.clone()))
            .run()
    }));
    assert!(crashed.is_err());
    drop(store);

    let store = scratch.open();
    let resumed = Pipeline::new(world()).threads(4).store(Some(store)).run();
    assert_eq!(json(&resumed), baseline_json());
    assert_eq!(store_metric(&resumed, "cache_hit"), 4);
}

#[test]
fn changed_tail_parameter_reuses_all_upstream_stages() {
    let scratch = Scratch::new("warm-tail");
    let store = scratch.open();

    let cold = Pipeline::new(world())
        .threads(2)
        .store(Some(store.clone()))
        .run();
    assert_eq!(store_metric(&cold, "cache_miss"), STAGES);

    // Change only the intervention lags: a stage-local salt, invisible
    // to every other stage. The warm run must recompute exactly one
    // stage and replay the other 24 from the store.
    let lags = [
        givetake::sim::SimDuration::ZERO,
        givetake::sim::SimDuration::hours(2),
    ];
    let warm = Pipeline::new(world())
        .threads(2)
        .store(Some(store))
        .intervention_lags(&lags)
        .run();
    assert_eq!(store_metric(&warm, "cache_hit"), STAGES - 1);
    assert_eq!(store_metric(&warm, "cache_miss"), 1);
    assert_eq!(warm.report.interventions.len(), 2, "new lags took effect");

    // Everything upstream of the sweep is identical.
    assert_eq!(warm.report.table1, cold.report.table1);
    assert_eq!(warm.report.twitter_funnel, cold.report.twitter_funnel);
    assert_eq!(warm.report.youtube_funnel, cold.report.youtube_funnel);
    assert_eq!(warm.report.origins, cold.report.origins);
    assert_eq!(warm.report.recipients, cold.report.recipients);
    assert_eq!(warm.report.outgoing, cold.report.outgoing);
}

#[test]
fn store_off_on_and_evict_leave_no_trace_in_the_report() {
    // Interleave storeless and stored runs and an evict; the report
    // never wavers and eviction keeps the active run servable.
    let scratch = Scratch::new("evict");
    let store = scratch.open();
    let options = givetake::core::PipelineOptions::default().threads(2);
    let base = options.base_fingerprint(&world().config);
    let world_fpr = World::fingerprint(&world().config);

    let cold = Pipeline::new(world())
        .threads(2)
        .store(Some(store.clone()))
        .run();
    assert_eq!(json(&cold), baseline_json());
    assert_eq!(store.stage_entry_count(&base), STAGES as usize);

    let stats = store.evict(&base, &world_fpr).expect("evict succeeds");
    assert_eq!(stats.stage_groups, 0, "the active run's group survives");
    assert_eq!(store.stage_entry_count(&base), STAGES as usize);

    let warm = Pipeline::new(world()).threads(2).store(Some(store)).run();
    assert_eq!(json(&warm), baseline_json());
    assert_eq!(store_metric(&warm, "cache_hit"), STAGES);
}
