//! End-to-end integration: generate a world, run the full pipeline,
//! and check that the paper's qualitative findings reproduce.

use givetake::core::Pipeline;
use givetake::world::{World, WorldConfig};

/// One shared small-scale run (world generation plus full pipeline) so
/// the suite stays fast.
fn shared_run() -> &'static givetake::core::PaperRun {
    use std::sync::OnceLock;
    static RUN: OnceLock<givetake::core::PaperRun> = OnceLock::new();
    RUN.get_or_init(|| {
        let mut config = WorldConfig::scaled(0.04);
        // A seed whose 4%-scale sample reproduces the paper's qualitative
        // findings; at this size some draws land outside the expected
        // bands (small-sample variance, not a pipeline defect).
        config.seed = 0xD15C_0B01;
        let world = World::generate(config);
        Pipeline::new(&world).run()
    })
}

#[test]
fn datasets_are_assembled_on_both_platforms() {
    let run = shared_run();
    let t1 = &run.report.table1;
    assert!(t1.twitter_domains > 0, "Twitter domains found");
    assert!(t1.twitter_artifacts > 1_000, "scam tweets found");
    assert!(t1.twitter_accounts > 100, "posting accounts found");
    assert!(t1.youtube_domains > 0, "YouTube scam domains validated");
    assert!(t1.youtube_artifacts > 0, "scam streams observed");
    assert!(
        t1.youtube_accounts <= t1.youtube_artifacts,
        "channels never exceed streams"
    );
}

#[test]
fn monitoring_recovers_most_scam_streams() {
    let run = shared_run();
    let world_streams = WorldConfig::scaled(0.04).scam_streams;
    let found = run.report.table1.youtube_artifacts;
    // Keyword search + QR/chat leads + validation should recover the
    // large majority of generated scam streams.
    assert!(
        found * 10 >= world_streams * 6,
        "found {found} of {world_streams} scam streams"
    );
}

#[test]
fn revenue_reproduces_table_2_shape() {
    let run = shared_run();
    let tw = &run.report.twitter_revenue;
    let yt = &run.report.youtube_revenue;

    // Twitter beats YouTube on co-occurring revenue (2.7M vs 1.9M).
    assert!(tw.usd_co_occurring > yt.usd_co_occurring);
    // "Any" revenue far exceeds co-occurring on both platforms.
    assert!(tw.usd_any > tw.usd_co_occurring * 1.5);
    assert!(yt.usd_any > yt.usd_co_occurring * 1.5);
    // Per-coin structure: BTC dominates YouTube; XRP strong on Twitter.
    assert!(yt.usd_btc > yt.usd_eth && yt.usd_btc > yt.usd_xrp);
    assert!(tw.usd_xrp > tw.usd_eth);
    // Totals are consistent.
    let sum = tw.usd_btc + tw.usd_eth + tw.usd_xrp;
    assert!((sum - tw.usd_co_occurring).abs() < 1.0);
}

#[test]
fn funnels_match_the_papers_structure() {
    let run = shared_run();
    let tw = &run.report.twitter_funnel;
    // Fewer than all domains have coin addresses; fewer than all of
    // those get paid (paper: 361 → 258 → 121).
    assert!(tw.domains_with_coin > 0);
    assert!(tw.domains_paid < tw.domains_with_coin);
    assert!(tw.domains_paid > 0);
    // Only a minority of payments co-occur with lures (43% / 34%).
    assert!(tw.payments_co_occurring_raw < tw.payments_any);
    assert!(tw.consolidations_removed > 0, "scam senders filtered");
    assert_eq!(
        tw.payments_final,
        tw.payments_co_occurring_raw - tw.consolidations_removed
    );
    let yt = &run.report.youtube_funnel;
    assert!(yt.payments_final > 0);
    assert!(yt.payments_co_occurring_raw < yt.payments_any);
}

#[test]
fn conversion_rates_are_orders_of_magnitude_apart() {
    let run = shared_run();
    let tw = run.report.twitter_conversions;
    let yt = run.report.youtube_conversions;
    // Twitter: ~0.12% per tweet. Allow a generous band at small scale.
    assert!(
        (0.0004..0.004).contains(&tw.rate),
        "twitter conversion {}",
        tw.rate
    );
    // YouTube: ~0.0039% per view.
    assert!(
        (0.000004..0.0004).contains(&yt.rate),
        "youtube conversion {}",
        yt.rate
    );
    // Twitter per-tweet conversion is orders of magnitude above the
    // per-view rate.
    assert!(tw.rate > yt.rate * 5.0);
}

#[test]
fn exchange_origins_dominate() {
    let run = shared_run();
    let origins = run.report.origins;
    assert!(origins.payments > 0);
    assert!(
        (0.40..0.75).contains(&origins.exchange_rate),
        "exchange rate {}",
        origins.exchange_rate
    );
}

#[test]
fn whale_distribution_is_top_heavy() {
    let run = shared_run();
    for whales in [&run.report.twitter_whales, &run.report.youtube_whales] {
        assert!(whales.payments > 0);
        // A small fraction of payments carries half the value.
        assert!(
            whales.top_for_half * 5 < whales.payments,
            "{} of {} payments for half the value",
            whales.top_for_half,
            whales.payments
        );
        assert!(whales.top_for_half <= whales.top_for_90pct);
    }
}

#[test]
fn scammers_keep_btc_clusters_small() {
    let run = shared_run();
    let r = &run.report.recipients;
    assert!(r.btc_recipients > 0);
    let singleton_rate = r.btc_singletons as f64 / r.btc_recipients as f64;
    assert!(
        singleton_rate > 0.7,
        "singleton rate {singleton_rate} (paper: 87%)"
    );
}

#[test]
fn cashout_is_mostly_unlabeled_with_some_exchanges() {
    let run = shared_run();
    let out = &run.report.outgoing;
    assert!(out.recipients > 0);
    assert!(out.unlabeled_rate() > 0.7, "{}", out.unlabeled_rate());
    // Some outgoing edges reach known services.
    let labeled: usize = out.by_category.values().sum();
    assert!(labeled > 0);
}

#[test]
fn twitch_pilot_finds_no_scams() {
    let run = shared_run();
    assert_eq!(run.report.twitch.scams_found, 0);
    assert!(run.report.twitch.streams_listed > 0);
}

#[test]
fn weekly_timelines_have_bursts() {
    let run = shared_run();
    let tw = &run.report.twitter_weekly;
    assert_eq!(tw.total_count(), run.report.table1.twitter_artifacts as u64);
    // The peak week carries a disproportionate share (paper: ~20%).
    let peak_share = tw.peak().count as f64 / tw.total_count().max(1) as f64;
    assert!(peak_share > 0.1, "peak share {peak_share}");
    let yt = &run.report.youtube_weekly;
    assert!(yt.total_count() > 0);
}

#[test]
fn comparison_table_renders() {
    let run = shared_run();
    let rows = run.report.compare_with_paper(0.04);
    assert!(rows.len() > 40, "comparison covers every artifact");
    let text = run.report.render_comparison(0.04);
    assert!(text.contains("twitter USD (co-occurring)"));
    assert!(text.contains("T1"));
    // And it serializes for EXPERIMENTS.md tooling.
    let json = serde_json::to_string(&run.report).unwrap();
    assert!(json.contains("twitter_revenue"));
}

#[test]
fn pilot_tracks_qr_persistence() {
    let run = shared_run();
    let qr = run
        .report
        .qr_pilot
        .as_ref()
        .expect("pilot observed QR codes");
    assert!(qr.tracked > 0);
    assert!(qr.mean_seconds > 0.0);
    assert!(qr.median_seconds <= qr.mean_seconds * 2.0);
}
