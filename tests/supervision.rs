//! Supervision suite: a recovering [`SupervisionPolicy`] must keep runs
//! alive — retrying flaky stages, quarantining dead ones behind their
//! declared fallbacks, tainting every transitive dependent, and naming
//! the degraded report tables — while changing *nothing* about healthy
//! runs: under a quiet fault plan a supervised pipeline is byte-identical
//! to an unsupervised one at any thread count.

use givetake::core::{Pipeline, StageGraph, StageStatus, SupervisionPolicy};
use givetake::sim::faults::{FaultKind, FaultPlan, FaultWindow, Substrate};
use givetake::store::{digest, RunStore};
use givetake::world::{World, WorldConfig};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| {
        let mut config = WorldConfig::scaled(0.02);
        config.seed = 0x5AFE_5EED;
        World::generate(config)
    })
}

/// A fresh scratch directory (removed on drop) for one test's store.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("gt-sup-it-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn open(&self) -> Arc<RunStore> {
        Arc::new(RunStore::open(&self.0).expect("store opens"))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn flaky_stage_recovers_and_the_timeline_records_it() {
    let fails = AtomicU32::new(0);
    let mut g = StageGraph::new();
    g.supervise(SupervisionPolicy::recover(3));
    let a = g.add_stage("a", &[], |_| 5u64);
    let b = g.add_stage("b", &[a.index()], |r| {
        if fails.fetch_add(1, Ordering::SeqCst) < 2 {
            panic!("flaky substrate");
        }
        r.get(a) + 1
    });
    let mut out = g.run(4);
    assert_eq!(out.take(b), 6, "the third attempt's real output is served");
    let h = &out.health;
    assert!(h.supervised);
    assert_eq!(h.attempts, 4, "two stages plus two extra attempts");
    assert_eq!(h.retries, 2);
    assert!(h.quarantined.is_empty());
    assert!(h.tainted.is_empty());
    assert_eq!(h.stages[b.index()].status, StageStatus::Recovered);
    assert_eq!(h.stages[b.index()].attempts, 3);
    assert!(h.stages[b.index()]
        .error
        .as_deref()
        .is_some_and(|e| e.contains("flaky substrate")));
}

#[test]
fn quarantined_diamond_stage_degrades_dependents_not_the_run() {
    // a ─▶ {b (always panics), c} ─▶ d: the diamond must complete with
    // b's fallback, and d — which consumed it — must be tainted.
    let mut g = StageGraph::new();
    g.supervise(SupervisionPolicy::recover(2));
    let a = g.add_stage("a", &[], |_| 100u64);
    let b = g.add_stage("b", &[a.index()], |_| -> u64 { panic!("b is dead") });
    g.fallback(b, |r| r.get(a) + 7);
    let c = g.add_stage("c", &[a.index()], |r| r.get(a) + 1);
    let d = g.add_stage("d", &[b.index(), c.index()], |r| r.get(b) + r.get(c));
    let mut out = g.run(2);
    assert_eq!(out.take(d), 107 + 101, "d ran over the fallback value");
    let h = &out.health;
    assert_eq!(h.quarantined, vec!["b"]);
    assert_eq!(h.tainted, vec!["d"], "c never read b and stays clean");
    assert_eq!(h.stages[b.index()].status, StageStatus::Quarantined);
    assert_eq!(h.stages[b.index()].attempts, 2);
    assert!(h.stages[d.index()].tainted);
    assert!(!h.stages[c.index()].tainted);

    // The same graph in strict mode keeps the poison semantics.
    let mut g = StageGraph::new();
    let a = g.add_stage("a", &[], |_| 100u64);
    let b = g.add_stage("b", &[a.index()], |_| -> u64 { panic!("b is dead") });
    g.fallback(b, |r| r.get(a) + 7);
    let _ = b;
    assert!(
        catch_unwind(AssertUnwindSafe(|| g.run(2))).is_err(),
        "strict mode must re-raise the panic, fallback or not"
    );
}

#[test]
fn quarantining_the_first_of_25_stages_taints_the_whole_chain() {
    // Worst-case fan-out: the root of a 25-stage chain dies, every
    // other stage is a transitive dependent.
    let mut g = StageGraph::new();
    g.supervise(SupervisionPolicy::recover(2));
    let root = g.add_stage("s00", &[], |_| -> u64 { panic!("dead root") });
    g.fallback(root, |_| 0u64);
    let mut prev = root;
    for i in 1..25 {
        let dep = prev;
        prev = g.add_stage(&format!("s{i:02}"), &[dep.index()], move |r| r.get(dep) + 1);
    }
    let mut out = g.run(4);
    assert_eq!(out.take(prev), 24, "the chain ran over the fallback root");
    let h = &out.health;
    assert_eq!(h.quarantined, vec!["s00"]);
    assert_eq!(h.tainted.len(), 24, "every dependent is tainted");
    assert!(h.stages.iter().skip(1).all(|s| s.tainted));
    assert_eq!(h.attempts, 2 + 24, "root retried once, the rest ran once");
}

#[test]
fn persist_crash_quarantines_and_a_fresh_run_resumes_from_survivors() {
    let scratch = Scratch::new("persist-crash");
    let a_runs = AtomicU32::new(0);
    let b_runs = AtomicU32::new(0);

    // Run 1: the first stage write lands, every later write panics
    // mid-persist (the `kill -9` simulation). Supervision retries b —
    // re-probing the store first — and quarantines it when the persist
    // dies again.
    {
        let store = scratch.open();
        store.fail_writes_after(1);
        let mut g = StageGraph::new();
        g.bind_store(store, digest(b"supervision-persist"));
        g.supervise(SupervisionPolicy::recover(2));
        let a = g.add_cached_stage("a", &[], &[], |_| {
            a_runs.fetch_add(1, Ordering::SeqCst);
            7u64
        });
        let b = g.add_cached_stage("b", &[], &[a.index()], |r| {
            b_runs.fetch_add(1, Ordering::SeqCst);
            r.get(a) * 10
        });
        g.fallback(b, |_| 0u64);
        let c = g.add_stage("c", &[b.index()], |r| r.get(b) + 1);
        let mut out = g.run(1);
        assert_eq!(out.take(c), 1, "c consumed b's fallback, not 70");
        let h = &out.health;
        assert_eq!(h.quarantined, vec!["b"]);
        assert_eq!(h.stages[b.index()].attempts, 2);
        assert_eq!(
            b_runs.load(Ordering::SeqCst),
            2,
            "the retry re-probed the store, missed, and recomputed"
        );
    }

    // Run 2: a new process reopens the directory. Stage a replays from
    // its persisted entry; b recomputes cleanly (its quarantined
    // fallback was never stored under b's own key).
    let store = scratch.open();
    let mut g = StageGraph::new();
    g.bind_store(store, digest(b"supervision-persist"));
    let a = g.add_cached_stage("a", &[], &[], |_| {
        a_runs.fetch_add(1, Ordering::SeqCst);
        7u64
    });
    let b = g.add_cached_stage("b", &[], &[a.index()], |r| {
        b_runs.fetch_add(1, Ordering::SeqCst);
        r.get(a) * 10
    });
    let c = g.add_stage("c", &[b.index()], |r| r.get(b) + 1);
    let mut out = g.run(1);
    assert_eq!(out.take(c), 71, "the resumed run serves the real value");
    assert!(out.health.is_clean());
    assert_eq!(
        a_runs.load(Ordering::SeqCst),
        1,
        "a came from the store — its body never ran again"
    );
    assert_eq!(b_runs.load(Ordering::SeqCst), 3);
}

/// A fault plan that crashes every YouTube live-search call in the main
/// monitoring window — deterministic in sim time, so both supervised
/// attempts of `main_monitor` hit it.
fn search_panic_plan() -> FaultPlan {
    let config = &world().config;
    let mut schedules = BTreeMap::new();
    schedules.insert(
        Substrate::YoutubeSearch,
        vec![FaultWindow {
            start: config.youtube_start,
            end: config.youtube_end,
            kind: FaultKind::StagePanic,
        }],
    );
    FaultPlan {
        seed: 0xFA11,
        schedules,
    }
}

#[test]
fn injected_stage_panic_quarantines_the_monitor_and_names_the_damage() {
    let run = Pipeline::new(world())
        .threads(2)
        .fault_plan(Some(search_panic_plan()))
        .supervise(SupervisionPolicy::recover(2))
        .run();

    let h = &run.health;
    assert!(h.supervised);
    assert!(
        h.quarantined.contains(&"main_monitor".to_string()),
        "quarantined: {:?}",
        h.quarantined
    );
    assert!(
        h.tainted.contains(&"youtube_dataset".to_string()),
        "the YouTube dataset is built from the quarantined monitor"
    );
    assert!(
        h.degraded_tables.contains(&"table1.youtube".to_string()),
        "degraded tables: {:?}",
        h.degraded_tables
    );
    assert!(h
        .warnings
        .iter()
        .any(|w| w.starts_with("stage main_monitor: quarantined")));
    assert!(h.retries >= 1, "the monitor was retried before quarantine");

    // Graceful degradation, concretely: the YouTube column collapses to
    // the empty-monitor fallback (visibly empty, never invented data).
    assert_eq!(run.report.table1.youtube_domains, 0);
    assert_eq!(run.report.youtube_funnel.payments_final, 0);
    assert_eq!(run.report.youtube_revenue.usd_any, 0.0);

    // The Twitter dataset is a root stage (archived corpus, no live
    // collection): its Table 1 column must never be marked degraded.
    let clean = Pipeline::new(world()).threads(2).run();
    assert_eq!(
        run.report.table1.twitter_domains,
        clean.report.table1.twitter_domains
    );
    assert!(
        !h.degraded_tables.contains(&"table1.twitter".to_string()),
        "degraded tables: {:?}",
        h.degraded_tables
    );
    // Taint is conservative: twitter_payments consumes the known-scam
    // address set, which includes addresses from the (quarantined)
    // YouTube monitor — so Twitter revenue is flagged even though this
    // world's numbers happen to come out identical.
    assert!(h.tainted.contains(&"twitter_payments".to_string()));
    assert!(h
        .degraded_tables
        .contains(&"table2.twitter_revenue".to_string()));
    assert_eq!(run.report.twitter_revenue, clean.report.twitter_revenue);

    // The same plan under the default (strict) policy aborts the run.
    let aborted = catch_unwind(AssertUnwindSafe(|| {
        Pipeline::new(world())
            .threads(2)
            .fault_plan(Some(search_panic_plan()))
            .run()
    }));
    assert!(aborted.is_err(), "strict mode keeps the poison semantics");
}

#[test]
fn supervision_is_byte_identical_on_healthy_runs() {
    for threads in [1usize, 4] {
        let strict = Pipeline::new(world())
            .threads(threads)
            .fault_plan(Some(FaultPlan::quiet(42)))
            .run();
        let supervised = Pipeline::new(world())
            .threads(threads)
            .fault_plan(Some(FaultPlan::quiet(42)))
            .supervise(SupervisionPolicy::recover(2))
            .run();
        assert_eq!(
            serde_json::to_string(&strict.report).unwrap(),
            serde_json::to_string(&supervised.report).unwrap(),
            "{threads} thread(s): supervision changed a quiet run's report"
        );
        assert_eq!(
            serde_json::to_string(&strict.telemetry.metrics).unwrap(),
            serde_json::to_string(&supervised.telemetry.metrics).unwrap(),
            "{threads} thread(s): supervision left telemetry residue"
        );
        assert!(supervised.health.is_clean());
        assert_eq!(supervised.health.attempts, 25);
        assert_eq!(supervised.health.retries, 0);
    }
}
