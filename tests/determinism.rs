//! Thread-count invariance: the parallel pipeline must be a pure
//! scheduling optimization. For one seed, a single-threaded run and
//! multi-threaded runs must produce byte-identical `PaperReport` JSON —
//! same stage outputs, same sharded clustering, same tag resolution.

use givetake::core::{Pipeline, PipelineOptions};
use givetake::world::{World, WorldConfig};
use std::sync::OnceLock;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| {
        let mut config = WorldConfig::scaled(0.03);
        config.seed = 0xDE7E_12F1;
        World::generate(config)
    })
}

fn report_json(threads: usize) -> String {
    let run = Pipeline::new(world()).threads(threads).run();
    assert_eq!(run.timings.threads, threads);
    serde_json::to_string(&run.report).expect("report serializes")
}

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let serial = report_json(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            report_json(threads),
            serial,
            "{threads}-thread report diverged from the single-threaded run"
        );
    }
}

#[test]
fn faulted_report_is_byte_identical_across_thread_counts() {
    // Fault schedules and retry jitter are functions of (plan seed,
    // substrate, call site), never of scheduling — the chaos run must
    // be exactly as thread-invariant as the clean one.
    let profile = givetake::sim::faults::ChaosProfile::default();
    let run_json = |threads: usize| {
        let run = Pipeline::new(world())
            .threads(threads)
            .chaos(0xFA_017, &profile)
            .run();
        (
            serde_json::to_string(&run.report).expect("report serializes"),
            run.degradation,
        )
    };
    let (serial, serial_deg) = run_json(1);
    assert!(
        serial_deg.total.injected() > 0,
        "the plan actually injected faults"
    );
    for threads in [2, 4] {
        let (json, deg) = run_json(threads);
        assert_eq!(json, serial, "{threads}-thread faulted report diverged");
        assert_eq!(
            deg, serial_deg,
            "{threads}-thread degradation accounting diverged"
        );
    }
}

#[test]
fn options_equivalents_match() {
    // The Pipeline setters and a fluently built PipelineOptions are the
    // same (`PipelineOptions` is `#[non_exhaustive]`, so the builder is
    // the only way to construct one by hand).
    let via_setters = Pipeline::new(world()).threads(2).run();
    let via_options = Pipeline::new(world())
        .options(PipelineOptions::default().threads(2))
        .run();
    assert_eq!(via_setters.report, via_options.report);
}

#[test]
fn skip_flags_only_affect_their_sections() {
    let full = Pipeline::new(world()).threads(2).run();
    let skipped = Pipeline::new(world())
        .threads(2)
        .skip_pilot(true)
        .skip_interventions(true)
        .run();

    assert!(skipped.report.qr_pilot.is_none(), "pilot skipped");
    assert!(skipped.report.interventions.is_empty(), "sweep skipped");
    assert!(skipped.pilot_report.streams.is_empty());
    // Everything else is untouched.
    assert_eq!(skipped.report.table1, full.report.table1);
    assert_eq!(skipped.report.twitter_funnel, full.report.twitter_funnel);
    assert_eq!(skipped.report.youtube_funnel, full.report.youtube_funnel);
    assert_eq!(skipped.report.origins, full.report.origins);
    assert_eq!(skipped.report.recipients, full.report.recipients);
    assert_eq!(skipped.report.twitch, full.report.twitch);
}

#[test]
fn custom_intervention_lags_are_honored() {
    let lags = [
        givetake::sim::SimDuration::ZERO,
        givetake::sim::SimDuration::hours(2),
    ];
    let run = Pipeline::new(world())
        .threads(2)
        .intervention_lags(&lags)
        .run();
    assert_eq!(run.report.interventions.len(), 2);
    assert_eq!(run.report.interventions[0].lag_seconds, 0);
    assert_eq!(run.report.interventions[1].lag_seconds, 7_200);
}

#[test]
fn timings_cover_every_stage() {
    let run = Pipeline::new(world()).threads(2).run();
    let t = &run.timings;
    assert!(t.total_ms > 0.0);
    for name in [
        "twitter_dataset",
        "pilot_monitor",
        "main_monitor",
        "chain_analysis",
        "youtube_dataset",
        "twitter_payments",
        "youtube_payments",
        "interventions",
    ] {
        let stage = t
            .stage(name)
            .unwrap_or_else(|| panic!("stage {name} timed"));
        assert!(stage.wall_ms >= 0.0);
    }
    assert!(
        t.stage("chain_analysis").unwrap().items > 0,
        "clustering counted its transactions"
    );
}
