//! Telemetry-layer contract (see DESIGN.md "Observability"):
//!
//! * metric values are a pure function of the sim — byte-identical
//!   JSON across 1/2/4 worker threads, clean or chaotic;
//! * every one of the 25 pipeline stages appears in the metrics block;
//! * spans nest properly within their worker lane;
//! * a quiet fault plan leaves every fault counter at zero;
//! * the Chrome trace export is well-formed JSON covering all stages;
//! * turning telemetry off changes nothing in `PaperReport`.

use givetake::core::{PaperRun, Pipeline};
use givetake::obs::SpanSnap;
use givetake::sim::faults::{ChaosProfile, FaultPlan};
use givetake::world::{World, WorldConfig};
use std::sync::OnceLock;

/// Every stage the pipeline registers, in registration order.
const STAGES: [&str; 25] = [
    "twitter_dataset",
    "pilot_monitor",
    "main_monitor",
    "chain_analysis",
    "twitch_pilot",
    "youtube_dataset",
    "known_scam_addresses",
    "twitter_payments",
    "youtube_payments",
    "twitter_weekly",
    "youtube_weekly",
    "twitter_discover",
    "youtube_discover",
    "twitter_coins",
    "youtube_coins",
    "twitter_conversions",
    "youtube_conversions",
    "payment_origins",
    "twitter_whales",
    "youtube_whales",
    "recipient_stats",
    "outgoing_stats",
    "qr_pilot",
    "fig5_keywords",
    "interventions",
];

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| {
        let mut config = WorldConfig::scaled(0.02);
        config.seed = 0x0B5E_17ED;
        World::generate(config)
    })
}

fn clean_run(threads: usize) -> PaperRun {
    Pipeline::new(world()).threads(threads).run()
}

fn metrics_json(run: &PaperRun) -> String {
    serde_json::to_string(&run.telemetry.metrics).expect("metrics serialize")
}

#[test]
fn metrics_are_byte_identical_across_thread_counts() {
    let serial = clean_run(1);
    assert!(serial.telemetry.enabled, "telemetry is on by default");
    assert!(!serial.telemetry.metrics.is_empty());
    let baseline = metrics_json(&serial);
    for threads in [2, 4] {
        assert_eq!(
            metrics_json(&clean_run(threads)),
            baseline,
            "{threads}-thread metrics diverged from the single-threaded run"
        );
    }
}

#[test]
fn chaotic_metrics_are_byte_identical_across_thread_counts() {
    let profile = ChaosProfile::default();
    let run_json = |threads: usize| {
        let run = Pipeline::new(world())
            .threads(threads)
            .chaos(0xFA_017, &profile)
            .run();
        metrics_json(&run)
    };
    let baseline = run_json(1);
    for threads in [2, 4] {
        assert_eq!(
            run_json(threads),
            baseline,
            "{threads}-thread chaotic metrics diverged"
        );
    }
}

#[test]
fn executor_counters_cover_every_stage() {
    let run = clean_run(2);
    for stage in STAGES {
        assert!(
            run.telemetry.row(stage, "executor", "items").is_some(),
            "stage {stage} missing its (executor, items) counter"
        );
    }
    // Substrate-level accounting is present too: the monitors and the
    // RPC backfill each count their calls.
    assert!(run.telemetry.substrate_total("youtube.search", "calls") > 0);
    assert!(run.telemetry.substrate_total("chain.rpc", "calls") > 0);
    assert!(
        run.telemetry
            .substrate_total("stream.monitor", "searches_run")
            > 0
    );
}

/// Spans in one lane must be properly nested: each span is either
/// disjoint from, or entirely contained in, every earlier open span.
fn assert_lane_well_nested(lane: u32, spans: &[&SpanSnap]) {
    let mut order: Vec<&&SpanSnap> = spans.iter().collect();
    order.sort_by_key(|s| (s.start_us, u64::MAX - s.dur_us));
    let mut stack: Vec<(u64, String)> = Vec::new();
    for s in order {
        let (start, end) = (s.start_us, s.start_us + s.dur_us);
        while let Some((top_end, _)) = stack.last() {
            if *top_end <= start {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some((top_end, top_name)) = stack.last() {
            assert!(
                end <= *top_end,
                "lane {lane}: span {:?} [{start}, {end}] straddles the \
                 boundary of open span {top_name:?} (ends {top_end})",
                s.name
            );
        }
        stack.push((end, s.name.clone()));
    }
}

#[test]
fn span_nesting_is_well_formed() {
    let run = clean_run(4);
    let spans = &run.telemetry.wall.spans;
    assert!(!spans.is_empty());
    let lanes: std::collections::BTreeSet<u32> = spans.iter().map(|s| s.lane).collect();
    for lane in lanes {
        let in_lane: Vec<&SpanSnap> = spans.iter().filter(|s| s.lane == lane).collect();
        assert_lane_well_nested(lane, &in_lane);
    }
    // Substrate spans nest under stage spans, never the other way.
    assert!(spans.iter().any(|s| s.cat == "stage" && s.depth == 0));
    assert!(spans
        .iter()
        .all(|s| s.cat == "stage" || s.depth > 0 || s.name.ends_with(".window")));
}

#[test]
fn quiet_plan_leaves_fault_counters_at_zero() {
    let run = Pipeline::new(world())
        .threads(2)
        .fault_plan(Some(FaultPlan::quiet(7)))
        .run();
    let t = &run.telemetry;
    for metric in [
        "retries",
        "transients",
        "rate_limited",
        "latency_spikes",
        "outage_hits",
        "recovered",
        "lost",
        "circuit_opens",
        "denied",
        "backoff_wait_secs",
    ] {
        let offenders: Vec<_> = t
            .metrics
            .iter()
            .filter(|r| r.metric == metric && r.value > 0)
            .collect();
        assert!(
            offenders.is_empty(),
            "quiet plan produced nonzero {metric} rows: {offenders:?}"
        );
    }
    // ... while the call accounting itself still ran.
    assert!(t.substrate_total("chain.rpc", "calls") > 0);
    assert_eq!(
        t.substrate_total("chain.rpc", "calls"),
        t.substrate_total("chain.rpc", "served"),
        "every quiet-plan call is served"
    );
}

#[test]
fn telemetry_off_is_empty_and_report_invariant() {
    let on = clean_run(2);
    let off = Pipeline::new(world()).threads(2).telemetry(false).run();
    assert!(!off.telemetry.enabled);
    assert!(off.telemetry.metrics.is_empty());
    assert!(off.telemetry.wall.spans.is_empty());
    assert_eq!(
        serde_json::to_string(&off.report).unwrap(),
        serde_json::to_string(&on.report).unwrap(),
        "telemetry must never perturb the report"
    );
}

// ---- Chrome trace export ------------------------------------------------

#[test]
fn chrome_trace_is_valid_json_and_covers_every_stage() {
    let run = clean_run(2);
    let trace = run.telemetry.chrome_trace_json();
    validate_json(&trace).unwrap_or_else(|e| panic!("trace is not valid JSON: {e}"));
    for stage in STAGES {
        assert!(
            trace.contains(&format!("\"name\":\"{stage}\"")),
            "trace missing a span for stage {stage}"
        );
    }
    assert!(trace.contains("\"ph\":\"X\""), "complete-event phase");
    assert!(trace.contains("\"traceEvents\":["));
}

/// A minimal JSON well-formedness checker (the vendored `serde_json`
/// subset is serialize-only, so the test cannot round-trip through it).
fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                skip_ws(b, pos);
                value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?} at {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?} at {pos}")),
                }
            }
        }
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        other => Err(format!("unexpected {other:?} at offset {pos}")),
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {pos}", c as char))
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2;
            }
            0x00..=0x1F => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    if *pos == start {
        Err(format!("empty number at offset {start}"))
    } else {
        Ok(())
    }
}
