//! Integration test for the multi-hop flow-tracing extension: the
//! "more advanced blockchain analysis" the paper cites (Phillips &
//! Wilder) must recover far more exchange exposure than the 4% of
//! direct cash-out edges.

use givetake::cluster::{aggregate_exposure, Category, ClusterView};
use givetake::world::truth::Platform;
use givetake::world::{World, WorldConfig};
use std::sync::OnceLock;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| {
        let mut config = WorldConfig::scaled(0.04);
        config.seed = 0xF70E;
        World::generate(config)
    })
}

#[test]
fn multi_hop_tracing_uncovers_indirect_exchange_exposure() {
    let w = world();
    let clustering = ClusterView::build(&w.chains.btc);
    let tags = w.tags.resolver(&clustering);

    // Scam recipient addresses (where victims paid).
    let sources: Vec<givetake::addr::Address> = w
        .truth
        .payments
        .iter()
        .filter(|p| p.co_occurring)
        .map(|p| p.recipient)
        .collect::<std::collections::HashSet<_>>()
        .into_iter()
        .collect();
    assert!(!sources.is_empty());

    // Depth 1: only direct edges — mostly unresolved (87% unlabeled).
    let direct = aggregate_exposure(&sources, &w.chains, &tags, &clustering, 1);
    let direct_exchange = direct.share(Category::Exchange);

    // Depth 4: funds followed through the intermediaries.
    let deep = aggregate_exposure(&sources, &w.chains, &tags, &clustering, 4);
    let deep_exchange = deep.share(Category::Exchange);

    assert!(
        deep_exchange > direct_exchange * 2.0,
        "tracing must uncover exposure: direct {direct_exchange:.3} vs deep {deep_exchange:.3}"
    );
    assert!(
        deep_exchange > 0.3,
        "most cash-out value eventually reaches exchanges: {deep_exchange:.3}"
    );
    assert!(deep.visited >= direct.visited);
}

#[test]
fn tracing_covers_both_platforms() {
    let w = world();
    let clustering = ClusterView::build(&w.chains.btc);
    let tags = w.tags.resolver(&clustering);
    for platform in [Platform::Twitter, Platform::YouTube] {
        let sources: Vec<givetake::addr::Address> = w
            .truth
            .payments_for(platform)
            .filter(|p| p.co_occurring)
            .map(|p| p.recipient)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        let exposure = aggregate_exposure(&sources, &w.chains, &tags, &clustering, 4);
        let total: f64 = exposure.by_category.values().sum::<f64>() + exposure.unresolved;
        assert!(total > 0.0, "{platform:?} has traced value");
        assert!(
            exposure.by_category.contains_key(&Category::Exchange),
            "{platform:?} reaches exchanges"
        );
    }
}
