//! Offline, API-compatible subset of `parking_lot`.
//!
//! Wraps the std primitives with parking_lot's non-poisoning API: `lock()`
//! returns the guard directly, and a poisoned std lock is transparently
//! recovered (a panic while holding the lock doesn't wedge later users).

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock. Unlike `std::sync::Mutex`, `lock()` never
/// returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock with the same non-poisoning contract.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
