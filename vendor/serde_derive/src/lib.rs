//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! No `syn`/`quote` available, so this walks the `proc_macro::TokenTree`
//! stream directly. It understands exactly the item shapes the workspace
//! derives on: named/tuple/unit structs, enums with unit/newtype/tuple/
//! struct variants, simple `<T>` generics, and the `#[serde(skip)]` field
//! attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    /// Consumes a run of `#[...]` attributes; returns true if any of them
    /// is a `#[serde(skip)]`.
    fn eat_attrs(&mut self) -> bool {
        let mut skip = false;
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let text = g.to_string();
                    if text.contains("serde") && text.contains("skip") {
                        skip = true;
                    }
                }
                other => panic!("serde_derive: malformed attribute, found {other:?}"),
            }
        }
        skip
    }

    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Consumes tokens of a type (or expression) until a `,` at angle-bracket
    /// depth zero, leaving the comma unconsumed.
    fn skip_until_comma(&mut self) {
        let mut depth = 0i32;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => return,
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    /// Parses `<...>` generic parameters into their names (`T`, `'a`, …).
    fn parse_generics(&mut self) -> Vec<String> {
        let mut params = Vec::new();
        if !self.eat_punct('<') {
            return params;
        }
        let mut depth = 1i32;
        let mut expecting_name = true;
        while depth > 0 {
            match self.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => expecting_name = true,
                    '\'' if depth == 1 && expecting_name => {
                        let lt = self.expect_ident();
                        params.push(format!("'{lt}"));
                        expecting_name = false;
                    }
                    _ => {}
                },
                Some(TokenTree::Ident(id)) => {
                    if depth == 1 && expecting_name {
                        params.push(id.to_string());
                        expecting_name = false;
                    }
                }
                Some(_) => {}
                None => panic!("serde_derive: unterminated generics"),
            }
        }
        params
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let skip = c.eat_attrs();
        c.eat_visibility();
        let name = c.expect_ident();
        assert!(
            c.eat_punct(':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        c.skip_until_comma();
        c.eat_punct(',');
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while c.peek().is_some() {
        c.eat_attrs();
        c.eat_visibility();
        c.skip_until_comma();
        c.eat_punct(',');
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.eat_attrs();
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                c.pos += 1;
                Fields::Tuple(parse_tuple_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                c.pos += 1;
                Fields::Named(parse_named_fields(inner))
            }
            _ => Fields::Unit,
        };
        if c.eat_punct('=') {
            // Explicit discriminant: skip the expression.
            c.skip_until_comma();
        }
        c.eat_punct(',');
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.eat_attrs();
    c.eat_visibility();
    let kind_word = c.expect_ident();
    let name = c.expect_ident();
    let generics = c.parse_generics();
    let kind = match kind_word.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(parse_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: can only derive on struct/enum, found `{other}`"),
    };
    Item {
        name,
        generics,
        kind,
    }
}

fn generics_decl(item: &Item) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let joined = item.generics.join(", ");
        (format!("<{joined}>"), format!("<{joined}>"))
    }
}

fn named_fields_body(fields: &[Field], accessor: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            format!(
                "(\"{0}\".to_string(), serde::Serialize::to_content({1}{0})),",
                f.name, accessor
            )
        })
        .collect();
    format!("serde::Content::Map(vec![{}])", entries.concat())
}

fn emit_serialize(item: &Item) -> String {
    let (decl, usage) = generics_decl(item);
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => "serde::Content::Null".to_string(),
        Kind::Struct(Fields::Named(fields)) => named_fields_body(fields, "&self."),
        Kind::Struct(Fields::Tuple(1)) => "serde::Serialize::to_content(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_content(&self.{i}),"))
                .collect();
            format!("serde::Content::Seq(vec![{}])", items.concat())
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => serde::Content::Str(\"{vname}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => serde::Content::Map(vec![(\"{vname}\".to_string(), serde::Serialize::to_content(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_content(f{i}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => serde::Content::Map(vec![(\"{vname}\".to_string(), serde::Content::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.concat()
                            )
                        }
                        Fields::Named(fields) => {
                            let binds: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| f.name.clone())
                                .collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "(\"{0}\".to_string(), serde::Serialize::to_content({0})),",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {}.. }} => serde::Content::Map(vec![(\"{vname}\".to_string(), serde::Content::Map(vec![{}]))]),",
                                binds.iter().map(|b| format!("{b}, ")).collect::<String>(),
                                entries.concat()
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.concat())
        }
    };
    format!(
        "impl{decl} serde::Serialize for {name}{usage} {{ fn to_content(&self) -> serde::Content {{ {body} }} }}"
    )
}

fn emit_deserialize(item: &Item) -> String {
    let name = &item.name;
    let (usage, decl_inner) = if item.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let joined = item.generics.join(", ");
        (format!("<{joined}>"), format!(", {joined}"))
    };
    format!("impl<'de{decl_inner}> serde::Deserialize<'de> for {name}{usage} {{}}")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
