//! Offline, API-compatible subset of `criterion`.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Instead of upstream's
//! statistical engine it runs a short calibrated loop and prints the mean
//! wall time per iteration — enough to compare configurations by hand.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time to spend measuring each benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(400);

pub struct Criterion {
    measure_target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_target: MEASURE_TARGET,
        }
    }
}

pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibrate: run single iterations until we know roughly how long
        // one takes, then size the measured batch to the target budget.
        let mut probe = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut probe);
        let per_iter = probe.elapsed.max(Duration::from_nanos(1));
        let iterations =
            (self.measure_target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = bencher.elapsed / bencher.iterations.max(1) as u32;
        println!(
            "bench: {name:<48} {:>12} / iter ({} iters)",
            format_duration(mean),
            bencher.iterations
        );
        self
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} us", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion {
            measure_target: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }
}
