//! Offline, API-compatible subset of `serde`.
//!
//! Instead of upstream's visitor-based `Serializer` machinery, this stub
//! serializes into a small [`Content`] tree that `serde_json` renders.
//! That covers everything the workspace does with serde: derive
//! `Serialize`/`Deserialize` on plain data types and feed them to
//! `serde_json::to_string{,_pretty}`.
//!
//! `Deserialize` is a compile-time marker only — nothing in the workspace
//! deserializes at runtime.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the common shape JSON and friends render from.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

/// A type that can be serialized into a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Marker trait paired with `#[derive(Deserialize)]`. The workspace never
/// deserializes at runtime, so the trait carries no methods.
pub trait Deserialize<'de>: Sized {}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}
impl<'de> Deserialize<'de> for f32 {}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {}
    )*};
}

ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

fn map_key<K: ToString>(key: &K) -> String {
    key.to_string()
}

impl<K: ToString + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (map_key(k), v.to_content()))
                .collect(),
        )
    }
}
impl<'de, K: ToString + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // HashMap iteration order is arbitrary; sort by rendered key so
        // serialization is deterministic run-to-run.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (map_key(k), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}
impl<'de, K: ToString, V: Deserialize<'de>, S> Deserialize<'de> for HashMap<K, V, S> {}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl<'de> Deserialize<'de> for () {}

impl<T> Serialize for std::marker::PhantomData<T> {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl<'de, T> Deserialize<'de> for std::marker::PhantomData<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(3u32.to_content(), Content::U64(3));
        assert_eq!((-4i64).to_content(), Content::I64(-4));
        assert_eq!(true.to_content(), Content::Bool(true));
        assert_eq!("hi".to_content(), Content::Str("hi".into()));
        assert_eq!(None::<u8>.to_content(), Content::Null);
    }

    #[test]
    fn hashmap_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let Content::Map(entries) = m.to_content() else {
            panic!("expected map")
        };
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "b");
    }
}
