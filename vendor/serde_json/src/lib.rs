//! Offline, API-compatible subset of `serde_json`.
//!
//! Renders the vendored serde [`Content`] tree to JSON text. Output is
//! deterministic: map entries keep their construction order (derived
//! structs serialize in declaration order, HashMaps are pre-sorted by the
//! serde stub) and floats render through Rust's shortest-roundtrip
//! formatter.

use std::fmt;

pub use serde::Content;

/// A JSON value, as produced by the [`json!`] macro.
#[derive(Debug, Clone, PartialEq)]
pub struct Value(pub Content);

impl serde::Serialize for Value {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_content(&mut out, &self.0, None, 0);
        f.write_str(&out)
    }
}

/// Serialization error. The content-tree model cannot actually fail, but
/// the public API keeps upstream's fallible signature.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

fn write_content(out: &mut String, content: &Content, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => {
            if x.is_finite() {
                // Match upstream: integral floats keep a trailing `.0` so
                // the value round-trips as a float.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, value, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[doc(hidden)]
pub fn __to_content<T: serde::Serialize>(value: &T) -> Content {
    value.to_content()
}

/// Builds a [`Value`] from a flat JSON-ish literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value($crate::Content::Null) };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value($crate::Content::Seq(vec![ $($crate::__to_content(&$item)),* ]))
    };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value($crate::Content::Map(vec![
            $(($key.to_string(), $crate::__to_content(&$value)),)*
        ]))
    };
    ($value:expr) => { $crate::Value($crate::__to_content(&$value)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = json!({ "a": 1u64, "b": [1u64, 2u64], "c": "x\"y" });
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[1,2],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_rendering() {
        let v = json!({ "a": 1u64 });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn floats_keep_fraction_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn option_and_unit() {
        assert_eq!(to_string(&None::<u8>).unwrap(), "null");
        assert_eq!(to_string(&Some(3u8)).unwrap(), "3");
    }
}
