//! The `Standard` distribution and the `Distribution` trait.

use crate::RngCore;
use std::marker::PhantomData;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        R: RngCore,
        Self: Sized,
    {
        DistIter {
            distr: self,
            rng,
            _marker: PhantomData,
        }
    }
}

/// The "natural" distribution for a type: uniform over all values for
/// integers, uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Iterator yielding an endless stream of samples.
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<fn() -> T>,
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn sample_iter_streams() {
        let r = StdRng::seed_from_u64(5);
        let v: Vec<u64> = r.sample_iter(Standard).take(4).collect();
        assert_eq!(v.len(), 4);
        let r2 = StdRng::seed_from_u64(5);
        let w: Vec<u64> = r2.sample_iter(Standard).take(4).collect();
        assert_eq!(v, w);
    }
}
