//! Offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`Rng`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`], and the [`distributions`]
//! module with the `Standard` distribution.
//!
//! The core generator is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream's ChaCha12, but the workspace's
//! calibration is target-driven (the world generator samples *to*
//! its targets), so only determinism per seed matters, which this
//! provides.

pub mod distributions;
pub mod rngs;

use distributions::{DistIter, Distribution, Standard};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for b in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut s).to_le_bytes();
            b.copy_from_slice(&v[..b.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that [`Rng::gen_range`] can produce.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
    /// The type's maximum, used to close `low..` ranges.
    fn max_value() -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "gen_range: empty range");
                } else {
                    assert!(low < high, "gen_range: empty range");
                }
                let lo = low as i128;
                let hi = high as i128 + if inclusive { 1 } else { 0 };
                let span = (hi - lo) as u128;
                if span == 0 {
                    // Full u128-width span cannot happen for <=64-bit ints.
                    unreachable!("gen_range: zero span");
                }
                // Widening-multiply bounded sample (Lemire, without the
                // rejection step: the bias is < 2^-64 and irrelevant here).
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo + v as i128) as $t
            }
            fn max_value() -> Self {
                <$t>::MAX
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + (high - low) * unit
            }
            fn max_value() -> Self {
                <$t>::MAX
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeFrom<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, T::max_value(), true)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        self.gen::<f64>() < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            numerator <= denominator,
            "gen_ratio: {numerator}/{denominator}"
        );
        if denominator == 0 {
            return false;
        }
        self.gen_range(0..denominator) < numerator
    }

    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    fn sample_iter<T, D>(self, distr: D) -> DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        distr.sample_iter(self)
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
