//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard PRNG: xoshiro256++.
///
/// Fast, 256-bit state, passes BigCrush; not cryptographic (neither is
/// anything the simulator does with it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state.
            s = [
                0x9e37_79b9_7f4a_7c15,
                0x6a09_e667_f3bc_c909,
                0xbb67_ae85_84ca_a73b,
                1,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_rescued() {
        let mut r = StdRng::from_seed([0; 32]);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn streams_differ_across_seeds() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
