//! Offline, API-compatible subset of `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` with the 0.8 calling convention
//! (closure receives a `Scope` it can spawn from; `scope(..)` returns a
//! `Result` that is `Err` when any spawned thread panicked), implemented
//! over `std::thread::scope`.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as std_thread;

    type Payload = Box<dyn Any + Send + 'static>;

    /// Handle to a scope within which scoped threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped thread, returned by [`Scope::spawn`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` holds the panic payload if
        /// the thread panicked.
        pub fn join(self) -> Result<T, Payload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam 0.8, the closure receives
        /// the scope again so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let sc = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(sc)),
            }
        }
    }

    /// Creates a scope for spawning scoped threads. Returns `Err` if any
    /// spawned-and-not-joined thread panicked (the payload comes from
    /// `std::thread::scope`'s own propagation).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std_thread::scope(|s| f(Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_see_borrowed_data() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            for chunk in data.chunks(2) {
                scope.spawn(|_| {
                    let s: u64 = chunk.iter().sum();
                    sum.fetch_add(s as usize, Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let count = AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            scope.spawn(|inner| {
                count.fetch_add(1, Ordering::Relaxed);
                inner.spawn(|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("no panics");
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn join_returns_thread_result() {
        let r = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| 21 * 2);
            h.join().expect("thread ok")
        })
        .expect("no panics");
        assert_eq!(r, 42);
    }
}
