//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the generation half of proptest — `Strategy`, `any`,
//! ranges, regex-lite string strategies, `collection::vec`, `Just`,
//! `prop_oneof!`, tuples, `prop_map` — driven by the vendored xoshiro
//! RNG. There is no shrinking: a failing case panics with the generated
//! inputs' debug output, which is enough to reproduce (the per-test seed
//! is derived deterministically from the test name).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod strategy;
pub use strategy::{BoxedStrategy, Just, Strategy, Union};

pub mod arbitrary {
    use super::*;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<f64>()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<f64>() as f32
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> Self {
            let mut out = [0u8; N];
            rng.fill_bytes(&mut out);
            out
        }
    }
}

use arbitrary::Arbitrary;

/// Strategy yielding arbitrary values of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for "any value of this type".
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::*;

    /// Accepted size arguments for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub min: usize,
        pub max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    /// Outcome of a single generated test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case did not meet a `prop_assume!` precondition; retry.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    /// Runner configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; these tests run in debug builds, so
            // keep the default modest. Tests that need more ask for it via
            // `with_cases`.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Derives a per-test seed from the test's name (FNV-1a), so every test
/// gets a stable, distinct stream.
pub fn seed_for_test(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[doc(hidden)]
pub fn run_proptest<F>(config: test_runner::ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
{
    use test_runner::TestCaseError;

    let mut rng = StdRng::seed_from_u64(seed_for_test(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).saturating_add(256);
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest `{name}`: too many rejected cases ({rejected}) — \
                         prop_assume! precondition is almost never satisfiable"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest `{name}` failed after {passed} passing cases: {message}");
            }
        }
    }
}

/// Defines property tests: `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            @config($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@config($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_proptest(config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assume failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..=16, y in 0i64.., f in 0.25f64..0.75) {
            prop_assert!((3..=16).contains(&x));
            prop_assert!(y >= 0);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn regex_strings_match_class(s in "[a-c]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_and_just(tld in prop_oneof![Just("com"), Just("net")]) {
            prop_assert!(tld == "com" || tld == "net");
        }

        #[test]
        fn tuples_and_map((a, b) in (0u8..4, 10u8..14).prop_map(|(x, y)| (y, x))) {
            prop_assert!((10..14).contains(&a) && b < 4);
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for_test("a"), crate::seed_for_test("a"));
        assert_ne!(crate::seed_for_test("a"), crate::seed_for_test("b"));
    }
}
