//! The `Strategy` trait and its combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// Uniform choice among boxed strategies; backs `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Regex-lite string strategies: `"[a-z]{1,10}"` as a Strategy<Value=String>.
// ---------------------------------------------------------------------------

/// One regex atom together with its repetition bounds.
#[derive(Debug, Clone)]
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the subset of regex syntax the workspace's tests use: literal
/// characters, character classes (`[a-z0-9:/.\-]`, `[ -~]`), the `\PC`
/// printable-character escape, and `{n}` / `{m,n}` quantifiers.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet = match c {
            '[' => parse_class(&mut chars),
            '\\' => parse_escape(&mut chars),
            '.' => printable_ascii(),
            other => vec![other],
        };
        let (min, max) = parse_quantifier(&mut chars);
        atoms.push(Atom {
            chars: alphabet,
            min,
            max,
        });
    }
    atoms
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut members = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        match chars.next() {
            None => panic!("proptest regex-lite: unterminated character class"),
            Some(']') => {
                if let Some(p) = pending {
                    members.push(p);
                }
                return members;
            }
            Some('\\') => {
                let escaped = chars.next().expect("escape at end of class");
                if let Some(p) = pending.replace(escaped) {
                    members.push(p);
                }
            }
            Some('-') if pending.is_some() && chars.peek() != Some(&']') => {
                let start = pending.take().unwrap();
                let end = match chars.next() {
                    Some('\\') => chars.next().expect("escape at end of class"),
                    Some(e) => e,
                    None => panic!("proptest regex-lite: dangling range"),
                };
                assert!(
                    start <= end,
                    "proptest regex-lite: inverted range {start}-{end}"
                );
                members.extend(start..=end);
            }
            Some(other) => {
                if let Some(p) = pending.replace(other) {
                    members.push(p);
                }
            }
        }
    }
}

fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    match chars.next() {
        Some('P') | Some('p') => {
            // `\PC` (not-control) / `\pC`: approximate with printable ASCII.
            let _class = chars.next();
            printable_ascii()
        }
        Some('d') => ('0'..='9').collect(),
        Some('w') => ('a'..='z')
            .chain('A'..='Z')
            .chain('0'..='9')
            .chain(['_'])
            .collect(),
        Some('s') => vec![' ', '\t'],
        Some(literal) => vec![literal],
        None => panic!("proptest regex-lite: dangling escape"),
    }
}

fn printable_ascii() -> Vec<char> {
    (' '..='~').collect()
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((min, max)) => (
                    min.trim().parse().expect("bad quantifier min"),
                    max.trim().parse().expect("bad quantifier max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            }
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = rng.gen_range(atom.min..=atom.max);
            for _ in 0..count {
                let pick = rng.gen_range(0..atom.chars.len());
                out.push(atom.chars[pick]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn class_with_escapes_and_ranges() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z0-9:/.\\-]{8,60}".generate(&mut r);
            assert!((8..=60).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ":/.-".contains(c)));
        }
    }

    #[test]
    fn space_to_tilde_range() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[ -~]{0,60}".generate(&mut r);
            assert!(s.len() <= 60);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn pc_escape_is_printable() {
        let mut r = rng();
        let s = "\\PC{0,200}".generate(&mut r);
        assert!(s.len() <= 200);
        assert!(s.chars().all(|c| (' '..='~').contains(&c)));
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut r = rng();
        let s = "ab[c]{3}".generate(&mut r);
        assert_eq!(s, "abccc");
    }
}
