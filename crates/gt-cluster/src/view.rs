//! Immutable, shareable clustering results.
//!
//! [`Clustering`] answers queries through `&mut self` because union-find
//! lookups path-compress. That shape cannot be shared across pipeline
//! stages running on different threads, so the executor works with a
//! [`ClusterView`]: the same partition, frozen into plain lookup tables,
//! `Sync`, and queryable through `&self`.
//!
//! The view can also be *built* in parallel: the ledger's transaction
//! range is split into contiguous shards, each shard runs the multi-input
//! heuristic locally (CoinJoin detection included — it is a per-
//! transaction predicate), and the per-shard union-finds are merged in
//! shard order. Because shards are contiguous and merged in order, the
//! concatenation of per-shard first-seen address orders equals the serial
//! scan order, so cluster ids, sizes, and every lookup are byte-identical
//! regardless of thread count.

use crate::clustering::{ClusterId, Clustering, ClusteringOptions};
use crate::coinjoin::looks_like_coinjoin;
use crate::unionfind::UnionFind;
use gt_addr::BtcAddress;
use gt_chain::{BtcLedger, BtcTx};
use gt_store::{StoreDecode, StoreEncode};
use std::collections::HashMap;

/// Frozen multi-input clustering: immutable, `Sync`, shared by reference
/// across analysis stages.
#[derive(Debug, Clone, PartialEq, StoreEncode, StoreDecode)]
pub struct ClusterView {
    /// Address → dense address index, in first-appearance order.
    pub(crate) indices: HashMap<BtcAddress, usize>,
    /// Address index → cluster id.
    pub(crate) ids: Vec<ClusterId>,
    /// Cluster id → member count.
    pub(crate) sizes: Vec<usize>,
    /// Number of transactions skipped as CoinJoin-shaped.
    pub skipped_coinjoins: usize,
}

impl ClusterView {
    /// A view over no transactions at all: every lookup misses. Used as
    /// the quarantine fallback for the chain-analysis stage — degraded
    /// runs resolve no clusters instead of aborting.
    pub fn empty() -> Self {
        ClusterView {
            indices: HashMap::new(),
            ids: Vec::new(),
            sizes: Vec::new(),
            skipped_coinjoins: 0,
        }
    }

    /// Serial build with default options.
    pub fn build(ledger: &BtcLedger) -> Self {
        Self::build_with(ledger, ClusteringOptions::default())
    }

    /// Serial build with explicit options.
    pub fn build_with(ledger: &BtcLedger, options: ClusteringOptions) -> Self {
        Clustering::build_with(ledger, options).finalize()
    }

    /// Sharded parallel build; produces results identical to
    /// [`ClusterView::build_with`] for any `threads`.
    pub fn build_par(ledger: &BtcLedger, options: ClusteringOptions, threads: usize) -> Self {
        let txs = ledger.txs();
        // Below a few shards' worth of work the merge bookkeeping costs
        // more than it saves.
        if threads <= 1 || txs.len() < 2 * threads {
            return Self::build_with(ledger, options);
        }
        let chunk = txs.len().div_ceil(threads);
        let shards: Vec<ShardResult> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = txs
                .chunks(chunk)
                .map(|slice| scope.spawn(move |_| cluster_shard(slice, options)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cluster shard panicked"))
                .collect()
        })
        .expect("cluster shard pool panicked");
        merge_shards(shards)
    }

    /// The cluster containing `address`, if the address appeared on chain.
    pub fn cluster_of(&self, address: BtcAddress) -> Option<ClusterId> {
        self.indices.get(&address).map(|&idx| self.ids[idx])
    }

    /// Size of the cluster containing `address` (number of addresses).
    pub fn cluster_size(&self, address: BtcAddress) -> Option<usize> {
        self.cluster_of(address).map(|id| self.sizes[id.0])
    }

    /// Whether two addresses share a cluster.
    pub fn same_cluster(&self, a: BtcAddress, b: BtcAddress) -> bool {
        match (self.cluster_of(a), self.cluster_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of distinct clusters.
    pub fn cluster_count(&self) -> usize {
        self.sizes.len()
    }

    /// Number of addresses known to the clustering.
    pub fn address_count(&self) -> usize {
        self.indices.len()
    }
}

/// One contiguous transaction range, clustered locally.
struct ShardResult {
    /// Addresses in local first-appearance order; the local index of an
    /// address is its position here.
    first_seen: Vec<BtcAddress>,
    uf: UnionFind,
    skipped: usize,
}

fn cluster_shard(txs: &[BtcTx], options: ClusteringOptions) -> ShardResult {
    let mut local: HashMap<BtcAddress, usize> = HashMap::new();
    let mut first_seen: Vec<BtcAddress> = Vec::new();
    let mut uf = UnionFind::new(0);
    let mut skipped = 0usize;

    fn index_of(
        addr: BtcAddress,
        local: &mut HashMap<BtcAddress, usize>,
        first_seen: &mut Vec<BtcAddress>,
        uf: &mut UnionFind,
    ) -> usize {
        *local.entry(addr).or_insert_with(|| {
            first_seen.push(addr);
            uf.push()
        })
    }

    for tx in txs {
        for o in &tx.outputs {
            index_of(o.address, &mut local, &mut first_seen, &mut uf);
        }
        let inputs = tx.input_addresses();
        if inputs.is_empty() {
            continue;
        }
        if options.coinjoin_aware && looks_like_coinjoin(tx) {
            skipped += 1;
            for a in inputs {
                index_of(a, &mut local, &mut first_seen, &mut uf);
            }
            continue;
        }
        let first = index_of(inputs[0], &mut local, &mut first_seen, &mut uf);
        for a in &inputs[1..] {
            let idx = index_of(*a, &mut local, &mut first_seen, &mut uf);
            uf.union(first, idx);
        }
    }

    ShardResult {
        first_seen,
        uf,
        skipped,
    }
}

fn merge_shards(shards: Vec<ShardResult>) -> ClusterView {
    let mut indices: HashMap<BtcAddress, usize> = HashMap::new();
    let mut uf = UnionFind::new(0);
    let mut skipped = 0usize;

    for shard in shards {
        skipped += shard.skipped;
        // Map local indices to global ones. Iterating first_seen in order
        // keeps global index assignment equal to the serial scan order.
        let global: Vec<usize> = shard
            .first_seen
            .iter()
            .map(|&addr| *indices.entry(addr).or_insert_with(|| uf.push()))
            .collect();
        let mut local_uf = shard.uf;
        for (i, &g) in global.iter().enumerate() {
            let root = local_uf.find(i);
            if root != i {
                uf.union(global[root], g);
            }
        }
    }

    freeze(indices, uf, skipped)
}

/// Assign dense cluster ids (by first member appearance) and sizes.
pub(crate) fn freeze(
    indices: HashMap<BtcAddress, usize>,
    mut uf: UnionFind,
    skipped_coinjoins: usize,
) -> ClusterView {
    let mut by_root: HashMap<usize, ClusterId> = HashMap::new();
    let mut ids: Vec<ClusterId> = Vec::with_capacity(uf.len());
    let mut sizes: Vec<usize> = Vec::new();
    for k in 0..uf.len() {
        let root = uf.find(k);
        let next = ClusterId(sizes.len());
        let id = *by_root.entry(root).or_insert_with(|| {
            sizes.push(0);
            next
        });
        sizes[id.0] += 1;
        ids.push(id);
    }
    ClusterView {
        indices,
        ids,
        sizes,
        skipped_coinjoins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_chain::{Amount, OutPoint, TxOut};
    use gt_sim::SimTime;

    fn addr(b: u8) -> BtcAddress {
        BtcAddress::P2pkh([b; 20])
    }

    fn t(s: i64) -> SimTime {
        SimTime(1_700_000_000 + s)
    }

    /// A ledger with enough structure to exercise cross-shard merges:
    /// a chain of co-spends spanning the whole transaction range, extra
    /// singletons, and a CoinJoin near the end.
    fn busy_ledger() -> BtcLedger {
        let mut ledger = BtcLedger::new();
        // Singletons that never co-spend.
        for i in 21..32u8 {
            ledger
                .coinbase(addr(i), Amount(10_000), t(i as i64))
                .unwrap();
        }
        // Rolling co-spends: (0,1), (1,2), ... creates one long chain of
        // merges that no single shard sees in full. Each address holds a
        // single 30k UTXO at spend time, so paying 55k forces a genuine
        // two-input transaction.
        for i in 0..20u8 {
            let base = 100 + 3 * i as i64;
            ledger.coinbase(addr(i), Amount(30_000), t(base)).unwrap();
            ledger
                .coinbase(addr(i + 1), Amount(30_000), t(base + 1))
                .unwrap();
            ledger
                .pay(
                    &[addr(i), addr(i + 1)],
                    addr(100 + i),
                    Amount(55_000),
                    addr(220),
                    Amount::ZERO,
                    t(base + 2),
                )
                .unwrap();
        }
        // A CoinJoin-shaped tx that must not merge its inputs.
        let funding: Vec<u64> = (40..44u8)
            .map(|i| {
                ledger
                    .coinbase(addr(i), Amount(10_000), t(300 + i as i64))
                    .unwrap()
            })
            .collect();
        let inputs: Vec<OutPoint> = funding
            .into_iter()
            .map(|tx_index| OutPoint { tx_index, vout: 0 })
            .collect();
        let outputs: Vec<TxOut> = (50..54)
            .map(|b| TxOut {
                address: addr(b),
                value: Amount(9_900),
            })
            .collect();
        ledger.submit(&inputs, &outputs, t(400)).unwrap();
        ledger
    }

    #[test]
    fn view_matches_mutable_clustering() {
        let ledger = busy_ledger();
        let mut c = Clustering::build(&ledger);
        let view = ClusterView::build(&ledger);
        assert_eq!(view.cluster_count(), c.cluster_count());
        assert_eq!(view.address_count(), c.address_count());
        for i in 0..32u8 {
            assert_eq!(view.cluster_of(addr(i)), c.cluster_of(addr(i)), "addr {i}");
            assert_eq!(view.cluster_size(addr(i)), c.cluster_size(addr(i)));
        }
    }

    #[test]
    fn parallel_build_is_identical_for_any_thread_count() {
        let ledger = busy_ledger();
        let serial = ClusterView::build(&ledger);
        for threads in [2, 3, 4, 8] {
            let par = ClusterView::build_par(&ledger, ClusteringOptions::default(), threads);
            assert_eq!(par, serial, "{threads} threads");
        }
    }

    #[test]
    fn parallel_build_preserves_coinjoin_semantics() {
        let ledger = busy_ledger();
        let aware = ClusterView::build_par(&ledger, ClusteringOptions::default(), 4);
        assert_eq!(aware.skipped_coinjoins, 1);
        assert!(!aware.same_cluster(addr(40), addr(41)));
        let naive = ClusterView::build_par(
            &ledger,
            ClusteringOptions {
                coinjoin_aware: false,
            },
            4,
        );
        assert_eq!(naive.skipped_coinjoins, 0);
        assert!(naive.same_cluster(addr(40), addr(41)));
    }

    #[test]
    fn cross_shard_chains_merge() {
        let ledger = busy_ledger();
        let view = ClusterView::build_par(&ledger, ClusteringOptions::default(), 8);
        // The rolling co-spend chain merges addresses 0..=20.
        assert!(view.same_cluster(addr(0), addr(20)));
        assert_eq!(view.cluster_size(addr(0)), Some(21));
    }

    #[test]
    fn unknown_address_has_no_cluster() {
        let view = ClusterView::build(&BtcLedger::new());
        assert_eq!(view.cluster_of(addr(99)), None);
        assert_eq!(view.cluster_size(addr(99)), None);
        assert!(!view.same_cluster(addr(1), addr(1)));
    }
}
