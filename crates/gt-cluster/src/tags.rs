//! Category tagging of addresses and clusters.
//!
//! Chainalysis annotates clusters with the *category* of their real-world
//! operator, learned by transacting with known services. Our substitute
//! is seeded directly by the world generator: when it creates a service
//! entity (an exchange, a mixer, ...), it registers the entity's
//! addresses here. Lookups propagate through BTC clusters the same way
//! the real tool's do — tagging one address of an exchange tags the whole
//! multi-input cluster.

use crate::clustering::{ClusterId, Clustering};
use crate::view::ClusterView;
use gt_addr::Address;
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Operator categories, matching the vocabulary of the paper's analysis
/// (Sections 5.4–5.5).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub enum Category {
    /// Centralized exchange (the dominant victim payment origin).
    Exchange,
    /// Mixing service.
    Mixing,
    /// Token smart contract.
    TokenSmartContract,
    /// Known scam operation.
    Scam,
    /// OFAC-style sanctioned entity.
    SanctionedEntity,
    /// Gambling service.
    Gambling,
    /// Merchant payment processor.
    Merchant,
    /// Decentralized-finance protocol.
    Defi,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Category::Exchange => "exchange",
            Category::Mixing => "mixing",
            Category::TokenSmartContract => "token smart contract",
            Category::Scam => "scam",
            Category::SanctionedEntity => "sanctioned entity",
            Category::Gambling => "gambling",
            Category::Merchant => "merchant",
            Category::Defi => "defi",
        })
    }
}

/// Address → category registry with cluster propagation.
#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct TagService {
    direct: HashMap<Address, Category>,
}

impl TagService {
    pub fn new() -> Self {
        TagService::default()
    }

    /// Register a known service address.
    pub fn tag(&mut self, address: Address, category: Category) {
        self.direct.insert(address, category);
    }

    /// Number of directly tagged addresses.
    pub fn tagged_count(&self) -> usize {
        self.direct.len()
    }

    /// Direct lookup, no cluster propagation.
    pub fn category_direct(&self, address: Address) -> Option<Category> {
        self.direct.get(&address).copied()
    }

    /// Category of `address`, propagating through the BTC clustering:
    /// if any address in the same cluster is tagged, the tag applies.
    ///
    /// For account-model chains (ETH/XRP) there is no clustering, so the
    /// lookup is direct.
    pub fn category(&self, address: Address, clustering: &mut Clustering) -> Option<Category> {
        if let Some(c) = self.category_direct(address) {
            return Some(c);
        }
        if let Address::Btc(btc_addr) = address {
            let target = clustering.cluster_of(btc_addr)?;
            for (&candidate, &category) in &self.direct {
                if let Address::Btc(tagged_btc) = candidate {
                    if clustering.cluster_of(tagged_btc) == Some(target) {
                        return Some(category);
                    }
                }
            }
        }
        None
    }

    /// Precompute cluster-level tags against a frozen [`ClusterView`].
    ///
    /// The resulting [`TagResolver`] answers every lookup through `&self`
    /// (so it can be shared across pipeline stages) and resolves
    /// conflicting tags within one cluster deterministically: the tag of
    /// the lowest tagged address wins, independent of hash-map iteration
    /// order.
    pub fn resolver(&self, view: &ClusterView) -> TagResolver {
        let mut entries: Vec<(Address, Category)> =
            self.direct.iter().map(|(&a, &c)| (a, c)).collect();
        entries.sort_by_key(|&(a, _)| a);
        let mut cluster_tags: HashMap<ClusterId, Category> = HashMap::new();
        for (address, category) in entries {
            if let Address::Btc(btc_addr) = address {
                if let Some(id) = view.cluster_of(btc_addr) {
                    cluster_tags.entry(id).or_insert(category);
                }
            }
        }
        TagResolver {
            direct: self.direct.clone(),
            cluster_tags,
        }
    }
}

/// Immutable tag lookups with precomputed cluster propagation.
///
/// Built once from a [`TagService`] and a [`ClusterView`]; `Sync`, so the
/// parallel pipeline stages share one resolver by reference.
#[derive(Debug, Clone, StoreEncode, StoreDecode)]
pub struct TagResolver {
    direct: HashMap<Address, Category>,
    cluster_tags: HashMap<ClusterId, Category>,
}

impl TagResolver {
    /// A resolver that knows no tags: every category lookup is `None`.
    /// The quarantine-fallback companion of [`ClusterView::empty`].
    pub fn empty() -> Self {
        TagResolver {
            direct: HashMap::new(),
            cluster_tags: HashMap::new(),
        }
    }

    /// Direct lookup, no cluster propagation.
    pub fn category_direct(&self, address: Address) -> Option<Category> {
        self.direct.get(&address).copied()
    }

    /// Category of `address`, propagating through the BTC clustering the
    /// resolver was built against.
    pub fn category(&self, address: Address, view: &ClusterView) -> Option<Category> {
        if let Some(c) = self.category_direct(address) {
            return Some(c);
        }
        if let Address::Btc(btc_addr) = address {
            let id = view.cluster_of(btc_addr)?;
            return self.cluster_tags.get(&id).copied();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_addr::{BtcAddress, EthAddress};
    use gt_chain::{Amount, BtcLedger};
    use gt_sim::SimTime;

    fn addr(b: u8) -> BtcAddress {
        BtcAddress::P2pkh([b; 20])
    }

    fn t(s: i64) -> SimTime {
        SimTime(1_700_000_000 + s)
    }

    #[test]
    fn direct_tagging() {
        let mut tags = TagService::new();
        let a = Address::Eth(EthAddress([1; 20]));
        tags.tag(a, Category::Exchange);
        assert_eq!(tags.category_direct(a), Some(Category::Exchange));
        assert_eq!(tags.tagged_count(), 1);
        assert_eq!(
            tags.category_direct(Address::Eth(EthAddress([2; 20]))),
            None
        );
    }

    #[test]
    fn cluster_propagation() {
        // Exchange hot wallet co-spends two addresses; tagging one tags
        // the other via the cluster.
        let mut ledger = BtcLedger::new();
        ledger.coinbase(addr(1), Amount(5_000), t(0)).unwrap();
        ledger.coinbase(addr(2), Amount(5_000), t(1)).unwrap();
        ledger
            .pay(
                &[addr(1), addr(2)],
                addr(9),
                Amount(9_000),
                addr(1),
                Amount(100),
                t(2),
            )
            .unwrap();
        let mut clustering = Clustering::build(&ledger);

        let mut tags = TagService::new();
        tags.tag(Address::Btc(addr(1)), Category::Exchange);

        assert_eq!(
            tags.category(Address::Btc(addr(2)), &mut clustering),
            Some(Category::Exchange),
            "tag propagates through the cluster"
        );
        assert_eq!(
            tags.category(Address::Btc(addr(9)), &mut clustering),
            None,
            "recipient is a different cluster"
        );
    }

    #[test]
    fn untagged_unknown_is_none() {
        let ledger = BtcLedger::new();
        let mut clustering = Clustering::build(&ledger);
        let tags = TagService::new();
        assert_eq!(tags.category(Address::Btc(addr(7)), &mut clustering), None);
    }

    #[test]
    fn resolver_matches_mutable_lookup() {
        let mut ledger = BtcLedger::new();
        ledger.coinbase(addr(1), Amount(5_000), t(0)).unwrap();
        ledger.coinbase(addr(2), Amount(5_000), t(1)).unwrap();
        ledger
            .pay(
                &[addr(1), addr(2)],
                addr(9),
                Amount(9_000),
                addr(1),
                Amount(100),
                t(2),
            )
            .unwrap();
        let mut tags = TagService::new();
        tags.tag(Address::Btc(addr(1)), Category::Exchange);
        tags.tag(Address::Eth(EthAddress([1; 20])), Category::Mixing);

        let view = crate::view::ClusterView::build(&ledger);
        let resolver = tags.resolver(&view);
        let mut clustering = Clustering::build(&ledger);
        for b in [1u8, 2, 9, 42] {
            assert_eq!(
                resolver.category(Address::Btc(addr(b)), &view),
                tags.category(Address::Btc(addr(b)), &mut clustering),
                "addr {b}"
            );
        }
        assert_eq!(
            resolver.category(Address::Eth(EthAddress([1; 20])), &view),
            Some(Category::Mixing)
        );
        assert_eq!(
            resolver.category_direct(Address::Btc(addr(2))),
            None,
            "direct lookup does not propagate"
        );
    }

    #[test]
    fn resolver_conflicting_cluster_tags_are_deterministic() {
        // Cluster {1, 2, 3}; addr(1) and addr(2) carry different tags;
        // addr(3) is untagged and resolves through the cluster. The tag
        // of the lowest tagged address must win, regardless of the order
        // the tags were registered in.
        let mut ledger = BtcLedger::new();
        ledger.coinbase(addr(1), Amount(5_000), t(0)).unwrap();
        ledger.coinbase(addr(2), Amount(5_000), t(1)).unwrap();
        ledger
            .pay(
                &[addr(1), addr(2)],
                addr(9),
                Amount(9_000),
                addr(1),
                Amount(100),
                t(2),
            )
            .unwrap();
        ledger.coinbase(addr(2), Amount(5_000), t(3)).unwrap();
        ledger.coinbase(addr(3), Amount(5_000), t(4)).unwrap();
        ledger
            .pay(
                &[addr(2), addr(3)],
                addr(9),
                Amount(9_000),
                addr(2),
                Amount(100),
                t(5),
            )
            .unwrap();
        let view = crate::view::ClusterView::build(&ledger);
        assert!(view.same_cluster(addr(1), addr(3)));

        let mut forwards = TagService::new();
        forwards.tag(Address::Btc(addr(1)), Category::Exchange);
        forwards.tag(Address::Btc(addr(2)), Category::Gambling);
        let mut backwards = TagService::new();
        backwards.tag(Address::Btc(addr(2)), Category::Gambling);
        backwards.tag(Address::Btc(addr(1)), Category::Exchange);

        let probe = Address::Btc(addr(3));
        assert_eq!(
            forwards.resolver(&view).category(probe, &view),
            Some(Category::Exchange),
            "lowest tagged address wins"
        );
        assert_eq!(
            backwards.resolver(&view).category(probe, &view),
            Some(Category::Exchange),
            "registration order is irrelevant"
        );
    }

    #[test]
    fn category_display_matches_paper_vocabulary() {
        assert_eq!(Category::Exchange.to_string(), "exchange");
        assert_eq!(
            Category::TokenSmartContract.to_string(),
            "token smart contract"
        );
        assert_eq!(Category::SanctionedEntity.to_string(), "sanctioned entity");
        assert_eq!(Category::Mixing.to_string(), "mixing");
        assert_eq!(Category::Scam.to_string(), "scam");
    }
}
