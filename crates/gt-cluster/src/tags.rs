//! Category tagging of addresses and clusters.
//!
//! Chainalysis annotates clusters with the *category* of their real-world
//! operator, learned by transacting with known services. Our substitute
//! is seeded directly by the world generator: when it creates a service
//! entity (an exchange, a mixer, ...), it registers the entity's
//! addresses here. Lookups propagate through BTC clusters the same way
//! the real tool's do — tagging one address of an exchange tags the whole
//! multi-input cluster.

use crate::clustering::Clustering;
use gt_addr::Address;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Operator categories, matching the vocabulary of the paper's analysis
/// (Sections 5.4–5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Centralized exchange (the dominant victim payment origin).
    Exchange,
    /// Mixing service.
    Mixing,
    /// Token smart contract.
    TokenSmartContract,
    /// Known scam operation.
    Scam,
    /// OFAC-style sanctioned entity.
    SanctionedEntity,
    /// Gambling service.
    Gambling,
    /// Merchant payment processor.
    Merchant,
    /// Decentralized-finance protocol.
    Defi,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Category::Exchange => "exchange",
            Category::Mixing => "mixing",
            Category::TokenSmartContract => "token smart contract",
            Category::Scam => "scam",
            Category::SanctionedEntity => "sanctioned entity",
            Category::Gambling => "gambling",
            Category::Merchant => "merchant",
            Category::Defi => "defi",
        })
    }
}

/// Address → category registry with cluster propagation.
#[derive(Debug, Default)]
pub struct TagService {
    direct: HashMap<Address, Category>,
}

impl TagService {
    pub fn new() -> Self {
        TagService::default()
    }

    /// Register a known service address.
    pub fn tag(&mut self, address: Address, category: Category) {
        self.direct.insert(address, category);
    }

    /// Number of directly tagged addresses.
    pub fn tagged_count(&self) -> usize {
        self.direct.len()
    }

    /// Direct lookup, no cluster propagation.
    pub fn category_direct(&self, address: Address) -> Option<Category> {
        self.direct.get(&address).copied()
    }

    /// Category of `address`, propagating through the BTC clustering:
    /// if any address in the same cluster is tagged, the tag applies.
    ///
    /// For account-model chains (ETH/XRP) there is no clustering, so the
    /// lookup is direct.
    pub fn category(&self, address: Address, clustering: &mut Clustering) -> Option<Category> {
        if let Some(c) = self.category_direct(address) {
            return Some(c);
        }
        if let Address::Btc(btc_addr) = address {
            let target = clustering.cluster_of(btc_addr)?;
            for (&candidate, &category) in &self.direct {
                if let Address::Btc(tagged_btc) = candidate {
                    if clustering.cluster_of(tagged_btc) == Some(target) {
                        return Some(category);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_addr::{BtcAddress, EthAddress};
    use gt_chain::{Amount, BtcLedger};
    use gt_sim::SimTime;

    fn addr(b: u8) -> BtcAddress {
        BtcAddress::P2pkh([b; 20])
    }

    fn t(s: i64) -> SimTime {
        SimTime(1_700_000_000 + s)
    }

    #[test]
    fn direct_tagging() {
        let mut tags = TagService::new();
        let a = Address::Eth(EthAddress([1; 20]));
        tags.tag(a, Category::Exchange);
        assert_eq!(tags.category_direct(a), Some(Category::Exchange));
        assert_eq!(tags.tagged_count(), 1);
        assert_eq!(
            tags.category_direct(Address::Eth(EthAddress([2; 20]))),
            None
        );
    }

    #[test]
    fn cluster_propagation() {
        // Exchange hot wallet co-spends two addresses; tagging one tags
        // the other via the cluster.
        let mut ledger = BtcLedger::new();
        ledger.coinbase(addr(1), Amount(5_000), t(0)).unwrap();
        ledger.coinbase(addr(2), Amount(5_000), t(1)).unwrap();
        ledger
            .pay(&[addr(1), addr(2)], addr(9), Amount(9_000), addr(1), Amount(100), t(2))
            .unwrap();
        let mut clustering = Clustering::build(&ledger);

        let mut tags = TagService::new();
        tags.tag(Address::Btc(addr(1)), Category::Exchange);

        assert_eq!(
            tags.category(Address::Btc(addr(2)), &mut clustering),
            Some(Category::Exchange),
            "tag propagates through the cluster"
        );
        assert_eq!(
            tags.category(Address::Btc(addr(9)), &mut clustering),
            None,
            "recipient is a different cluster"
        );
    }

    #[test]
    fn untagged_unknown_is_none() {
        let ledger = BtcLedger::new();
        let mut clustering = Clustering::build(&ledger);
        let tags = TagService::new();
        assert_eq!(tags.category(Address::Btc(addr(7)), &mut clustering), None);
    }

    #[test]
    fn category_display_matches_paper_vocabulary() {
        assert_eq!(Category::Exchange.to_string(), "exchange");
        assert_eq!(Category::TokenSmartContract.to_string(), "token smart contract");
        assert_eq!(Category::SanctionedEntity.to_string(), "sanctioned entity");
        assert_eq!(Category::Mixing.to_string(), "mixing");
        assert_eq!(Category::Scam.to_string(), "scam");
    }
}
