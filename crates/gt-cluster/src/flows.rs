//! Multi-hop flow tracing.
//!
//! The paper reports that only 4% of *direct* cash-out recipients are
//! exchanges and twice notes that "more advanced blockchain analysis"
//! (citing Phillips & Wilder) would attribute more. This module is that
//! analysis: follow funds forward from a source address through
//! unlabeled intermediary hops until they reach a labeled service (or
//! the trace bottoms out), attributing value proportionally at each
//! split.

use crate::tags::{Category, TagResolver};
use crate::view::ClusterView;
use gt_addr::Address;
use gt_chain::ChainView;
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Where traced value ended up.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlowExposure {
    /// Value (in base units of the source's coin) attributed to each
    /// category.
    pub by_category: BTreeMap<Category, f64>,
    /// Value still sitting at unlabeled addresses when the trace ended
    /// (depth exhausted or funds unspent).
    pub unresolved: f64,
    /// Addresses visited.
    pub visited: usize,
}

impl FlowExposure {
    /// Fraction of traced value reaching `category`.
    pub fn share(&self, category: Category) -> f64 {
        let total: f64 = self.by_category.values().sum::<f64>() + self.unresolved;
        if total == 0.0 {
            return 0.0;
        }
        self.by_category.get(&category).copied().unwrap_or(0.0) / total
    }
}

/// Trace value forward from `source` for up to `max_hops` hops.
///
/// At each address, outgoing transfers split the inbound value
/// proportionally to their amounts; transfers to labeled addresses
/// terminate (value attributed to the label), unlabeled recipients are
/// followed. Cycles are cut by a visited set.
pub fn trace_forward(
    source: Address,
    chains: &ChainView,
    tags: &TagResolver,
    clustering: &ClusterView,
    max_hops: usize,
) -> FlowExposure {
    let mut exposure = FlowExposure::default();
    let mut visited: HashSet<Address> = HashSet::new();
    // (address, value-weight carried, hops used)
    let mut queue: VecDeque<(Address, f64, usize)> = VecDeque::new();

    let initial: f64 = chains
        .incoming(source)
        .iter()
        .map(|t| t.amount.0 as f64)
        .sum();
    if initial == 0.0 {
        return exposure;
    }
    queue.push_back((source, initial, 0));
    visited.insert(source);

    while let Some((addr, carried, hops)) = queue.pop_front() {
        exposure.visited += 1;
        let outgoing = chains.outgoing(addr);
        let total_out: f64 = outgoing.iter().map(|t| t.amount.0 as f64).sum();
        if total_out == 0.0 || hops >= max_hops {
            exposure.unresolved += carried;
            continue;
        }
        // Haircut attribution: the carried value-weight is split over
        // the outgoing transfers proportionally to their amounts (the
        // standard approach when funds co-mingle at an address). Only
        // the portion actually sent onward can be forwarded — whatever
        // the address retains stays unresolved.
        let forwarded = carried.min(total_out);
        exposure.unresolved += carried - forwarded;
        for transfer in outgoing {
            let share = transfer.amount.0 as f64 / total_out;
            let value = forwarded * share;
            match tags.category(transfer.recipient, clustering) {
                Some(category) => {
                    *exposure.by_category.entry(category).or_insert(0.0) += value;
                }
                None => {
                    if visited.insert(transfer.recipient) {
                        queue.push_back((transfer.recipient, value, hops + 1));
                    } else {
                        exposure.unresolved += value;
                    }
                }
            }
        }
    }
    exposure
}

/// Aggregate exposure over many sources (e.g. every scam recipient
/// address), per category, in value terms.
pub fn aggregate_exposure(
    sources: &[Address],
    chains: &ChainView,
    tags: &TagResolver,
    clustering: &ClusterView,
    max_hops: usize,
) -> FlowExposure {
    let mut total = FlowExposure::default();
    for &source in sources {
        let e = trace_forward(source, chains, tags, clustering, max_hops);
        for (category, value) in e.by_category {
            *total.by_category.entry(category).or_insert(0.0) += value;
        }
        total.unresolved += e.unresolved;
        total.visited += e.visited;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::TagService;
    use gt_addr::BtcAddress;
    use gt_chain::Amount;
    use gt_sim::SimTime;

    fn addr(b: u8) -> BtcAddress {
        BtcAddress::P2pkh([b; 20])
    }

    fn a(b: u8) -> Address {
        Address::Btc(addr(b))
    }

    fn t(s: i64) -> SimTime {
        SimTime(1_700_000_000 + s)
    }

    /// victim(1) → scam(9) → hop(10) → exchange(20)
    fn chain_with_one_hop() -> (ChainView, TagService) {
        let mut chains = ChainView::new();
        let mut tags = TagService::new();
        tags.tag(a(20), Category::Exchange);
        chains.btc.coinbase(addr(1), Amount(110_000), t(0)).unwrap();
        chains
            .btc
            .pay(
                &[addr(1)],
                addr(9),
                Amount(100_000),
                addr(1),
                Amount(100),
                t(1),
            )
            .unwrap();
        chains
            .btc
            .pay(
                &[addr(9)],
                addr(10),
                Amount(99_000),
                addr(9),
                Amount(100),
                t(2),
            )
            .unwrap();
        chains
            .btc
            .pay(
                &[addr(10)],
                addr(20),
                Amount(98_000),
                addr(10),
                Amount(100),
                t(3),
            )
            .unwrap();
        (chains, tags)
    }

    #[test]
    fn one_hop_trace_reaches_the_exchange() {
        let (chains, tags) = chain_with_one_hop();
        let clustering = ClusterView::build(&chains.btc);
        let tags = tags.resolver(&clustering);
        // Depth 1: stops at the unlabeled hop.
        let shallow = trace_forward(a(9), &chains, &tags, &clustering, 1);
        assert_eq!(shallow.share(Category::Exchange), 0.0);
        assert!(shallow.unresolved > 0.0);
        // Depth 3: reaches the exchange.
        let deep = trace_forward(a(9), &chains, &tags, &clustering, 3);
        assert!(
            deep.share(Category::Exchange) > 0.9,
            "exchange share {}",
            deep.share(Category::Exchange)
        );
    }

    #[test]
    fn value_splits_proportionally() {
        let mut chains = ChainView::new();
        let mut tags = TagService::new();
        tags.tag(a(20), Category::Exchange);
        tags.tag(a(21), Category::Mixing);
        chains.btc.coinbase(addr(1), Amount(110_000), t(0)).unwrap();
        chains
            .btc
            .pay(
                &[addr(1)],
                addr(9),
                Amount(100_000),
                addr(1),
                Amount(0),
                t(1),
            )
            .unwrap();
        // 75/25 split to exchange and mixer.
        let utxos: Vec<_> = chains
            .btc
            .utxos_of(addr(9))
            .into_iter()
            .map(|(op, _)| op)
            .collect();
        chains
            .btc
            .submit(
                &utxos,
                &[
                    gt_chain::TxOut {
                        address: addr(20),
                        value: Amount(75_000),
                    },
                    gt_chain::TxOut {
                        address: addr(21),
                        value: Amount(25_000),
                    },
                ],
                t(2),
            )
            .unwrap();
        let clustering = ClusterView::build(&chains.btc);
        let tags = tags.resolver(&clustering);
        let e = trace_forward(a(9), &chains, &tags, &clustering, 2);
        assert!((e.share(Category::Exchange) - 0.75).abs() < 0.01);
        assert!((e.share(Category::Mixing) - 0.25).abs() < 0.01);
    }

    #[test]
    fn unspent_funds_stay_unresolved() {
        let mut chains = ChainView::new();
        let tags = TagService::new();
        chains.btc.coinbase(addr(1), Amount(50_000), t(0)).unwrap();
        chains
            .btc
            .pay(
                &[addr(1)],
                addr(9),
                Amount(40_000),
                addr(1),
                Amount(0),
                t(1),
            )
            .unwrap();
        let clustering = ClusterView::build(&chains.btc);
        let tags = tags.resolver(&clustering);
        let e = trace_forward(a(9), &chains, &tags, &clustering, 5);
        assert_eq!(e.by_category.len(), 0);
        assert!(e.unresolved > 0.0);
    }

    #[test]
    fn cycles_do_not_loop_forever() {
        let mut chains = ChainView::new();
        let tags = TagService::new();
        chains.btc.coinbase(addr(9), Amount(100_000), t(0)).unwrap();
        chains
            .btc
            .pay(
                &[addr(9)],
                addr(10),
                Amount(90_000),
                addr(9),
                Amount(0),
                t(1),
            )
            .unwrap();
        chains
            .btc
            .pay(
                &[addr(10)],
                addr(9),
                Amount(80_000),
                addr(10),
                Amount(0),
                t(2),
            )
            .unwrap();
        let clustering = ClusterView::build(&chains.btc);
        let tags = tags.resolver(&clustering);
        let e = trace_forward(a(9), &chains, &tags, &clustering, 10);
        assert!(e.visited <= 3);
    }

    #[test]
    fn aggregate_sums_sources() {
        let (chains, tags) = chain_with_one_hop();
        let clustering = ClusterView::build(&chains.btc);
        let tags = tags.resolver(&clustering);
        let agg = aggregate_exposure(&[a(9)], &chains, &tags, &clustering, 3);
        let single = trace_forward(a(9), &chains, &tags, &clustering, 3);
        assert_eq!(agg.by_category, single.by_category);
    }

    #[test]
    fn empty_source_is_empty() {
        let chains = ChainView::new();
        let tags = TagService::new();
        let clustering = ClusterView::build(&chains.btc);
        let tags = tags.resolver(&clustering);
        let e = trace_forward(a(42), &chains, &tags, &clustering, 3);
        assert_eq!(e.visited, 0);
        assert_eq!(e.unresolved, 0.0);
    }
}
