//! CoinJoin detection.
//!
//! The multi-input heuristic assumes all inputs of a transaction are
//! controlled by one entity. CoinJoin deliberately violates that
//! assumption: several participants contribute inputs and receive
//! equal-valued outputs. Chainalysis avoids this false positive with
//! proprietary heuristics; we use the standard published shape test.

use gt_chain::BtcTx;
use std::collections::HashMap;

/// Minimum number of equal-valued outputs for the CoinJoin shape.
pub const MIN_EQUAL_OUTPUTS: usize = 3;

/// Whether `tx` has the CoinJoin shape:
///
/// * at least [`MIN_EQUAL_OUTPUTS`] outputs share one exact value, and
/// * the number of distinct input addresses is at least that count
///   (each participant funds at least one input).
pub fn looks_like_coinjoin(tx: &BtcTx) -> bool {
    if tx.coinbase {
        return false;
    }
    let mut value_counts: HashMap<u64, usize> = HashMap::new();
    for o in &tx.outputs {
        *value_counts.entry(o.value.0).or_insert(0) += 1;
    }
    let max_equal = value_counts.values().copied().max().unwrap_or(0);
    if max_equal < MIN_EQUAL_OUTPUTS {
        return false;
    }
    tx.input_addresses().len() >= max_equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_addr::BtcAddress;
    use gt_chain::{Amount, BtcLedger, OutPoint, TxOut};
    use gt_sim::SimTime;

    fn addr(b: u8) -> BtcAddress {
        BtcAddress::P2pkh([b; 20])
    }

    fn t(s: i64) -> SimTime {
        SimTime(1_700_000_000 + s)
    }

    fn funded_ledger(n: usize, value: u64) -> BtcLedger {
        let mut ledger = BtcLedger::new();
        for i in 0..n {
            ledger
                .coinbase(addr(i as u8), Amount(value), t(i as i64))
                .unwrap();
        }
        ledger
    }

    #[test]
    fn classic_coinjoin_detected() {
        let mut ledger = funded_ledger(4, 10_000);
        let inputs: Vec<OutPoint> = (0..4)
            .map(|i| OutPoint {
                tx_index: i,
                vout: 0,
            })
            .collect();
        let outputs: Vec<TxOut> = (10..14)
            .map(|b| TxOut {
                address: addr(b),
                value: Amount(9_900),
            })
            .collect();
        let idx = ledger.submit(&inputs, &outputs, t(10)).unwrap();
        assert!(looks_like_coinjoin(ledger.tx(idx).unwrap()));
    }

    #[test]
    fn ordinary_payment_not_detected() {
        let mut ledger = funded_ledger(1, 100_000);
        ledger
            .pay(
                &[addr(0)],
                addr(9),
                Amount(40_000),
                addr(0),
                Amount(100),
                t(5),
            )
            .unwrap();
        assert!(!looks_like_coinjoin(ledger.tx(1).unwrap()));
    }

    #[test]
    fn consolidation_not_detected() {
        // Many inputs, one output: typical scammer consolidation.
        let mut ledger = funded_ledger(5, 10_000);
        let inputs: Vec<OutPoint> = (0..5)
            .map(|i| OutPoint {
                tx_index: i,
                vout: 0,
            })
            .collect();
        let outputs = vec![TxOut {
            address: addr(9),
            value: Amount(49_000),
        }];
        let idx = ledger.submit(&inputs, &outputs, t(10)).unwrap();
        assert!(!looks_like_coinjoin(ledger.tx(idx).unwrap()));
    }

    #[test]
    fn equal_outputs_but_single_input_owner_not_detected() {
        // One entity fanning out equal amounts (e.g. an exchange hot
        // wallet batching) — fewer distinct input addresses than equal
        // outputs.
        let mut ledger = BtcLedger::new();
        ledger.coinbase(addr(0), Amount(10_000), t(0)).unwrap();
        ledger.coinbase(addr(0), Amount(10_000), t(1)).unwrap();
        let inputs = [
            OutPoint {
                tx_index: 0,
                vout: 0,
            },
            OutPoint {
                tx_index: 1,
                vout: 0,
            },
        ];
        let outputs: Vec<TxOut> = (10..14)
            .map(|b| TxOut {
                address: addr(b),
                value: Amount(4_900),
            })
            .collect();
        let idx = ledger.submit(&inputs, &outputs, t(2)).unwrap();
        assert!(!looks_like_coinjoin(ledger.tx(idx).unwrap()));
    }

    #[test]
    fn coinbase_never_coinjoin() {
        let ledger = funded_ledger(1, 10_000);
        assert!(!looks_like_coinjoin(ledger.tx(0).unwrap()));
    }
}
