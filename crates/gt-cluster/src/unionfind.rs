//! Disjoint-set forest with union by rank and path compression.

/// A classic union-find over dense `usize` keys.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Add a new singleton and return its key.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.rank.push(0);
        id
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`. Returns the new root.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => {
                self.parent[ra] = rb;
                rb
            }
            std::cmp::Ordering::Greater => {
                self.parent[rb] = ra;
                ra
            }
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
                ra
            }
        }
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Sizes of every set, keyed by representative.
    pub fn set_sizes(&mut self) -> std::collections::HashMap<usize, usize> {
        let mut sizes = std::collections::HashMap::new();
        for i in 0..self.parent.len() {
            *sizes.entry(self.find(i)).or_insert(0) += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_separate() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.find(3), 3);
        assert_eq!(uf.len(), 5);
    }

    #[test]
    fn union_connects_transitively() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(4, 5);
        assert!(uf.connected(0, 2));
        assert!(uf.connected(4, 5));
        assert!(!uf.connected(2, 4));
    }

    #[test]
    fn set_sizes_account_for_everything() {
        let mut uf = UnionFind::new(10);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(3, 4);
        let sizes = uf.set_sizes();
        let total: usize = sizes.values().sum();
        assert_eq!(total, 10);
        let mut counts: Vec<usize> = sizes.values().copied().collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 1, 1, 1, 1, 2, 3]);
    }

    #[test]
    fn push_grows_the_forest() {
        let mut uf = UnionFind::new(0);
        let a = uf.push();
        let b = uf.push();
        assert_eq!((a, b), (0, 1));
        uf.union(a, b);
        assert!(uf.connected(0, 1));
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(3);
        let r1 = uf.union(0, 1);
        let r2 = uf.union(0, 1);
        assert_eq!(r1, r2);
        assert_eq!(uf.set_sizes().len(), 2);
    }

    #[test]
    fn path_compression_preserves_roots() {
        let mut uf = UnionFind::new(100);
        for i in 1..100 {
            uf.union(i - 1, i);
        }
        let root = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), root);
        }
    }
}
