//! Blockchain analysis: the repository's Chainalysis substitute.
//!
//! The paper consumes two annotations from the Chainalysis Crypto
//! Investigations tool: (1) the *multi-input cluster* an address belongs
//! to and (2) the *category* of the cluster's real-world operator
//! (exchange, mixer, token smart contract, scam, sanctioned entity, ...).
//! Both are reproduced here from first principles:
//!
//! * [`clustering`] implements the multi-input heuristic (Meiklejohn et
//!   al., IMC 2013) over the simulated BTC ledger with a CoinJoin
//!   detector that prevents the classic false-merge;
//! * [`tags`] is a category-tagging service seeded with ground-truth
//!   service entities, mimicking how the real tool learns labels by
//!   transacting with known services.

pub mod clustering;
pub mod coinjoin;
pub mod flows;
pub mod tags;
pub mod unionfind;
pub mod view;

pub use clustering::{ClusterId, Clustering, ClusteringOptions};
pub use coinjoin::looks_like_coinjoin;
pub use flows::{aggregate_exposure, trace_forward, FlowExposure};
pub use tags::{Category, TagResolver, TagService};
pub use unionfind::UnionFind;
pub use view::ClusterView;
