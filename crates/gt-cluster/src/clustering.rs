//! Multi-input clustering over the BTC ledger.
//!
//! The heuristic (Reid & Harrigan 2013; Meiklejohn et al. 2013): all
//! input addresses of a transaction are controlled by the same entity.
//! Transactions with the CoinJoin shape are skipped to avoid the known
//! false-merge. Account chains (ETH/XRP) have no multi-input structure,
//! so each address is trivially its own cluster — the analysis only ever
//! asks for BTC cluster sizes (Section 5.5 of the paper).

use crate::coinjoin::looks_like_coinjoin;
use crate::unionfind::UnionFind;
use crate::view::ClusterView;
use gt_addr::BtcAddress;
use gt_chain::BtcLedger;
use gt_store::{StoreDecode, StoreEncode};
use std::collections::HashMap;

/// Opaque cluster identifier (stable within one `Clustering`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, StoreEncode, StoreDecode)]
pub struct ClusterId(pub usize);

/// Options controlling cluster construction.
#[derive(Debug, Clone, Copy)]
pub struct ClusteringOptions {
    /// Skip CoinJoin-shaped transactions (on in production; the ablation
    /// bench turns it off to measure the false-merge impact).
    pub coinjoin_aware: bool,
}

impl Default for ClusteringOptions {
    fn default() -> Self {
        ClusteringOptions {
            coinjoin_aware: true,
        }
    }
}

/// The result of multi-input clustering.
#[derive(Debug)]
pub struct Clustering {
    indices: HashMap<BtcAddress, usize>,
    uf: UnionFind,
    /// Cached representative → dense cluster id.
    cluster_ids: HashMap<usize, ClusterId>,
    /// Cached cluster sizes by dense id.
    sizes: Vec<usize>,
    /// Number of transactions skipped as CoinJoin-shaped.
    pub skipped_coinjoins: usize,
}

impl Clustering {
    /// Run multi-input clustering over every confirmed transaction.
    pub fn build(ledger: &BtcLedger) -> Self {
        Self::build_with(ledger, ClusteringOptions::default())
    }

    /// Run with explicit options.
    pub fn build_with(ledger: &BtcLedger, options: ClusteringOptions) -> Self {
        let mut indices: HashMap<BtcAddress, usize> = HashMap::new();
        let mut uf = UnionFind::new(0);
        let mut skipped = 0usize;

        let index_of =
            |addr: BtcAddress, uf: &mut UnionFind, map: &mut HashMap<BtcAddress, usize>| {
                *map.entry(addr).or_insert_with(|| uf.push())
            };

        for tx in ledger.txs() {
            // Register every address we see so singletons exist too.
            for o in &tx.outputs {
                index_of(o.address, &mut uf, &mut indices);
            }
            let inputs = tx.input_addresses();
            if inputs.is_empty() {
                continue;
            }
            if options.coinjoin_aware && looks_like_coinjoin(tx) {
                skipped += 1;
                // Still register the input addresses as singletons.
                for a in inputs {
                    index_of(a, &mut uf, &mut indices);
                }
                continue;
            }
            let first = index_of(inputs[0], &mut uf, &mut indices);
            for a in &inputs[1..] {
                let idx = index_of(*a, &mut uf, &mut indices);
                uf.union(first, idx);
            }
        }

        // Freeze: assign dense ids and sizes.
        let mut cluster_ids = HashMap::new();
        let mut sizes = Vec::new();
        let keys: Vec<usize> = (0..uf.len()).collect();
        for k in keys {
            let root = uf.find(k);
            let next_id = ClusterId(sizes.len());
            let id = *cluster_ids.entry(root).or_insert_with(|| {
                sizes.push(0);
                next_id
            });
            sizes[id.0] += 1;
        }

        Clustering {
            indices,
            uf,
            cluster_ids,
            sizes,
            skipped_coinjoins: skipped,
        }
    }

    /// The cluster containing `address`, if the address appeared on chain.
    pub fn cluster_of(&mut self, address: BtcAddress) -> Option<ClusterId> {
        let idx = *self.indices.get(&address)?;
        let root = self.uf.find(idx);
        self.cluster_ids.get(&root).copied()
    }

    /// Size of the cluster containing `address` (number of addresses).
    pub fn cluster_size(&mut self, address: BtcAddress) -> Option<usize> {
        let id = self.cluster_of(address)?;
        Some(self.sizes[id.0])
    }

    /// Whether two addresses share a cluster.
    pub fn same_cluster(&mut self, a: BtcAddress, b: BtcAddress) -> bool {
        match (self.cluster_of(a), self.cluster_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of distinct clusters.
    pub fn cluster_count(&self) -> usize {
        self.sizes.len()
    }

    /// Number of addresses known to the clustering.
    pub fn address_count(&self) -> usize {
        self.indices.len()
    }

    /// Freeze into an immutable [`ClusterView`] that answers every query
    /// through `&self` and can be shared across threads.
    pub fn finalize(self) -> ClusterView {
        crate::view::freeze(self.indices, self.uf, self.skipped_coinjoins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_chain::{Amount, OutPoint, TxOut};
    use gt_sim::SimTime;

    fn addr(b: u8) -> BtcAddress {
        BtcAddress::P2pkh([b; 20])
    }

    fn t(s: i64) -> SimTime {
        SimTime(1_700_000_000 + s)
    }

    #[test]
    fn multi_input_tx_merges_input_addresses() {
        let mut ledger = BtcLedger::new();
        ledger.coinbase(addr(1), Amount(5_000), t(0)).unwrap();
        ledger.coinbase(addr(2), Amount(5_000), t(1)).unwrap();
        ledger
            .pay(
                &[addr(1), addr(2)],
                addr(9),
                Amount(9_000),
                addr(3),
                Amount(100),
                t(2),
            )
            .unwrap();

        let mut c = Clustering::build(&ledger);
        assert!(c.same_cluster(addr(1), addr(2)));
        assert!(!c.same_cluster(addr(1), addr(9)), "recipient not merged");
        assert_eq!(c.cluster_size(addr(1)), Some(2));
        assert_eq!(c.cluster_size(addr(9)), Some(1));
    }

    #[test]
    fn chains_of_cospending_merge_transitively() {
        let mut ledger = BtcLedger::new();
        for i in 1..=3 {
            ledger
                .coinbase(addr(i), Amount(5_000), t(i as i64))
                .unwrap();
        }
        ledger
            .pay(
                &[addr(1), addr(2)],
                addr(10),
                Amount(9_000),
                addr(1),
                Amount(0),
                t(4),
            )
            .unwrap();
        ledger.coinbase(addr(2), Amount(5_000), t(5)).unwrap();
        ledger
            .pay(
                &[addr(2), addr(3)],
                addr(11),
                Amount(9_000),
                addr(2),
                Amount(0),
                t(6),
            )
            .unwrap();

        let mut c = Clustering::build(&ledger);
        assert!(
            c.same_cluster(addr(1), addr(3)),
            "transitive merge via addr 2"
        );
        assert_eq!(c.cluster_size(addr(1)), Some(3));
    }

    #[test]
    fn coinjoin_not_merged_when_aware() {
        let mut ledger = BtcLedger::new();
        for i in 0..4u8 {
            ledger
                .coinbase(addr(i), Amount(10_000), t(i as i64))
                .unwrap();
        }
        let inputs: Vec<OutPoint> = (0..4)
            .map(|i| OutPoint {
                tx_index: i,
                vout: 0,
            })
            .collect();
        let outputs: Vec<TxOut> = (10..14)
            .map(|b| TxOut {
                address: addr(b),
                value: Amount(9_900),
            })
            .collect();
        ledger.submit(&inputs, &outputs, t(10)).unwrap();

        let mut aware = Clustering::build(&ledger);
        assert!(!aware.same_cluster(addr(0), addr(1)));
        assert_eq!(aware.skipped_coinjoins, 1);
        assert_eq!(aware.cluster_size(addr(0)), Some(1));

        let mut naive = Clustering::build_with(
            &ledger,
            ClusteringOptions {
                coinjoin_aware: false,
            },
        );
        assert!(
            naive.same_cluster(addr(0), addr(1)),
            "naive clustering falls for the CoinJoin false merge"
        );
        assert_eq!(naive.cluster_size(addr(0)), Some(4));
    }

    #[test]
    fn unknown_address_has_no_cluster() {
        let ledger = BtcLedger::new();
        let mut c = Clustering::build(&ledger);
        assert_eq!(c.cluster_of(addr(42)), None);
        assert_eq!(c.cluster_size(addr(42)), None);
    }

    #[test]
    fn single_input_spends_keep_singletons() {
        // A scammer using one fresh address per campaign, spending each
        // with single-input transactions, stays cluster-size one — the
        // behaviour Section 5.5 observes for 87% of scam addresses.
        let mut ledger = BtcLedger::new();
        for i in 1..=3u8 {
            ledger
                .coinbase(addr(i), Amount(10_000), t(i as i64))
                .unwrap();
        }
        for i in 1..=3u8 {
            ledger
                .pay(
                    &[addr(i)],
                    addr(100 + i),
                    Amount(9_000),
                    addr(i),
                    Amount(100),
                    t(i as i64 + 10),
                )
                .unwrap();
        }
        let mut c = Clustering::build(&ledger);
        for i in 1..=3u8 {
            assert_eq!(c.cluster_size(addr(i)), Some(1), "addr {i}");
        }
    }

    #[test]
    fn cluster_counts_are_consistent() {
        let mut ledger = BtcLedger::new();
        ledger.coinbase(addr(1), Amount(5_000), t(0)).unwrap();
        ledger.coinbase(addr(2), Amount(5_000), t(1)).unwrap();
        ledger
            .pay(
                &[addr(1), addr(2)],
                addr(9),
                Amount(9_500),
                addr(1),
                Amount(0),
                t(2),
            )
            .unwrap();
        let c = Clustering::build(&ledger);
        // addr1+addr2 cluster, addr9 singleton.
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.address_count(), 3);
    }
}
