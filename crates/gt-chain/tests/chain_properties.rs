//! Property tests for the ledger simulators: value conservation,
//! double-spend safety, and index consistency under random workloads.

use gt_addr::BtcAddress;
use gt_addr::{EthAddress, XrpAddress};
use gt_chain::{Amount, BtcLedger, EthLedger, OutPoint, TxOut, XrpLedger};
use gt_sim::SimTime;
use proptest::prelude::*;

fn addr(i: u8) -> BtcAddress {
    BtcAddress::P2pkh([i; 20])
}

/// A random scripted BTC workload: coinbases then payments.
#[derive(Debug, Clone)]
enum BtcAction {
    Coinbase {
        to: u8,
        value: u64,
    },
    Pay {
        from: u8,
        to: u8,
        value: u64,
        fee: u64,
    },
}

fn btc_action() -> impl Strategy<Value = BtcAction> {
    prop_oneof![
        (0u8..8, 1_000u64..10_000_000).prop_map(|(to, value)| BtcAction::Coinbase { to, value }),
        (0u8..8, 0u8..8, 1u64..5_000_000, 0u64..10_000).prop_map(|(from, to, value, fee)| {
            BtcAction::Pay {
                from,
                to,
                value,
                fee,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btc_value_is_conserved(actions in proptest::collection::vec(btc_action(), 1..60)) {
        let mut ledger = BtcLedger::new();
        let mut minted: u64 = 0;
        let mut fees: u64 = 0;
        let mut t = SimTime(1_700_000_000);
        for action in actions {
            t = SimTime(t.0 + 60);
            match action {
                BtcAction::Coinbase { to, value } => {
                    ledger.coinbase(addr(to), Amount(value), t).unwrap();
                    minted += value;
                }
                BtcAction::Pay { from, to, value, fee } => {
                    // May fail on insufficient funds: that's fine.
                    if ledger
                        .pay(&[addr(from)], addr(to), Amount(value), addr(from), Amount(fee), t)
                        .is_ok()
                    {
                        fees += fee;
                    }
                }
            }
        }
        let total_balance: u64 = (0..8).map(|i| ledger.balance(addr(i)).0).sum();
        prop_assert_eq!(total_balance + fees, minted, "supply conservation");
    }

    #[test]
    fn btc_every_outpoint_spent_at_most_once(actions in proptest::collection::vec(btc_action(), 1..60)) {
        let mut ledger = BtcLedger::new();
        let mut t = SimTime(1_700_000_000);
        for action in actions {
            t = SimTime(t.0 + 60);
            match action {
                BtcAction::Coinbase { to, value } => {
                    ledger.coinbase(addr(to), Amount(value), t).unwrap();
                }
                BtcAction::Pay { from, to, value, fee } => {
                    let _ = ledger.pay(&[addr(from)], addr(to), Amount(value), addr(from), Amount(fee), t);
                }
            }
        }
        // Count how many times each outpoint appears as an input.
        let mut spends = std::collections::HashMap::new();
        for tx in ledger.txs() {
            for (op, _) in &tx.inputs {
                *spends.entry(*op).or_insert(0u32) += 1;
            }
        }
        for (op, n) in spends {
            prop_assert_eq!(n, 1, "outpoint {:?} spent {} times", op, n);
        }
    }

    #[test]
    fn btc_explicit_double_spend_always_rejected(value in 1_000u64..1_000_000) {
        let mut ledger = BtcLedger::new();
        let t = SimTime(1_700_000_000);
        ledger.coinbase(addr(0), Amount(value), t).unwrap();
        let op = OutPoint { tx_index: 0, vout: 0 };
        let out = TxOut { address: addr(1), value: Amount(value / 2) };
        ledger.submit(&[op], &[out], t).unwrap();
        prop_assert!(ledger.submit(&[op], &[out], t).is_err());
    }

    #[test]
    fn eth_value_is_conserved(
        mints in proptest::collection::vec((0u8..6, 1u64..1_000_000), 1..20),
        transfers in proptest::collection::vec((0u8..6, 0u8..6, 1u64..500_000), 0..40),
    ) {
        let mut ledger = EthLedger::new();
        let t = SimTime(1_700_000_000);
        let mut minted: u64 = 0;
        for (to, value) in mints {
            ledger.mint(EthAddress([to; 20]), Amount(value), t).unwrap();
            minted += value;
        }
        for (from, to, value) in transfers {
            let _ = ledger.transfer(EthAddress([from; 20]), EthAddress([to; 20]), Amount(value), t);
        }
        let total: u64 = (0..6).map(|i| ledger.balance(EthAddress([i; 20])).0).sum();
        prop_assert_eq!(total, minted);
    }

    #[test]
    fn xrp_conservation_minus_burned_fees(
        funds in proptest::collection::vec((0u8..6, 1_000u64..1_000_000), 1..20),
        sends in proptest::collection::vec((0u8..6, 0u8..6, 1u64..200_000), 0..40),
    ) {
        let mut ledger = XrpLedger::new();
        let t = SimTime(1_700_000_000);
        let mut funded: u64 = 0;
        for (to, value) in funds {
            ledger.fund(XrpAddress([to; 20]), Amount(value), t).unwrap();
            funded += value;
        }
        let mut ok_sends = 0u64;
        for (from, to, value) in sends {
            if from != to
                && ledger
                    .send(XrpAddress([from; 20]), XrpAddress([to; 20]), Amount(value), None, t)
                    .is_ok()
            {
                ok_sends += 1;
            }
        }
        let total: u64 = (0..6).map(|i| ledger.balance(XrpAddress([i; 20])).0).sum();
        prop_assert_eq!(total + ok_sends * gt_chain::xrp::PAYMENT_FEE_DROPS, funded);
    }

    #[test]
    fn incoming_outgoing_are_consistent_views(
        transfers in proptest::collection::vec((0u8..5, 0u8..5, 1u64..100_000), 1..30),
    ) {
        let mut ledger = EthLedger::new();
        let t = SimTime(1_700_000_000);
        for i in 0..5 {
            ledger.mint(EthAddress([i; 20]), Amount(10_000_000), t).unwrap();
        }
        for (from, to, value) in &transfers {
            let _ = ledger.transfer(
                EthAddress([*from; 20]),
                EthAddress([*to; 20]),
                Amount(*value),
                t,
            );
        }
        // Every incoming transfer of B from A appears as an outgoing
        // transfer of A to B.
        for b in 0..5u8 {
            for transfer in ledger.incoming(EthAddress([b; 20])) {
                let sender = transfer.senders[0];
                let gt_addr::Address::Eth(sender_eth) = sender else { panic!() };
                let matching = ledger
                    .outgoing(sender_eth)
                    .into_iter()
                    .any(|o| o.tx == transfer.tx);
                prop_assert!(matching, "missing outgoing mirror for {:?}", transfer.tx);
            }
        }
    }
}
