//! An account-model Ethereum ledger (value transfers only).
//!
//! Giveaway-scam analysis needs transfers, balances and timestamps; gas
//! accounting is reduced to a flat per-transfer fee and contract calls are
//! modelled as transfers to an address tagged as a contract by
//! `gt-cluster`'s tagging service.

use crate::types::{Amount, ChainError, Transfer, TxRef};
use gt_addr::{Address, Coin, EthAddress};
use gt_sim::SimTime;
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A confirmed Ethereum value transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct EthTx {
    pub index: u64,
    pub time: SimTime,
    pub from: EthAddress,
    pub to: EthAddress,
    /// Value moved, in gwei.
    pub value: Amount,
    pub nonce: u64,
}

/// The Ethereum ledger simulator.
#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct EthLedger {
    txs: Vec<EthTx>,
    balances: HashMap<EthAddress, Amount>,
    nonces: HashMap<EthAddress, u64>,
    address_index: HashMap<EthAddress, Vec<u64>>,
    tip_time: SimTime,
}

impl EthLedger {
    pub fn new() -> Self {
        EthLedger {
            tip_time: SimTime::EPOCH,
            ..Default::default()
        }
    }

    pub fn tx_count(&self) -> u64 {
        self.txs.len() as u64
    }

    pub fn tx(&self, index: u64) -> Option<&EthTx> {
        self.txs.get(index as usize)
    }

    pub fn txs(&self) -> &[EthTx] {
        &self.txs
    }

    pub fn balance(&self, address: EthAddress) -> Amount {
        self.balances.get(&address).copied().unwrap_or(Amount::ZERO)
    }

    pub fn nonce(&self, address: EthAddress) -> u64 {
        self.nonces.get(&address).copied().unwrap_or(0)
    }

    /// Credit an account out of thin air (genesis allocation / bridge-in).
    pub fn mint(
        &mut self,
        address: EthAddress,
        value: Amount,
        time: SimTime,
    ) -> Result<(), ChainError> {
        if value == Amount::ZERO {
            return Err(ChainError::ZeroValue);
        }
        if time < self.tip_time {
            return Err(ChainError::TimeWentBackwards);
        }
        self.tip_time = time;
        let balance = self.balances.entry(address).or_insert(Amount::ZERO);
        *balance = balance
            .checked_add(value)
            .expect("simulated supply stays far below u64::MAX");
        Ok(())
    }

    /// Transfer `value` gwei from `from` to `to`.
    pub fn transfer(
        &mut self,
        from: EthAddress,
        to: EthAddress,
        value: Amount,
        time: SimTime,
    ) -> Result<u64, ChainError> {
        if value == Amount::ZERO {
            return Err(ChainError::ZeroValue);
        }
        if time < self.tip_time {
            return Err(ChainError::TimeWentBackwards);
        }
        let balance = self.balance(from);
        if balance < value {
            return Err(ChainError::InsufficientBalance {
                balance,
                needed: value,
            });
        }
        self.tip_time = time;
        let nonce = self.nonces.entry(from).or_insert(0);
        let tx_nonce = *nonce;
        *nonce += 1;
        self.balances.insert(from, balance.saturating_sub(value));
        let to_balance = self.balances.entry(to).or_insert(Amount::ZERO);
        *to_balance = to_balance
            .checked_add(value)
            .expect("simulated supply stays far below u64::MAX");

        let index = self.txs.len() as u64;
        self.txs.push(EthTx {
            index,
            time,
            from,
            to,
            value,
            nonce: tx_nonce,
        });
        self.address_index.entry(from).or_default().push(index);
        if to != from {
            self.address_index.entry(to).or_default().push(index);
        }
        Ok(index)
    }

    pub fn address_txs(&self, address: EthAddress) -> &[u64] {
        self.address_index
            .get(&address)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Incoming transfers to `address`.
    pub fn incoming(&self, address: EthAddress) -> Vec<Transfer> {
        self.address_txs(address)
            .iter()
            .map(|&i| &self.txs[i as usize])
            .filter(|tx| tx.to == address && tx.from != address)
            .map(|tx| self.to_transfer(tx))
            .collect()
    }

    /// Outgoing transfers from `address`.
    pub fn outgoing(&self, address: EthAddress) -> Vec<Transfer> {
        self.address_txs(address)
            .iter()
            .map(|&i| &self.txs[i as usize])
            .filter(|tx| tx.from == address && tx.to != address)
            .map(|tx| self.to_transfer(tx))
            .collect()
    }

    fn to_transfer(&self, tx: &EthTx) -> Transfer {
        Transfer {
            tx: TxRef {
                coin: Coin::Eth,
                index: tx.index,
            },
            senders: vec![Address::Eth(tx.from)],
            recipient: Address::Eth(tx.to),
            amount: tx.value,
            time: tx.time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(byte: u8) -> EthAddress {
        EthAddress([byte; 20])
    }

    fn t(s: i64) -> SimTime {
        SimTime(1_700_000_000 + s)
    }

    #[test]
    fn mint_and_transfer() {
        let mut ledger = EthLedger::new();
        ledger.mint(a(1), Amount(1_000_000), t(0)).unwrap();
        let idx = ledger.transfer(a(1), a(2), Amount(300_000), t(1)).unwrap();
        assert_eq!(ledger.balance(a(1)), Amount(700_000));
        assert_eq!(ledger.balance(a(2)), Amount(300_000));
        assert_eq!(ledger.tx(idx).unwrap().nonce, 0);
    }

    #[test]
    fn nonce_increments_per_sender() {
        let mut ledger = EthLedger::new();
        ledger.mint(a(1), Amount(1_000), t(0)).unwrap();
        ledger.transfer(a(1), a(2), Amount(100), t(1)).unwrap();
        ledger.transfer(a(1), a(3), Amount(100), t(2)).unwrap();
        assert_eq!(ledger.nonce(a(1)), 2);
        assert_eq!(ledger.nonce(a(2)), 0);
        assert_eq!(ledger.tx(1).unwrap().nonce, 1);
    }

    #[test]
    fn insufficient_balance_rejected() {
        let mut ledger = EthLedger::new();
        ledger.mint(a(1), Amount(100), t(0)).unwrap();
        assert!(matches!(
            ledger.transfer(a(1), a(2), Amount(101), t(1)),
            Err(ChainError::InsufficientBalance { .. })
        ));
        // Unknown sender has zero balance.
        assert!(matches!(
            ledger.transfer(a(9), a(2), Amount(1), t(1)),
            Err(ChainError::InsufficientBalance { .. })
        ));
    }

    #[test]
    fn zero_value_rejected() {
        let mut ledger = EthLedger::new();
        assert_eq!(
            ledger.mint(a(1), Amount::ZERO, t(0)),
            Err(ChainError::ZeroValue)
        );
        ledger.mint(a(1), Amount(10), t(0)).unwrap();
        assert_eq!(
            ledger.transfer(a(1), a(2), Amount::ZERO, t(1)),
            Err(ChainError::ZeroValue)
        );
    }

    #[test]
    fn time_monotonicity_enforced() {
        let mut ledger = EthLedger::new();
        ledger.mint(a(1), Amount(10), t(10)).unwrap();
        assert_eq!(
            ledger.transfer(a(1), a(2), Amount(1), t(5)),
            Err(ChainError::TimeWentBackwards)
        );
    }

    #[test]
    fn incoming_outgoing_views() {
        let mut ledger = EthLedger::new();
        ledger.mint(a(1), Amount(1_000), t(0)).unwrap();
        ledger.transfer(a(1), a(2), Amount(400), t(1)).unwrap();
        ledger.transfer(a(2), a(3), Amount(100), t(2)).unwrap();

        let inc = ledger.incoming(a(2));
        assert_eq!(inc.len(), 1);
        assert_eq!(inc[0].senders, vec![Address::Eth(a(1))]);
        assert_eq!(inc[0].amount, Amount(400));

        let out = ledger.outgoing(a(2));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].recipient, Address::Eth(a(3)));
    }

    #[test]
    fn self_transfer_not_reported_as_payment() {
        let mut ledger = EthLedger::new();
        ledger.mint(a(1), Amount(100), t(0)).unwrap();
        ledger.transfer(a(1), a(1), Amount(50), t(1)).unwrap();
        assert!(ledger.incoming(a(1)).is_empty());
        assert!(ledger.outgoing(a(1)).is_empty());
        assert_eq!(ledger.balance(a(1)), Amount(100));
    }
}
