//! Shared chain types.

use gt_addr::{Address, Coin};
use gt_sim::SimTime;
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An amount in a coin's base units (satoshi / gwei / drops).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub struct Amount(pub u64);

impl Amount {
    pub const ZERO: Amount = Amount(0);

    pub fn checked_add(self, other: Amount) -> Option<Amount> {
        self.0.checked_add(other.0).map(Amount)
    }

    pub fn checked_sub(self, other: Amount) -> Option<Amount> {
        self.0.checked_sub(other.0).map(Amount)
    }

    pub fn saturating_sub(self, other: Amount) -> Amount {
        Amount(self.0.saturating_sub(other.0))
    }

    /// Whole-coin value given the coin's base-unit scale.
    pub fn in_coins(self, coin: Coin) -> f64 {
        self.0 as f64 / coin.base_units_per_coin() as f64
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::iter::Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        Amount(iter.map(|a| a.0).sum())
    }
}

/// A chain-qualified transaction reference.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub struct TxRef {
    pub coin: Coin,
    /// Index into that chain's transaction log.
    pub index: u64,
}

impl fmt::Display for TxRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.coin, self.index)
    }
}

/// A money movement as the analysis layer sees it: one recipient, one or
/// more senders (BTC multi-input transactions have several), an amount
/// and a timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct Transfer {
    pub tx: TxRef,
    pub senders: Vec<Address>,
    pub recipient: Address,
    pub amount: Amount,
    pub time: SimTime,
}

/// Validation failures raised by the ledgers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Referenced output does not exist or was already spent.
    UnknownOrSpentInput,
    /// Transaction outputs exceed inputs.
    InsufficientInputValue { in_value: Amount, out_value: Amount },
    /// Account balance is lower than the transfer amount.
    InsufficientBalance { balance: Amount, needed: Amount },
    /// A transaction must move a positive amount.
    ZeroValue,
    /// Transactions must be submitted in non-decreasing time order.
    TimeWentBackwards,
    /// A transaction needs at least one input and one output.
    EmptyTransaction,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnknownOrSpentInput => write!(f, "input is unknown or already spent"),
            ChainError::InsufficientInputValue {
                in_value,
                out_value,
            } => write!(f, "outputs ({out_value}) exceed inputs ({in_value})"),
            ChainError::InsufficientBalance { balance, needed } => {
                write!(f, "balance {balance} below required {needed}")
            }
            ChainError::ZeroValue => write!(f, "zero-value transaction"),
            ChainError::TimeWentBackwards => write!(f, "transaction timestamp precedes chain tip"),
            ChainError::EmptyTransaction => write!(f, "transaction has no inputs or outputs"),
        }
    }
}

impl std::error::Error for ChainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amount_arithmetic() {
        assert_eq!(Amount(5).checked_add(Amount(7)), Some(Amount(12)));
        assert_eq!(Amount(u64::MAX).checked_add(Amount(1)), None);
        assert_eq!(Amount(5).checked_sub(Amount(7)), None);
        assert_eq!(Amount(7).checked_sub(Amount(5)), Some(Amount(2)));
        assert_eq!(Amount(3).saturating_sub(Amount(9)), Amount::ZERO);
        let total: Amount = [Amount(1), Amount(2), Amount(3)].into_iter().sum();
        assert_eq!(total, Amount(6));
    }

    #[test]
    fn amount_in_coins() {
        assert!((Amount(150_000_000).in_coins(Coin::Btc) - 1.5).abs() < 1e-12);
        assert!((Amount(2_000_000).in_coins(Coin::Xrp) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn txref_display() {
        let r = TxRef {
            coin: Coin::Eth,
            index: 42,
        };
        assert_eq!(r.to_string(), "ETH:42");
    }

    #[test]
    fn errors_display() {
        let e = ChainError::InsufficientBalance {
            balance: Amount(1),
            needed: Amount(2),
        };
        assert!(e.to_string().contains("balance 1"));
    }
}
