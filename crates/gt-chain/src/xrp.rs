//! An XRP Ledger simulator (account model, drops, destination tags).
//!
//! XRP matters to the paper because Ripple-themed giveaways dominated the
//! Twitter dataset (91% of scam tweets referenced XRP). Structurally the
//! ledger is account-based like Ethereum, with two XRP-specific details
//! kept because exchanges rely on them: the 10-drop base reserve burn per
//! payment (flat fee) and optional destination tags (how exchanges
//! multiplex customers onto one address).

use crate::types::{Amount, ChainError, Transfer, TxRef};
use gt_addr::{Address, Coin, XrpAddress};
use gt_sim::SimTime;
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Flat network fee per payment, in drops.
pub const PAYMENT_FEE_DROPS: u64 = 10;

/// A confirmed XRP payment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct XrpPayment {
    pub index: u64,
    pub time: SimTime,
    pub from: XrpAddress,
    pub to: XrpAddress,
    /// Drops delivered to the destination.
    pub value: Amount,
    /// Exchange-style destination tag, if any.
    pub destination_tag: Option<u32>,
}

/// The XRP ledger simulator.
#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct XrpLedger {
    payments: Vec<XrpPayment>,
    balances: HashMap<XrpAddress, Amount>,
    address_index: HashMap<XrpAddress, Vec<u64>>,
    tip_time: SimTime,
}

impl XrpLedger {
    pub fn new() -> Self {
        XrpLedger {
            tip_time: SimTime::EPOCH,
            ..Default::default()
        }
    }

    pub fn payment_count(&self) -> u64 {
        self.payments.len() as u64
    }

    pub fn payment(&self, index: u64) -> Option<&XrpPayment> {
        self.payments.get(index as usize)
    }

    pub fn payments(&self) -> &[XrpPayment] {
        &self.payments
    }

    pub fn balance(&self, address: XrpAddress) -> Amount {
        self.balances.get(&address).copied().unwrap_or(Amount::ZERO)
    }

    /// Credit an account (genesis / bridge-in).
    pub fn fund(
        &mut self,
        address: XrpAddress,
        value: Amount,
        time: SimTime,
    ) -> Result<(), ChainError> {
        if value == Amount::ZERO {
            return Err(ChainError::ZeroValue);
        }
        if time < self.tip_time {
            return Err(ChainError::TimeWentBackwards);
        }
        self.tip_time = time;
        let balance = self.balances.entry(address).or_insert(Amount::ZERO);
        *balance = balance
            .checked_add(value)
            .expect("simulated supply stays far below u64::MAX");
        Ok(())
    }

    /// Send `value` drops from `from` to `to`. The sender additionally
    /// burns the flat network fee.
    pub fn send(
        &mut self,
        from: XrpAddress,
        to: XrpAddress,
        value: Amount,
        destination_tag: Option<u32>,
        time: SimTime,
    ) -> Result<u64, ChainError> {
        if value == Amount::ZERO {
            return Err(ChainError::ZeroValue);
        }
        if time < self.tip_time {
            return Err(ChainError::TimeWentBackwards);
        }
        let needed = value
            .checked_add(Amount(PAYMENT_FEE_DROPS))
            .ok_or(ChainError::ZeroValue)?;
        let balance = self.balance(from);
        if balance < needed {
            return Err(ChainError::InsufficientBalance { balance, needed });
        }
        self.tip_time = time;
        self.balances.insert(from, balance.saturating_sub(needed));
        let to_balance = self.balances.entry(to).or_insert(Amount::ZERO);
        *to_balance = to_balance
            .checked_add(value)
            .expect("simulated supply stays far below u64::MAX");

        let index = self.payments.len() as u64;
        self.payments.push(XrpPayment {
            index,
            time,
            from,
            to,
            value,
            destination_tag,
        });
        self.address_index.entry(from).or_default().push(index);
        if to != from {
            self.address_index.entry(to).or_default().push(index);
        }
        Ok(index)
    }

    pub fn address_payments(&self, address: XrpAddress) -> &[u64] {
        self.address_index
            .get(&address)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    pub fn incoming(&self, address: XrpAddress) -> Vec<Transfer> {
        self.address_payments(address)
            .iter()
            .map(|&i| &self.payments[i as usize])
            .filter(|p| p.to == address && p.from != address)
            .map(|p| self.to_transfer(p))
            .collect()
    }

    pub fn outgoing(&self, address: XrpAddress) -> Vec<Transfer> {
        self.address_payments(address)
            .iter()
            .map(|&i| &self.payments[i as usize])
            .filter(|p| p.from == address && p.to != address)
            .map(|p| self.to_transfer(p))
            .collect()
    }

    fn to_transfer(&self, p: &XrpPayment) -> Transfer {
        Transfer {
            tx: TxRef {
                coin: Coin::Xrp,
                index: p.index,
            },
            senders: vec![Address::Xrp(p.from)],
            recipient: Address::Xrp(p.to),
            amount: p.value,
            time: p.time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(byte: u8) -> XrpAddress {
        XrpAddress([byte; 20])
    }

    fn t(s: i64) -> SimTime {
        SimTime(1_700_000_000 + s)
    }

    #[test]
    fn send_burns_flat_fee() {
        let mut ledger = XrpLedger::new();
        ledger.fund(a(1), Amount(1_000_000), t(0)).unwrap();
        ledger
            .send(a(1), a(2), Amount(400_000), None, t(1))
            .unwrap();
        assert_eq!(ledger.balance(a(2)), Amount(400_000));
        assert_eq!(
            ledger.balance(a(1)),
            Amount(1_000_000 - 400_000 - PAYMENT_FEE_DROPS)
        );
    }

    #[test]
    fn fee_counts_toward_required_balance() {
        let mut ledger = XrpLedger::new();
        ledger.fund(a(1), Amount(100), t(0)).unwrap();
        // 100 drops cannot cover 95 + 10 fee.
        assert!(matches!(
            ledger.send(a(1), a(2), Amount(95), None, t(1)),
            Err(ChainError::InsufficientBalance { .. })
        ));
        // 90 + 10 exactly works.
        ledger.send(a(1), a(2), Amount(90), None, t(1)).unwrap();
        assert_eq!(ledger.balance(a(1)), Amount::ZERO);
    }

    #[test]
    fn destination_tags_recorded() {
        let mut ledger = XrpLedger::new();
        ledger.fund(a(1), Amount(1_000), t(0)).unwrap();
        let idx = ledger
            .send(a(1), a(2), Amount(500), Some(777_001), t(1))
            .unwrap();
        assert_eq!(ledger.payment(idx).unwrap().destination_tag, Some(777_001));
    }

    #[test]
    fn incoming_and_outgoing() {
        let mut ledger = XrpLedger::new();
        ledger.fund(a(1), Amount(10_000), t(0)).unwrap();
        ledger.send(a(1), a(2), Amount(1_000), None, t(1)).unwrap();
        ledger.send(a(1), a(2), Amount(2_000), None, t(2)).unwrap();
        let inc = ledger.incoming(a(2));
        assert_eq!(inc.len(), 2);
        assert_eq!(inc[1].amount, Amount(2_000));
        assert_eq!(ledger.outgoing(a(1)).len(), 2);
        assert!(ledger.outgoing(a(2)).is_empty());
    }

    #[test]
    fn rejects_zero_and_backwards_time() {
        let mut ledger = XrpLedger::new();
        ledger.fund(a(1), Amount(1_000), t(10)).unwrap();
        assert_eq!(
            ledger.send(a(1), a(2), Amount::ZERO, None, t(11)),
            Err(ChainError::ZeroValue)
        );
        assert_eq!(
            ledger.send(a(1), a(2), Amount(1), None, t(5)),
            Err(ChainError::TimeWentBackwards)
        );
    }
}
