//! Unified cross-chain query surface.
//!
//! The analysis pipeline asks one question of "the blockchain": what are
//! the incoming/outgoing transfers of this address? `ChainView` owns the
//! three ledgers and dispatches per address type.

use crate::btc::BtcLedger;
use crate::eth::EthLedger;
use crate::types::Transfer;
use crate::xrp::XrpLedger;
use gt_addr::Address;
use gt_store::{StoreDecode, StoreEncode};

/// The three ledgers behind one query interface.
#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct ChainView {
    pub btc: BtcLedger,
    pub eth: EthLedger,
    pub xrp: XrpLedger,
}

impl ChainView {
    pub fn new() -> Self {
        ChainView {
            btc: BtcLedger::new(),
            eth: EthLedger::new(),
            xrp: XrpLedger::new(),
        }
    }

    /// All transfers into `address`, in confirmation order.
    pub fn incoming(&self, address: Address) -> Vec<Transfer> {
        match address {
            Address::Btc(a) => self.btc.incoming(a),
            Address::Eth(a) => self.eth.incoming(a),
            Address::Xrp(a) => self.xrp.incoming(a),
        }
    }

    /// All transfers out of `address`, in confirmation order.
    pub fn outgoing(&self, address: Address) -> Vec<Transfer> {
        match address {
            Address::Btc(a) => self.btc.outgoing(a),
            Address::Eth(a) => self.eth.outgoing(a),
            Address::Xrp(a) => self.xrp.outgoing(a),
        }
    }

    /// Total number of transactions across all three chains.
    pub fn total_tx_count(&self) -> u64 {
        self.btc.tx_count() + self.eth.tx_count() + self.xrp.payment_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Amount;
    use gt_addr::{BtcAddress, EthAddress, XrpAddress};
    use gt_sim::SimTime;

    #[test]
    fn dispatches_per_chain() {
        let mut view = ChainView::new();
        let t = SimTime(1_700_000_000);

        let b1 = BtcAddress::P2pkh([1; 20]);
        let b2 = BtcAddress::P2pkh([2; 20]);
        view.btc.coinbase(b1, Amount(100_000), t).unwrap();
        view.btc
            .pay(&[b1], b2, Amount(50_000), b1, Amount(0), t)
            .unwrap();

        let e1 = EthAddress([1; 20]);
        let e2 = EthAddress([2; 20]);
        view.eth.mint(e1, Amount(10), t).unwrap();
        view.eth.transfer(e1, e2, Amount(5), t).unwrap();

        let x1 = XrpAddress([1; 20]);
        let x2 = XrpAddress([2; 20]);
        view.xrp.fund(x1, Amount(1_000), t).unwrap();
        view.xrp.send(x1, x2, Amount(100), None, t).unwrap();

        assert_eq!(view.incoming(Address::Btc(b2)).len(), 1);
        assert_eq!(view.incoming(Address::Eth(e2)).len(), 1);
        assert_eq!(view.incoming(Address::Xrp(x2)).len(), 1);
        assert_eq!(view.outgoing(Address::Eth(e1)).len(), 1);
        assert_eq!(view.total_tx_count(), 2 + 1 + 1);
    }
}
