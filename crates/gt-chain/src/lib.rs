//! Simulated blockchain substrates: Bitcoin (UTXO), Ethereum (account)
//! and XRP (account) ledgers.
//!
//! This is the repository's stand-in for "raw blockchain data". The
//! analysis pipeline only ever consumes, per address: incoming and
//! outgoing transfers with timestamps, sender/recipient addresses, and
//! amounts. The simulators therefore model exactly the structure those
//! queries depend on, *faithfully per chain*:
//!
//! * **BTC** is a real UTXO ledger — transactions spend previous outputs,
//!   multi-input transactions exist (the basis of the multi-input
//!   clustering heuristic), change outputs exist, and CoinJoin-shaped
//!   transactions can be formed (the false-positive hazard the paper's
//!   Chainalysis substitute must avoid);
//! * **ETH** and **XRP** are account ledgers with single senders.
//!
//! A unified [`view::ChainView`] exposes cross-chain transfer queries to
//! the analysis layer.

pub mod btc;
pub mod eth;
pub mod rpc;
pub mod types;
pub mod view;
pub mod xrp;

pub use btc::{BtcLedger, BtcTx, OutPoint, TxOut};
pub use eth::EthLedger;
pub use rpc::{ChainReads, RpcView};
pub use types::{Amount, ChainError, Transfer, TxRef};
pub use view::ChainView;
pub use xrp::XrpLedger;
