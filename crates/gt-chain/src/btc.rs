//! A UTXO-model Bitcoin ledger.
//!
//! Faithful where it matters to the analysis:
//!
//! * transactions spend previous outputs; double-spends are rejected;
//! * multi-input transactions expose the co-spending structure that the
//!   multi-input clustering heuristic consumes;
//! * fees are implicit (inputs − outputs), and change outputs are just
//!   ordinary outputs back to a sender-controlled address;
//! * CoinJoin-shaped transactions (many inputs, many equal-valued
//!   outputs) can be built, which clustering must *not* merge.

use crate::types::{Amount, ChainError, Transfer, TxRef};
use gt_addr::{Address, BtcAddress, Coin};
use gt_sim::SimTime;
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Reference to an output of a previous transaction.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub struct OutPoint {
    pub tx_index: u64,
    pub vout: u32,
}

/// A transaction output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct TxOut {
    pub address: BtcAddress,
    pub value: Amount,
}

/// A confirmed Bitcoin transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct BtcTx {
    pub index: u64,
    pub time: SimTime,
    /// Spent outpoints with the addresses and values they carried.
    pub inputs: Vec<(OutPoint, TxOut)>,
    pub outputs: Vec<TxOut>,
    /// True for money-creating transactions (no inputs).
    pub coinbase: bool,
}

impl BtcTx {
    /// Total input value.
    pub fn input_value(&self) -> Amount {
        self.inputs.iter().map(|(_, o)| o.value).sum()
    }

    /// Total output value.
    pub fn output_value(&self) -> Amount {
        self.outputs.iter().map(|o| o.value).sum()
    }

    /// The implicit miner fee.
    pub fn fee(&self) -> Amount {
        if self.coinbase {
            Amount::ZERO
        } else {
            self.input_value().saturating_sub(self.output_value())
        }
    }

    /// Distinct input addresses (the co-spending set).
    pub fn input_addresses(&self) -> Vec<BtcAddress> {
        let mut addrs: Vec<BtcAddress> = self.inputs.iter().map(|(_, o)| o.address).collect();
        addrs.sort();
        addrs.dedup();
        addrs
    }
}

/// The Bitcoin ledger simulator.
#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct BtcLedger {
    txs: Vec<BtcTx>,
    /// Unspent outputs.
    utxos: HashMap<OutPoint, TxOut>,
    /// address → tx indexes the address appears in (as input or output).
    address_index: HashMap<BtcAddress, Vec<u64>>,
    /// address → unspent outpoints it controls.
    address_utxos: HashMap<BtcAddress, Vec<OutPoint>>,
    tip_time: SimTime,
}

impl BtcLedger {
    pub fn new() -> Self {
        BtcLedger {
            tip_time: SimTime::EPOCH,
            ..Default::default()
        }
    }

    /// Number of confirmed transactions.
    pub fn tx_count(&self) -> u64 {
        self.txs.len() as u64
    }

    /// Look up a confirmed transaction.
    pub fn tx(&self, index: u64) -> Option<&BtcTx> {
        self.txs.get(index as usize)
    }

    /// All confirmed transactions (ordered by confirmation).
    pub fn txs(&self) -> &[BtcTx] {
        &self.txs
    }

    /// Mint `value` to `address` via a coinbase transaction.
    pub fn coinbase(
        &mut self,
        address: BtcAddress,
        value: Amount,
        time: SimTime,
    ) -> Result<u64, ChainError> {
        if value == Amount::ZERO {
            return Err(ChainError::ZeroValue);
        }
        self.check_time(time)?;
        let index = self.txs.len() as u64;
        let tx = BtcTx {
            index,
            time,
            inputs: Vec::new(),
            outputs: vec![TxOut { address, value }],
            coinbase: true,
        };
        self.confirm(tx);
        Ok(index)
    }

    /// Submit a transaction spending `inputs` into `outputs`.
    ///
    /// Inputs must be unspent; input value must cover output value (the
    /// difference is the fee).
    pub fn submit(
        &mut self,
        inputs: &[OutPoint],
        outputs: &[TxOut],
        time: SimTime,
    ) -> Result<u64, ChainError> {
        if inputs.is_empty() || outputs.is_empty() {
            return Err(ChainError::EmptyTransaction);
        }
        if outputs.iter().any(|o| o.value == Amount::ZERO) {
            return Err(ChainError::ZeroValue);
        }
        self.check_time(time)?;

        let mut resolved = Vec::with_capacity(inputs.len());
        {
            // Validate before mutating; duplicate outpoints within the
            // transaction are double-spends too.
            let mut seen = std::collections::HashSet::new();
            for op in inputs {
                if !seen.insert(*op) {
                    return Err(ChainError::UnknownOrSpentInput);
                }
                let txo = self
                    .utxos
                    .get(op)
                    .copied()
                    .ok_or(ChainError::UnknownOrSpentInput)?;
                resolved.push((*op, txo));
            }
        }
        let in_value: Amount = resolved.iter().map(|(_, o)| o.value).sum();
        let out_value: Amount = outputs.iter().map(|o| o.value).sum();
        if out_value > in_value {
            return Err(ChainError::InsufficientInputValue {
                in_value,
                out_value,
            });
        }

        let index = self.txs.len() as u64;
        let tx = BtcTx {
            index,
            time,
            inputs: resolved,
            outputs: outputs.to_vec(),
            coinbase: false,
        };
        self.confirm(tx);
        Ok(index)
    }

    /// Convenience: spend whole UTXOs from `from` to pay `value` to `to`,
    /// returning change to `change`. Picks UTXOs largest-first.
    pub fn pay(
        &mut self,
        from: &[BtcAddress],
        to: BtcAddress,
        value: Amount,
        change: BtcAddress,
        fee: Amount,
        time: SimTime,
    ) -> Result<u64, ChainError> {
        let needed = value.checked_add(fee).ok_or(ChainError::ZeroValue)?;
        // Gather candidate UTXOs across the sender addresses.
        let mut candidates: Vec<(OutPoint, TxOut)> = Vec::new();
        for a in from {
            if let Some(ops) = self.address_utxos.get(a) {
                for op in ops {
                    if let Some(txo) = self.utxos.get(op) {
                        candidates.push((*op, *txo));
                    }
                }
            }
        }
        candidates.sort_by_key(|&(_, txo)| std::cmp::Reverse(txo.value));
        let mut picked = Vec::new();
        let mut total = Amount::ZERO;
        for (op, txo) in candidates {
            if total >= needed {
                break;
            }
            total = total.checked_add(txo.value).ok_or(ChainError::ZeroValue)?;
            picked.push(op);
        }
        if total < needed {
            return Err(ChainError::InsufficientBalance {
                balance: total,
                needed,
            });
        }
        let mut outputs = vec![TxOut { address: to, value }];
        let change_value = total.saturating_sub(needed);
        if change_value > Amount::ZERO {
            outputs.push(TxOut {
                address: change,
                value: change_value,
            });
        }
        self.submit(&picked, &outputs, time)
    }

    /// The unspent outpoints an address currently controls.
    pub fn utxos_of(&self, address: BtcAddress) -> Vec<(OutPoint, TxOut)> {
        self.address_utxos
            .get(&address)
            .map(|ops| {
                ops.iter()
                    .filter_map(|op| self.utxos.get(op).map(|txo| (*op, *txo)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Spendable balance of an address.
    pub fn balance(&self, address: BtcAddress) -> Amount {
        self.address_utxos
            .get(&address)
            .map(|ops| {
                ops.iter()
                    .filter_map(|op| self.utxos.get(op))
                    .map(|o| o.value)
                    .sum()
            })
            .unwrap_or(Amount::ZERO)
    }

    /// Transaction indexes touching an address, in confirmation order.
    pub fn address_txs(&self, address: BtcAddress) -> &[u64] {
        self.address_index
            .get(&address)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Incoming transfers to `address` (one per transaction output batch;
    /// multi-input senders are all reported).
    pub fn incoming(&self, address: BtcAddress) -> Vec<Transfer> {
        let mut out = Vec::new();
        for &idx in self.address_txs(address) {
            let tx = &self.txs[idx as usize];
            if tx.coinbase {
                // Newly minted coins are not a payment from anyone.
                continue;
            }
            let received: Amount = tx
                .outputs
                .iter()
                .filter(|o| o.address == address)
                .map(|o| o.value)
                .sum();
            // Skip pure-change cases: if the address also appears among
            // the inputs it is moving its own money.
            let is_sender = tx.inputs.iter().any(|(_, o)| o.address == address);
            if received > Amount::ZERO && !is_sender {
                out.push(Transfer {
                    tx: TxRef {
                        coin: Coin::Btc,
                        index: idx,
                    },
                    senders: tx.input_addresses().into_iter().map(Address::Btc).collect(),
                    recipient: Address::Btc(address),
                    amount: received,
                    time: tx.time,
                });
            }
        }
        out
    }

    /// Outgoing transfers from `address` (one per distinct recipient per
    /// transaction; change back to any input address is excluded).
    pub fn outgoing(&self, address: BtcAddress) -> Vec<Transfer> {
        let mut out = Vec::new();
        for &idx in self.address_txs(address) {
            let tx = &self.txs[idx as usize];
            if !tx.inputs.iter().any(|(_, o)| o.address == address) {
                continue;
            }
            let input_set = tx.input_addresses();
            for o in &tx.outputs {
                if input_set.contains(&o.address) {
                    continue; // change
                }
                out.push(Transfer {
                    tx: TxRef {
                        coin: Coin::Btc,
                        index: idx,
                    },
                    senders: input_set.iter().copied().map(Address::Btc).collect(),
                    recipient: Address::Btc(o.address),
                    amount: o.value,
                    time: tx.time,
                });
            }
        }
        out
    }

    fn check_time(&self, time: SimTime) -> Result<(), ChainError> {
        if time < self.tip_time {
            return Err(ChainError::TimeWentBackwards);
        }
        Ok(())
    }

    fn confirm(&mut self, tx: BtcTx) {
        let index = tx.index;
        self.tip_time = tx.time;
        // Spend the inputs.
        for (op, txo) in &tx.inputs {
            self.utxos.remove(op);
            if let Some(list) = self.address_utxos.get_mut(&txo.address) {
                list.retain(|x| x != op);
            }
        }
        // Create the outputs.
        for (vout, o) in tx.outputs.iter().enumerate() {
            let op = OutPoint {
                tx_index: index,
                vout: vout as u32,
            };
            self.utxos.insert(op, *o);
            self.address_utxos.entry(o.address).or_default().push(op);
        }
        // Index all touched addresses.
        let mut touched: Vec<BtcAddress> = tx
            .inputs
            .iter()
            .map(|(_, o)| o.address)
            .chain(tx.outputs.iter().map(|o| o.address))
            .collect();
        touched.sort();
        touched.dedup();
        for a in touched {
            self.address_index.entry(a).or_default().push(index);
        }
        self.txs.push(tx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_addr::{AddressGenerator, Coin};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn addrs(n: usize) -> Vec<BtcAddress> {
        let mut gen = AddressGenerator::new(StdRng::seed_from_u64(1));
        (0..n)
            .map(|_| match gen.generate(Coin::Btc) {
                Address::Btc(a) => a,
                _ => unreachable!(),
            })
            .collect()
    }

    fn t(s: i64) -> SimTime {
        SimTime(1_700_000_000 + s)
    }

    #[test]
    fn coinbase_creates_spendable_money() {
        let mut ledger = BtcLedger::new();
        let a = addrs(1)[0];
        ledger.coinbase(a, Amount(50_0000_0000), t(0)).unwrap();
        assert_eq!(ledger.balance(a), Amount(50_0000_0000));
        assert_eq!(ledger.tx_count(), 1);
        assert!(ledger.tx(0).unwrap().coinbase);
    }

    #[test]
    fn pay_moves_value_with_change_and_fee() {
        let mut ledger = BtcLedger::new();
        let a = addrs(3);
        ledger.coinbase(a[0], Amount(100_000), t(0)).unwrap();
        let tx = ledger
            .pay(&[a[0]], a[1], Amount(60_000), a[2], Amount(1_000), t(10))
            .unwrap();
        assert_eq!(ledger.balance(a[1]), Amount(60_000));
        assert_eq!(ledger.balance(a[2]), Amount(39_000)); // change
        assert_eq!(ledger.balance(a[0]), Amount::ZERO);
        assert_eq!(ledger.tx(tx).unwrap().fee(), Amount(1_000));
    }

    #[test]
    fn double_spend_rejected() {
        let mut ledger = BtcLedger::new();
        let a = addrs(2);
        ledger.coinbase(a[0], Amount(10_000), t(0)).unwrap();
        let op = OutPoint {
            tx_index: 0,
            vout: 0,
        };
        let out = TxOut {
            address: a[1],
            value: Amount(9_000),
        };
        ledger.submit(&[op], &[out], t(1)).unwrap();
        assert_eq!(
            ledger.submit(&[op], &[out], t(2)),
            Err(ChainError::UnknownOrSpentInput)
        );
    }

    #[test]
    fn duplicate_input_in_same_tx_rejected() {
        let mut ledger = BtcLedger::new();
        let a = addrs(2);
        ledger.coinbase(a[0], Amount(10_000), t(0)).unwrap();
        let op = OutPoint {
            tx_index: 0,
            vout: 0,
        };
        let out = TxOut {
            address: a[1],
            value: Amount(15_000),
        };
        assert_eq!(
            ledger.submit(&[op, op], &[out], t(1)),
            Err(ChainError::UnknownOrSpentInput)
        );
    }

    #[test]
    fn outputs_cannot_exceed_inputs() {
        let mut ledger = BtcLedger::new();
        let a = addrs(2);
        ledger.coinbase(a[0], Amount(10_000), t(0)).unwrap();
        let op = OutPoint {
            tx_index: 0,
            vout: 0,
        };
        let result = ledger.submit(
            &[op],
            &[TxOut {
                address: a[1],
                value: Amount(10_001),
            }],
            t(1),
        );
        assert!(matches!(
            result,
            Err(ChainError::InsufficientInputValue { .. })
        ));
    }

    #[test]
    fn pay_with_insufficient_funds_fails() {
        let mut ledger = BtcLedger::new();
        let a = addrs(3);
        ledger.coinbase(a[0], Amount(5_000), t(0)).unwrap();
        let result = ledger.pay(&[a[0]], a[1], Amount(6_000), a[2], Amount(0), t(1));
        assert!(matches!(
            result,
            Err(ChainError::InsufficientBalance { .. })
        ));
    }

    #[test]
    fn multi_input_payment_combines_utxos() {
        let mut ledger = BtcLedger::new();
        let a = addrs(4);
        ledger.coinbase(a[0], Amount(4_000), t(0)).unwrap();
        ledger.coinbase(a[1], Amount(4_000), t(1)).unwrap();
        let tx = ledger
            .pay(&[a[0], a[1]], a[2], Amount(7_000), a[3], Amount(500), t(2))
            .unwrap();
        let confirmed = ledger.tx(tx).unwrap();
        assert_eq!(confirmed.inputs.len(), 2);
        let senders = confirmed.input_addresses();
        assert!(senders.contains(&a[0]) && senders.contains(&a[1]));
        assert_eq!(ledger.balance(a[3]), Amount(500)); // change
    }

    #[test]
    fn incoming_reports_victim_style_payment() {
        let mut ledger = BtcLedger::new();
        let a = addrs(3);
        ledger.coinbase(a[0], Amount(100_000), t(0)).unwrap();
        ledger
            .pay(&[a[0]], a[1], Amount(30_000), a[2], Amount(100), t(5))
            .unwrap();
        let transfers = ledger.incoming(a[1]);
        assert_eq!(transfers.len(), 1);
        assert_eq!(transfers[0].amount, Amount(30_000));
        assert_eq!(transfers[0].senders, vec![Address::Btc(a[0])]);
        assert_eq!(transfers[0].time, t(5));
        assert_eq!(transfers[0].tx.coin, Coin::Btc);
    }

    #[test]
    fn incoming_excludes_self_transfers() {
        let mut ledger = BtcLedger::new();
        let a = addrs(2);
        ledger.coinbase(a[0], Amount(10_000), t(0)).unwrap();
        // a0 pays itself (consolidation): should not appear as incoming.
        ledger
            .pay(&[a[0]], a[0], Amount(9_000), a[1], Amount(100), t(1))
            .unwrap();
        assert!(ledger.incoming(a[0]).len() <= 1); // only the coinbase... which has no sender
                                                   // The consolidation tx must not be reported as a payment to a0.
        let non_coinbase: Vec<_> = ledger
            .incoming(a[0])
            .into_iter()
            .filter(|tr| !tr.senders.is_empty())
            .collect();
        assert!(non_coinbase.is_empty());
    }

    #[test]
    fn outgoing_excludes_change() {
        let mut ledger = BtcLedger::new();
        let a = addrs(3);
        ledger.coinbase(a[0], Amount(100_000), t(0)).unwrap();
        // Change goes back to a0 itself here.
        ledger
            .pay(&[a[0]], a[1], Amount(10_000), a[0], Amount(100), t(1))
            .unwrap();
        let outs = ledger.outgoing(a[0]);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].recipient, Address::Btc(a[1]));
        assert_eq!(outs[0].amount, Amount(10_000));
    }

    #[test]
    fn time_cannot_go_backwards() {
        let mut ledger = BtcLedger::new();
        let a = addrs(1)[0];
        ledger.coinbase(a, Amount(1_000), t(100)).unwrap();
        assert_eq!(
            ledger.coinbase(a, Amount(1_000), t(50)),
            Err(ChainError::TimeWentBackwards)
        );
    }

    #[test]
    fn coinjoin_shape_is_constructible() {
        let mut ledger = BtcLedger::new();
        let a = addrs(8);
        // Four participants each fund an input ...
        for (i, &addr) in a.iter().enumerate().take(4) {
            ledger.coinbase(addr, Amount(10_000), t(i as i64)).unwrap();
        }
        let inputs: Vec<OutPoint> = (0..4)
            .map(|i| OutPoint {
                tx_index: i,
                vout: 0,
            })
            .collect();
        // ... and receive equal-valued outputs at fresh addresses.
        let outputs: Vec<TxOut> = (4..8)
            .map(|i| TxOut {
                address: a[i],
                value: Amount(9_900),
            })
            .collect();
        let idx = ledger.submit(&inputs, &outputs, t(10)).unwrap();
        let tx = ledger.tx(idx).unwrap();
        assert_eq!(tx.input_addresses().len(), 4);
        let values: std::collections::HashSet<u64> = tx.outputs.iter().map(|o| o.value.0).collect();
        assert_eq!(values.len(), 1, "CoinJoin outputs are equal-valued");
    }

    #[test]
    fn address_txs_in_confirmation_order() {
        let mut ledger = BtcLedger::new();
        let a = addrs(2);
        ledger.coinbase(a[0], Amount(10_000), t(0)).unwrap();
        ledger.coinbase(a[0], Amount(20_000), t(1)).unwrap();
        ledger
            .pay(&[a[0]], a[1], Amount(5_000), a[0], Amount(0), t(2))
            .unwrap();
        assert_eq!(ledger.address_txs(a[0]), &[0, 1, 2]);
    }
}
