//! Fault-aware RPC facade over [`ChainView`].
//!
//! The real pipeline read address histories through node RPCs that
//! could time out, rate-limit or die. [`ChainReads`] abstracts "what
//! the analysis layer asks of a blockchain" so the same analysis code
//! runs against the raw [`ChainView`] (clean, zero-overhead) or an
//! [`RpcView`] that consults a [`FaultPlan`] before every read.
//!
//! Reads in the analysis layer are not tied to a monitoring tick, so
//! `RpcView` models the batch backfill the paper ran after collection:
//! a virtual cursor starts at the analysis epoch and advances a fixed
//! spacing per read. The cursor exists only to index into the fault
//! schedule deterministically; served data is always the full history
//! (snapshot semantics — a denied read returns an empty history, which
//! can only shrink downstream results).

use crate::types::Transfer;
use crate::view::ChainView;
use gt_addr::Address;
use gt_obs::StageSink;
use gt_sim::faults::{CheckedCall, DegradationStats, FaultPlan, Gated, RetryPolicy, Substrate};
use gt_sim::{SimDuration, SimTime};
use std::cell::{Cell, RefCell};

/// The blockchain query surface the analysis layer depends on.
pub trait ChainReads {
    /// All transfers into `address`, in confirmation order.
    fn incoming(&self, address: Address) -> Vec<Transfer>;
    /// All transfers out of `address`, in confirmation order.
    fn outgoing(&self, address: Address) -> Vec<Transfer>;
}

impl ChainReads for ChainView {
    fn incoming(&self, address: Address) -> Vec<Transfer> {
        ChainView::incoming(self, address)
    }

    fn outgoing(&self, address: Address) -> Vec<Transfer> {
        ChainView::outgoing(self, address)
    }
}

/// Spacing between consecutive RPC reads on the virtual cursor.
const READ_SPACING: SimDuration = SimDuration::seconds(2);

/// A [`ChainView`] behind a fault-gated RPC boundary.
///
/// Interior mutability keeps the `ChainReads` methods `&self` (the
/// analysis layer reads through shared references); an `RpcView` must
/// therefore stay within one sequential analysis stage — cloning the
/// plan into one `RpcView` per stage is the intended use.
pub struct RpcView<'a> {
    chains: &'a ChainView,
    gate: RefCell<Gated<'a>>,
    cursor: Cell<SimTime>,
}

impl<'a> RpcView<'a> {
    /// Gate `chains` behind `plan`, with the read cursor starting at
    /// `epoch` (typically the end of the collection window: the paper's
    /// backfill ran after monitoring finished). `label` separates the
    /// jitter streams of different analysis stages.
    pub fn new(
        chains: &'a ChainView,
        plan: Option<&'a FaultPlan>,
        label: &str,
        retry: RetryPolicy,
        epoch: SimTime,
    ) -> Self {
        RpcView::observed(chains, plan, label, retry, epoch, StageSink::noop())
    }

    /// [`RpcView::new`] reporting per-read telemetry (call counts,
    /// transfers served, retry/backoff accounting) into `sink` under
    /// the `chain.rpc` substrate.
    pub fn observed(
        chains: &'a ChainView,
        plan: Option<&'a FaultPlan>,
        label: &str,
        retry: RetryPolicy,
        epoch: SimTime,
        sink: StageSink,
    ) -> Self {
        RpcView {
            chains,
            gate: RefCell::new(Gated::new(plan, label, retry, sink)),
            cursor: Cell::new(epoch),
        }
    }

    /// Degradation accounting accumulated by this view's reads.
    pub fn stats(&self) -> DegradationStats {
        self.gate.borrow().stats()
    }

    fn read(&self, fetch: impl FnOnce() -> Vec<Transfer>) -> Vec<Transfer> {
        let at = self.cursor.get();
        self.cursor.set(at + READ_SPACING);
        self.gate
            .borrow_mut()
            .checked_counted(Substrate::ChainRpc, at, || {
                let transfers = fetch();
                let n = transfers.len() as u64;
                (transfers, n)
            })
            .unwrap_or_default()
    }
}

impl ChainReads for RpcView<'_> {
    fn incoming(&self, address: Address) -> Vec<Transfer> {
        self.read(|| self.chains.incoming(address))
    }

    fn outgoing(&self, address: Address) -> Vec<Transfer> {
        self.read(|| self.chains.outgoing(address))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Amount;
    use gt_addr::BtcAddress;
    use gt_sim::faults::{FaultKind, FaultWindow};

    fn view_with_history() -> (ChainView, Address) {
        let mut view = ChainView::new();
        let a = BtcAddress::P2pkh([1; 20]);
        let b = BtcAddress::P2pkh([2; 20]);
        view.btc.coinbase(a, Amount(100_000), SimTime(0)).unwrap();
        view.btc
            .pay(&[a], b, Amount(50_000), a, Amount(0), SimTime(100))
            .unwrap();
        (view, Address::Btc(b))
    }

    #[test]
    fn clean_rpc_view_matches_chain_view() {
        let (view, addr) = view_with_history();
        let rpc = RpcView::new(&view, None, "test", RetryPolicy::default(), SimTime(1_000));
        assert_eq!(rpc.incoming(addr), view.incoming(addr));
        assert_eq!(rpc.outgoing(addr), view.outgoing(addr));
        assert!(rpc.stats().is_zero());
    }

    #[test]
    fn outage_degrades_reads_to_empty() {
        let (view, addr) = view_with_history();
        let mut plan = FaultPlan::quiet(3);
        plan.schedules.insert(
            Substrate::ChainRpc,
            vec![FaultWindow {
                start: SimTime(0),
                end: SimTime(i64::MAX),
                kind: FaultKind::Outage,
            }],
        );
        let rpc = RpcView::new(
            &view,
            Some(&plan),
            "test",
            RetryPolicy::default(),
            SimTime(1_000),
        );
        assert!(rpc.incoming(addr).is_empty());
        assert!(!view.incoming(addr).is_empty(), "data exists underneath");
        assert!(rpc.stats().lost >= 1);
    }

    #[test]
    fn cursor_advances_past_short_windows() {
        let (view, addr) = view_with_history();
        let mut plan = FaultPlan::quiet(3);
        // One transient blip at the epoch; later reads are clean.
        plan.schedules.insert(
            Substrate::ChainRpc,
            vec![FaultWindow {
                start: SimTime(1_000),
                end: SimTime(1_001),
                kind: FaultKind::Transient,
            }],
        );
        let rpc = RpcView::new(
            &view,
            Some(&plan),
            "test",
            RetryPolicy::default(),
            SimTime(1_000),
        );
        // First read hits the blip but retries through it.
        assert_eq!(rpc.incoming(addr), view.incoming(addr));
        assert_eq!(rpc.stats().recovered, 1);
        // Subsequent reads are past the window entirely.
        assert_eq!(rpc.outgoing(addr), view.outgoing(addr));
        assert_eq!(rpc.stats().recovered, 1);
    }
}
