//! `#[derive(StoreEncode, StoreDecode)]` for the `gt-store` codec.
//!
//! Like the vendored `serde_derive`, this walks the raw
//! `proc_macro::TokenTree` stream directly (no `syn`/`quote` in the
//! approved dependency set). It understands the item shapes the
//! workspace derives on: named/tuple/unit structs, enums with
//! unit/newtype/tuple/struct variants, simple `<T>` generics, and the
//! `#[store(skip)]` field attribute (skipped fields are not encoded and
//! are rebuilt with `Default::default()` on decode).
//!
//! The generated encoding is *deterministic*: a pure function of the
//! value, independent of process, thread count, or allocator state.
//! `gt-store` relies on that to content-address cache entries.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    /// Tuple fields, one `skip` flag per position.
    Tuple(Vec<bool>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("gt-store-derive: expected identifier, found {other:?}"),
        }
    }

    /// Consumes a run of `#[...]` attributes; returns true if any of
    /// them is a `#[store(skip)]`.
    fn eat_attrs(&mut self) -> bool {
        let mut skip = false;
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    if is_store_skip(&g) {
                        skip = true;
                    }
                }
                other => panic!("gt-store-derive: malformed attribute, found {other:?}"),
            }
        }
        skip
    }

    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Consumes tokens of a type (or expression) until a `,` at
    /// angle-bracket depth zero, leaving the comma unconsumed.
    fn skip_until_comma(&mut self) {
        let mut depth = 0i32;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => return,
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    /// Parses `<...>` generic parameters into their names (`T`, `'a`, …).
    fn parse_generics(&mut self) -> Vec<String> {
        let mut params = Vec::new();
        if !self.eat_punct('<') {
            return params;
        }
        let mut depth = 1i32;
        let mut expecting_name = true;
        while depth > 0 {
            match self.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => expecting_name = true,
                    '\'' if depth == 1 && expecting_name => {
                        let lt = self.expect_ident();
                        params.push(format!("'{lt}"));
                        expecting_name = false;
                    }
                    _ => {}
                },
                Some(TokenTree::Ident(id)) => {
                    if depth == 1 && expecting_name {
                        params.push(id.to_string());
                        expecting_name = false;
                    }
                }
                Some(_) => {}
                None => panic!("gt-store-derive: unterminated generics"),
            }
        }
        params
    }
}

/// Structural check for `#[store(skip)]` — a substring test would
/// false-positive on doc comments mentioning "store" and "skip".
fn is_store_skip(g: &Group) -> bool {
    let mut it = g.stream().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(inner)))
            if id.to_string() == "store" && inner.delimiter() == Delimiter::Parenthesis =>
        {
            inner
                .stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let skip = c.eat_attrs();
        c.eat_visibility();
        let name = c.expect_ident();
        assert!(
            c.eat_punct(':'),
            "gt-store-derive: expected `:` after field `{name}`"
        );
        c.skip_until_comma();
        c.eat_punct(',');
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<bool> {
    let mut c = Cursor::new(stream);
    let mut skips = Vec::new();
    while c.peek().is_some() {
        let skip = c.eat_attrs();
        c.eat_visibility();
        c.skip_until_comma();
        c.eat_punct(',');
        skips.push(skip);
    }
    skips
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.eat_attrs();
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                c.pos += 1;
                Fields::Tuple(parse_tuple_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                c.pos += 1;
                Fields::Named(parse_named_fields(inner))
            }
            _ => Fields::Unit,
        };
        if c.eat_punct('=') {
            // Explicit discriminant: skip the expression.
            c.skip_until_comma();
        }
        c.eat_punct(',');
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.eat_attrs();
    c.eat_visibility();
    let kind_word = c.expect_ident();
    let name = c.expect_ident();
    let generics = c.parse_generics();
    let kind = match kind_word.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(parse_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            other => panic!("gt-store-derive: unexpected struct body {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("gt-store-derive: unexpected enum body {other:?}"),
        },
        other => panic!("gt-store-derive: can only derive on struct/enum, found `{other}`"),
    };
    Item {
        name,
        generics,
        kind,
    }
}

/// `(impl-decl generics with trait bounds, usage generics)`.
fn generics_decl(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let decl: Vec<String> = item
        .generics
        .iter()
        .map(|g| {
            if g.starts_with('\'') {
                g.clone()
            } else {
                format!("{g}: {bound}")
            }
        })
        .collect();
    let usage = item.generics.join(", ");
    (format!("<{}>", decl.join(", ")), format!("<{usage}>"))
}

fn live_count_named(fields: &[Field]) -> usize {
    fields.iter().filter(|f| !f.skip).count()
}

fn live_count_tuple(skips: &[bool]) -> usize {
    skips.iter().filter(|s| !**s).count()
}

// ---- encode ----

/// Statements encoding the (non-skipped) named fields of a struct or
/// struct variant; `accessor` prefixes each field name (`&self.` for
/// structs, empty for bound variant fields).
fn encode_named(fields: &[Field], accessor: &str) -> String {
    let mut out = format!("e.begin_struct({}u16);", live_count_named(fields));
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "e.field(\"{0}\"); gt_store::StoreEncode::store_encode({1}{0}, e);",
            f.name, accessor
        ));
    }
    out
}

fn emit_encode(item: &Item) -> String {
    let (decl, usage) = generics_decl(item, "gt_store::StoreEncode");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => "e.unit();".to_string(),
        Kind::Struct(Fields::Named(fields)) => encode_named(fields, "&self."),
        Kind::Struct(Fields::Tuple(skips)) if skips.len() == 1 && !skips[0] => {
            "gt_store::StoreEncode::store_encode(&self.0, e);".to_string()
        }
        Kind::Struct(Fields::Tuple(skips)) => {
            let mut out = format!("e.begin_tuple({}u16);", live_count_tuple(skips));
            for (i, skip) in skips.iter().enumerate() {
                if !skip {
                    out.push_str(&format!(
                        "gt_store::StoreEncode::store_encode(&self.{i}, e);"
                    ));
                }
            }
            out
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .enumerate()
                .map(|(idx, v)| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => {{ e.begin_enum({idx}u32); e.unit(); }}"
                        ),
                        Fields::Tuple(skips) if skips.len() == 1 && !skips[0] => format!(
                            "{name}::{vname}(f0) => {{ e.begin_enum({idx}u32); \
                             gt_store::StoreEncode::store_encode(f0, e); }}"
                        ),
                        Fields::Tuple(skips) => {
                            let binds: Vec<String> = (0..skips.len())
                                .map(|i| if skips[i] { "_".to_string() } else { format!("f{i}") })
                                .collect();
                            let mut stmts = format!(
                                "e.begin_enum({idx}u32); e.begin_tuple({}u16);",
                                live_count_tuple(skips)
                            );
                            for (i, skip) in skips.iter().enumerate() {
                                if !skip {
                                    stmts.push_str(&format!(
                                        "gt_store::StoreEncode::store_encode(f{i}, e);"
                                    ));
                                }
                            }
                            format!(
                                "{name}::{vname}({}) => {{ {stmts} }}",
                                binds.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds: String = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| format!("{}, ", f.name))
                                .collect();
                            let mut stmts = format!(
                                "e.begin_enum({idx}u32); e.begin_struct({}u16);",
                                live_count_named(fields)
                            );
                            for f in fields.iter().filter(|f| !f.skip) {
                                stmts.push_str(&format!(
                                    "e.field(\"{0}\"); gt_store::StoreEncode::store_encode({0}, e);",
                                    f.name
                                ));
                            }
                            format!("{name}::{vname} {{ {binds}.. }} => {{ {stmts} }}")
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.concat())
        }
    };
    format!(
        "impl{decl} gt_store::StoreEncode for {name}{usage} {{ \
         fn store_encode(&self, e: &mut gt_store::Encoder) {{ {body} }} }}"
    )
}

// ---- decode ----

/// A struct-literal field list decoding the named fields in declaration
/// order (skipped fields get `Default::default()`). Rust evaluates
/// struct-literal fields in written order, which matches encode order.
fn decode_named_literal(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: core::default::Default::default(),", f.name)
            } else {
                format!(
                    "{0}: {{ d.field(\"{0}\")?; gt_store::StoreDecode::store_decode(d)? }},",
                    f.name
                )
            }
        })
        .collect()
}

fn decode_tuple_args(skips: &[bool]) -> String {
    skips
        .iter()
        .map(|skip| {
            if *skip {
                "core::default::Default::default(),".to_string()
            } else {
                "gt_store::StoreDecode::store_decode(d)?,".to_string()
            }
        })
        .collect()
}

fn emit_decode(item: &Item) -> String {
    let (decl, usage) = generics_decl(item, "gt_store::StoreDecode");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => format!("d.unit()?; core::result::Result::Ok({name})"),
        Kind::Struct(Fields::Named(fields)) => format!(
            "d.begin_struct({}u16)?; core::result::Result::Ok({name} {{ {} }})",
            live_count_named(fields),
            decode_named_literal(fields)
        ),
        Kind::Struct(Fields::Tuple(skips)) if skips.len() == 1 && !skips[0] => {
            format!("core::result::Result::Ok({name}(gt_store::StoreDecode::store_decode(d)?))")
        }
        Kind::Struct(Fields::Tuple(skips)) => format!(
            "d.begin_tuple({}u16)?; core::result::Result::Ok({name}({}))",
            live_count_tuple(skips),
            decode_tuple_args(skips)
        ),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .enumerate()
                .map(|(idx, v)| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{idx}u32 => {{ d.unit()?; core::result::Result::Ok({name}::{vname}) }}"
                        ),
                        Fields::Tuple(skips) if skips.len() == 1 && !skips[0] => format!(
                            "{idx}u32 => core::result::Result::Ok({name}::{vname}(\
                             gt_store::StoreDecode::store_decode(d)?)),"
                        ),
                        Fields::Tuple(skips) => format!(
                            "{idx}u32 => {{ d.begin_tuple({}u16)?; \
                             core::result::Result::Ok({name}::{vname}({})) }}",
                            live_count_tuple(skips),
                            decode_tuple_args(skips)
                        ),
                        Fields::Named(fields) => format!(
                            "{idx}u32 => {{ d.begin_struct({}u16)?; \
                             core::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                            live_count_named(fields),
                            decode_named_literal(fields)
                        ),
                    }
                })
                .collect();
            format!(
                "match d.begin_enum()? {{ {} v => core::result::Result::Err(\
                 gt_store::DecodeError::UnknownVariant {{ ty: \"{name}\", variant: v }}), }}",
                arms.concat()
            )
        }
    };
    format!(
        "impl{decl} gt_store::StoreDecode for {name}{usage} {{ \
         fn store_decode(d: &mut gt_store::Decoder<'_>) \
         -> core::result::Result<Self, gt_store::DecodeError> {{ {body} }} }}"
    )
}

#[proc_macro_derive(StoreEncode, attributes(store))]
pub fn derive_store_encode(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_encode(&item)
        .parse()
        .expect("gt-store-derive: generated StoreEncode impl failed to parse")
}

#[proc_macro_derive(StoreDecode, attributes(store))]
pub fn derive_store_decode(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_decode(&item)
        .parse()
        .expect("gt-store-derive: generated StoreDecode impl failed to parse")
}
