//! QR encoding: byte mode, versions 1–10.

use crate::bits::BitWriter;
use crate::format::encode_format;
use crate::gf::Gf;
use crate::matrix::{format_positions_copy1, format_positions_copy2, Matrix};
use crate::rs;
use crate::tables::{block_spec, byte_count_bits, remainder_bits, smallest_version, EcLevel};
use std::fmt;

/// Why encoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Payload exceeds the capacity of version 10 at the requested level.
    TooLong { len: usize, max: usize },
    /// Empty payloads are not representable usefully.
    Empty,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TooLong { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte capacity")
            }
            EncodeError::Empty => write!(f, "payload is empty"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Encode `data` at EC level `level`, choosing the smallest version that
/// fits and the mask with the lowest penalty.
pub fn encode(data: &[u8], level: EcLevel) -> Result<Matrix, EncodeError> {
    if data.is_empty() {
        return Err(EncodeError::Empty);
    }
    let version = smallest_version(data.len(), level).ok_or(EncodeError::TooLong {
        len: data.len(),
        max: crate::tables::byte_capacity(crate::tables::MAX_VERSION, level),
    })?;
    encode_with_version(data, level, version)
}

/// Encode at a specific version (must fit).
pub fn encode_with_version(
    data: &[u8],
    level: EcLevel,
    version: u8,
) -> Result<Matrix, EncodeError> {
    if data.is_empty() {
        return Err(EncodeError::Empty);
    }
    let capacity = crate::tables::byte_capacity(version, level);
    if data.len() > capacity {
        return Err(EncodeError::TooLong {
            len: data.len(),
            max: capacity,
        });
    }

    let codewords = build_codewords(data, level, version);

    // Place the interleaved codewords plus remainder bits.
    let mut matrix = Matrix::for_version(version);
    let order = matrix.data_order();
    let total_bits = codewords.len() * 8 + remainder_bits(version);
    debug_assert_eq!(order.len(), total_bits);
    for (i, &(r, c)) in order.iter().enumerate() {
        let bit = if i < codewords.len() * 8 {
            (codewords[i / 8] >> (7 - i % 8)) & 1 == 1
        } else {
            false // remainder bits
        };
        matrix.set(r, c, bit);
    }

    // Pick the best mask by penalty.
    let mut best_mask = 0u8;
    let mut best_penalty = u32::MAX;
    for mask in 0..8u8 {
        matrix.apply_mask(mask);
        write_format_info(&mut matrix, level, mask);
        let p = matrix.penalty();
        if p < best_penalty {
            best_penalty = p;
            best_mask = mask;
        }
        matrix.apply_mask(mask); // undo
    }
    matrix.apply_mask(best_mask);
    write_format_info(&mut matrix, level, best_mask);
    if version >= 7 {
        write_version_info(&mut matrix, version);
    }
    Ok(matrix)
}

/// Build the final interleaved codeword sequence (data + EC).
fn build_codewords(data: &[u8], level: EcLevel, version: u8) -> Vec<u8> {
    let spec = block_spec(version, level);
    let data_capacity = spec.data_codewords();

    // Bit stream: mode indicator, count, payload, terminator, pad bytes.
    let mut bits = BitWriter::new();
    bits.push(0b0100, 4); // byte mode
    bits.push(data.len() as u32, byte_count_bits(version));
    for &b in data {
        bits.push_byte(b);
    }
    let terminator = (data_capacity * 8 - bits.len()).min(4);
    bits.push(0, terminator);
    // Pad to a byte boundary.
    let partial = bits.len() % 8;
    if partial != 0 {
        bits.push(0, 8 - partial);
    }
    let mut stream = bits.to_bytes();
    // Alternating pad codewords.
    let pads = [0xec, 0x11];
    let mut pad_idx = 0;
    while stream.len() < data_capacity {
        stream.push(pads[pad_idx]);
        pad_idx ^= 1;
    }

    // Split into blocks and compute EC per block.
    let gf = Gf::new();
    let mut data_blocks: Vec<Vec<u8>> = Vec::new();
    let mut ec_blocks: Vec<Vec<u8>> = Vec::new();
    let mut offset = 0usize;
    for (data_len, ec_len) in spec.blocks() {
        let block = stream[offset..offset + data_len].to_vec();
        offset += data_len;
        ec_blocks.push(rs::encode(&gf, &block, ec_len));
        data_blocks.push(block);
    }
    debug_assert_eq!(offset, stream.len());

    // Interleave data, then EC, column-wise.
    let mut out = Vec::with_capacity(spec.total_codewords());
    let max_data = data_blocks.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..max_data {
        for block in &data_blocks {
            if let Some(&b) = block.get(i) {
                out.push(b);
            }
        }
    }
    let max_ec = ec_blocks.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..max_ec {
        for block in &ec_blocks {
            if let Some(&b) = block.get(i) {
                out.push(b);
            }
        }
    }
    out
}

fn write_format_info(matrix: &mut Matrix, level: EcLevel, mask: u8) {
    let word = encode_format(level, mask);
    let p1 = format_positions_copy1();
    let p2 = format_positions_copy2(matrix.size());
    for i in 0..15 {
        // Index 0 is the MSB.
        let bit = (word >> (14 - i)) & 1 == 1;
        let (r, c) = p1[i];
        matrix.set(r, c, bit);
        let (r, c) = p2[i];
        matrix.set(r, c, bit);
    }
}

fn write_version_info(matrix: &mut Matrix, version: u8) {
    let word = crate::format::encode_version(version);
    let size = matrix.size();
    for i in 0..18 {
        let bit = (word >> i) & 1 == 1;
        let a = i / 3;
        let b = size - 11 + i % 3;
        matrix.set(a, b, bit);
        matrix.set(b, a, bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::symbol_size;

    #[test]
    fn chooses_smallest_version() {
        let m = encode(b"short", EcLevel::L).unwrap();
        assert_eq!(m.size(), symbol_size(1));
        let m = encode(&[0u8; 100], EcLevel::L).unwrap();
        assert_eq!(m.size(), symbol_size(5));
    }

    #[test]
    fn rejects_empty_and_oversized() {
        assert_eq!(encode(b"", EcLevel::L), Err(EncodeError::Empty));
        let huge = vec![0u8; 5000];
        assert!(matches!(
            encode(&huge, EcLevel::L),
            Err(EncodeError::TooLong { .. })
        ));
        assert!(matches!(
            encode_with_version(&[0u8; 20], EcLevel::L, 1),
            Err(EncodeError::TooLong { .. })
        ));
    }

    #[test]
    fn dark_fraction_is_balanced() {
        // Masking should keep the symbol roughly half dark.
        let m = encode(b"https://elon-2x.com/claim?id=12345", EcLevel::M).unwrap();
        let frac = m.dark_fraction();
        assert!((0.35..0.65).contains(&frac), "dark fraction {frac}");
    }

    #[test]
    fn deterministic() {
        let a = encode(b"determinism", EcLevel::Q).unwrap();
        let b = encode(b"determinism", EcLevel::Q).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_payloads_different_symbols() {
        let a = encode(b"https://scam-a.com", EcLevel::M).unwrap();
        let b = encode(b"https://scam-b.com", EcLevel::M).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn every_version_and_level_encodes() {
        for version in 1..=crate::tables::MAX_VERSION {
            for level in EcLevel::ALL {
                let cap = crate::tables::byte_capacity(version, level);
                let payload: Vec<u8> = (0..cap as u32).map(|i| (i % 251) as u8).collect();
                let m = encode_with_version(&payload, level, version)
                    .unwrap_or_else(|e| panic!("v{version} {level:?}: {e}"));
                assert_eq!(m.size(), symbol_size(version));
            }
        }
    }
}
