//! Reed–Solomon encoding and decoding over GF(2⁸).
//!
//! QR codes use RS with consecutive roots starting at α⁰. The decoder
//! implements syndromes → Berlekamp–Massey (error locator) → Chien search
//! (error positions) → Forney (error magnitudes), correcting up to
//! ⌊ec/2⌋ byte errors per block.

use crate::gf::Gf;

/// Generator polynomial for `ec_len` parity bytes (highest-degree first,
/// monic).
pub fn generator_poly(gf: &Gf, ec_len: usize) -> Vec<u8> {
    let mut g = vec![1u8];
    for i in 0..ec_len {
        g = gf.poly_mul(&g, &[1, gf.exp(i)]);
    }
    g
}

/// Compute `ec_len` parity bytes for `data`.
pub fn encode(gf: &Gf, data: &[u8], ec_len: usize) -> Vec<u8> {
    assert!(ec_len > 0, "need at least one parity byte");
    let gen = generator_poly(gf, ec_len);
    // Polynomial long division: remainder of data·x^ec_len by gen.
    let mut rem = vec![0u8; ec_len];
    for &d in data {
        let factor = d ^ rem[0];
        rem.remove(0);
        rem.push(0);
        if factor != 0 {
            for (i, &g) in gen[1..].iter().enumerate() {
                rem[i] ^= gf.mul(g, factor);
            }
        }
    }
    rem
}

/// Errors the decoder can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsError {
    /// More errors than the code can correct.
    TooManyErrors,
}

/// Decode a full codeword (data ‖ parity) in place, correcting up to
/// ⌊ec_len/2⌋ errors. Returns the number of corrected bytes.
pub fn correct(gf: &Gf, codeword: &mut [u8], ec_len: usize) -> Result<usize, RsError> {
    assert!(codeword.len() > ec_len, "codeword shorter than parity");
    let n = codeword.len();

    // Syndromes S_i = C(α^i), i = 0..ec_len.
    let mut syndromes = vec![0u8; ec_len];
    let mut all_zero = true;
    for (i, s) in syndromes.iter_mut().enumerate() {
        *s = gf.poly_eval(codeword, gf.exp(i));
        if *s != 0 {
            all_zero = false;
        }
    }
    if all_zero {
        return Ok(0);
    }

    // Berlekamp–Massey: find error locator sigma (lowest-degree first).
    let mut sigma = vec![1u8]; // σ(x), ascending powers
    let mut prev_sigma = vec![1u8];
    let mut l = 0usize; // current number of assumed errors
    let mut m = 1usize; // steps since last update
    let mut b = 1u8; // last non-zero discrepancy

    for r in 0..ec_len {
        // Discrepancy δ = Σ σ_j · S_{r-j}.
        let mut delta = syndromes[r];
        for j in 1..=l.min(sigma.len() - 1) {
            delta ^= gf.mul(sigma[j], syndromes[r - j]);
        }
        if delta == 0 {
            m += 1;
        } else if 2 * l <= r {
            let t = sigma.clone();
            // σ(x) -= (δ/b)·x^m·prev_sigma(x)
            let coef = gf.div(delta, b);
            let mut shifted = vec![0u8; m];
            shifted.extend(prev_sigma.iter().map(|&c| gf.mul(c, coef)));
            if shifted.len() > sigma.len() {
                sigma.resize(shifted.len(), 0);
            }
            for (i, &c) in shifted.iter().enumerate() {
                sigma[i] ^= c;
            }
            l = r + 1 - l;
            prev_sigma = t;
            b = delta;
            m = 1;
        } else {
            let coef = gf.div(delta, b);
            let mut shifted = vec![0u8; m];
            shifted.extend(prev_sigma.iter().map(|&c| gf.mul(c, coef)));
            if shifted.len() > sigma.len() {
                sigma.resize(shifted.len(), 0);
            }
            for (i, &c) in shifted.iter().enumerate() {
                sigma[i] ^= c;
            }
            m += 1;
        }
    }

    // Trim trailing zero coefficients; the true locator degree is L.
    while sigma.len() > 1 && *sigma.last().unwrap() == 0 {
        sigma.pop();
    }
    let num_errors = l;
    if num_errors * 2 > ec_len || num_errors == 0 || sigma.len() - 1 != num_errors {
        return Err(RsError::TooManyErrors);
    }

    // Chien search: roots of σ give error positions. σ is ascending; the
    // error position j corresponds to root α^{-j}.
    let mut error_positions = Vec::new();
    for j in 0..n {
        // Evaluate σ(α^{-j}) = σ(α^{255-j}).
        let x = gf.exp(255 - (j % 255));
        let mut y = 0u8;
        for (k, &c) in sigma.iter().enumerate() {
            if c != 0 {
                y ^= gf.mul(c, gf.exp((gf.log(x) * k) % 255));
            }
        }
        if y == 0 {
            // Position j counts from the END of the codeword (degree 0).
            error_positions.push(n - 1 - j);
        }
    }
    if error_positions.len() != num_errors {
        return Err(RsError::TooManyErrors);
    }

    // Forney: error magnitudes. Ω(x) = S(x)·σ(x) mod x^ec_len (ascending).
    let mut omega = vec![0u8; ec_len];
    for (i, o) in omega.iter_mut().enumerate() {
        let mut v = 0u8;
        for j in 0..=i.min(sigma.len() - 1) {
            v ^= gf.mul(sigma[j], syndromes[i - j]);
        }
        *o = v;
    }
    // σ'(x): formal derivative — odd-degree terms drop one power.
    let mut sigma_deriv = vec![0u8; sigma.len().saturating_sub(1)];
    for (k, &c) in sigma.iter().enumerate().skip(1) {
        if k % 2 == 1 {
            sigma_deriv[k - 1] = c;
        }
    }

    for &pos in &error_positions {
        let j = n - 1 - pos; // exponent index used in Chien search
        let x_inv = gf.exp(255 - (j % 255)); // α^{-j}
        let omega_val = eval_ascending(gf, &omega, x_inv);
        let deriv_val = eval_ascending(gf, &sigma_deriv, x_inv);
        if deriv_val == 0 {
            return Err(RsError::TooManyErrors);
        }
        // Forney with first consecutive root b = 0:
        // e_j = X_j · Ω(X_j⁻¹) / σ'(X_j⁻¹), with X_j = α^j.
        let x_j = gf.exp(j % 255);
        let magnitude = gf.mul(x_j, gf.div(omega_val, deriv_val));
        codeword[pos] ^= magnitude;
    }

    // Verify: all syndromes must now vanish.
    for i in 0..ec_len {
        if gf.poly_eval(codeword, gf.exp(i)) != 0 {
            return Err(RsError::TooManyErrors);
        }
    }
    Ok(error_positions.len())
}

/// Evaluate a polynomial given in ascending-power order.
fn eval_ascending(gf: &Gf, p: &[u8], x: u8) -> u8 {
    let mut y = 0u8;
    for &c in p.iter().rev() {
        y = gf.mul(y, x) ^ c;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gf() -> Gf {
        Gf::new()
    }

    #[test]
    fn known_generator_polynomials() {
        let gf = gf();
        // Standard QR generator for 7 EC codewords (exponents of α):
        // x⁷ + α87·x⁶ + α229·x⁵ + α146·x⁴ + α149·x³ + α238·x² + α102·x + α21
        let g7 = generator_poly(&gf, 7);
        let expected: Vec<u8> = [0usize, 87, 229, 146, 149, 238, 102, 21]
            .iter()
            .map(|&e| gf.exp(e))
            .collect();
        assert_eq!(g7, expected);
    }

    #[test]
    fn known_qr_example_parity() {
        // The "HELLO WORLD" example from Thonky's QR tutorial: the v1-M
        // data codewords below must produce these 10 EC codewords.
        let gf = gf();
        let data = [
            32, 91, 11, 120, 209, 114, 220, 77, 67, 64, 236, 17, 236, 17, 236, 17,
        ];
        let parity = encode(&gf, &data, 10);
        assert_eq!(parity, vec![196, 35, 39, 119, 235, 215, 231, 226, 93, 23]);
    }

    #[test]
    fn clean_codeword_needs_no_correction() {
        let gf = gf();
        let data = b"giveaway scam measurement".to_vec();
        let parity = encode(&gf, &data, 16);
        let mut codeword = data.clone();
        codeword.extend(parity);
        assert_eq!(correct(&gf, &mut codeword, 16), Ok(0));
        assert_eq!(&codeword[..data.len()], &data[..]);
    }

    #[test]
    fn corrects_up_to_capacity() {
        let gf = gf();
        let data: Vec<u8> = (0..40u8).collect();
        for ec_len in [8usize, 16, 22, 30] {
            let parity = encode(&gf, &data, ec_len);
            let clean: Vec<u8> = data.iter().chain(parity.iter()).copied().collect();
            for num_errors in 1..=ec_len / 2 {
                let mut corrupted = clean.clone();
                // Spread errors over distinct positions.
                let stride = corrupted.len() / num_errors;
                for e in 0..num_errors {
                    let pos = e * stride;
                    corrupted[pos] ^= 0x5a + e as u8;
                }
                let fixed = correct(&gf, &mut corrupted, ec_len)
                    .unwrap_or_else(|_| panic!("ec={ec_len} errors={num_errors}"));
                assert_eq!(fixed, num_errors);
                assert_eq!(corrupted, clean, "ec={ec_len} errors={num_errors}");
            }
        }
    }

    #[test]
    fn too_many_errors_detected() {
        let gf = gf();
        let data: Vec<u8> = (100..150u8).collect();
        let ec_len = 10;
        let parity = encode(&gf, &data, ec_len);
        let mut codeword: Vec<u8> = data.iter().chain(parity.iter()).copied().collect();
        // 6 errors > capacity 5 — decoder must not silently "correct".
        for e in 0..6 {
            codeword[e * 3] ^= 0xff;
        }
        assert_eq!(
            correct(&gf, &mut codeword, ec_len),
            Err(RsError::TooManyErrors)
        );
    }

    #[test]
    fn parity_position_errors_corrected_too() {
        let gf = gf();
        let data = b"scanned from stream".to_vec();
        let parity = encode(&gf, &data, 12);
        let mut codeword: Vec<u8> = data.iter().chain(parity.iter()).copied().collect();
        let n = codeword.len();
        codeword[n - 1] ^= 0x42; // corrupt last parity byte
        codeword[n - 5] ^= 0x17;
        assert_eq!(correct(&gf, &mut codeword, 12), Ok(2));
        assert_eq!(&codeword[..data.len()], &data[..]);
    }

    #[test]
    fn single_parity_byte_detects_but_cannot_correct() {
        let gf = gf();
        let data = [1u8, 2, 3];
        let parity = encode(&gf, &data, 2);
        let mut codeword: Vec<u8> = data.iter().chain(parity.iter()).copied().collect();
        codeword[0] ^= 1;
        // 2 parity bytes correct 1 error.
        assert_eq!(correct(&gf, &mut codeword, 2), Ok(1));
        assert_eq!(&codeword[..3], &data[..]);
    }
}
