//! QR code encoder/decoder with Reed–Solomon error correction.
//!
//! Scam livestreams promote their landing pages with QR codes embedded in
//! the video; the paper's pipeline extracts them with opencv + pyzbar.
//! This crate is the from-scratch equivalent used by `gt-stream`:
//!
//! * [`encode()`] renders byte-mode QR symbols, versions 1–10, all four EC
//!   levels, with standard masking and penalty selection — used by
//!   `gt-world` to draw codes into synthetic video frames;
//! * [`decode()`] reads a module matrix back, correcting codeword errors
//!   via Berlekamp–Massey / Chien / Forney;
//! * [`frame`] locates an upright QR symbol inside a larger luma frame by
//!   finder-pattern run detection (the 1:1:3:1:1 signature), at any
//!   integer scale and offset — the "visual analysis of captured video
//!   frames" step of the paper's pipeline.
//!
//! Rotated/perspective-distorted symbols are out of scope: the simulated
//! streams render upright codes, as real scam streams do (static overlay
//! graphics).

pub mod bits;
pub mod decode;
pub mod encode;
pub mod format;
pub mod frame;
pub mod gf;
pub mod matrix;
pub mod rs;
pub mod tables;

pub use decode::{decode, DecodeError};
pub use encode::{encode, EncodeError};
pub use frame::{scan_frame, Frame};
pub use matrix::Matrix;
pub use tables::EcLevel;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_smoke() {
        let url = "https://musk-gives.com/btc";
        let matrix = encode(url.as_bytes(), EcLevel::M).unwrap();
        let decoded = decode(&matrix).unwrap();
        assert_eq!(decoded, url.as_bytes());
    }
}
