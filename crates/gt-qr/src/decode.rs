//! QR decoding from a module matrix.

use crate::bits::BitReader;
use crate::format::decode_format;
use crate::gf::Gf;
use crate::matrix::{format_positions_copy1, format_positions_copy2, Matrix};
use crate::rs;
use crate::tables::{block_spec, byte_count_bits, version_for_size};
use std::fmt;

/// Why decoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Matrix side length is not a supported symbol size.
    BadSize(usize),
    /// Neither copy of the format information decoded.
    BadFormat,
    /// Reed–Solomon failed on some block: too many codeword errors.
    Unrecoverable,
    /// The bit stream did not contain a well-formed byte-mode segment.
    BadPayload,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadSize(s) => write!(f, "{s} is not a supported symbol size"),
            DecodeError::BadFormat => write!(f, "format information unreadable"),
            DecodeError::Unrecoverable => write!(f, "error correction capacity exceeded"),
            DecodeError::BadPayload => write!(f, "malformed data segment"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decode a module matrix back into its byte payload, correcting
/// codeword errors where the EC budget allows.
pub fn decode(matrix: &Matrix) -> Result<Vec<u8>, DecodeError> {
    let size = matrix.size();
    let version = version_for_size(size).ok_or(DecodeError::BadSize(size))?;

    // Read the format info: try copy 1, fall back to copy 2.
    let read_word = |positions: &[(usize, usize)]| -> u16 {
        let mut word = 0u16;
        for &(r, c) in positions {
            word = (word << 1) | u16::from(matrix.get(r, c));
        }
        word
    };
    let (level, mask) = decode_format(read_word(&format_positions_copy1()))
        .or_else(|| decode_format(read_word(&format_positions_copy2(size))))
        .ok_or(DecodeError::BadFormat)?;

    // Unmask into a scratch copy and read the data modules.
    let mut work = matrix.clone();
    work.apply_mask(mask);
    let order = work.data_order();
    let spec = block_spec(version, level);
    let total_codewords = spec.total_codewords();

    let mut codewords = vec![0u8; total_codewords];
    for (i, &(r, c)) in order.iter().take(total_codewords * 8).enumerate() {
        if work.get(r, c) {
            codewords[i / 8] |= 1 << (7 - i % 8);
        }
    }

    // De-interleave into blocks.
    let blocks: Vec<(usize, usize)> = spec.blocks().collect();
    let mut data_blocks: Vec<Vec<u8>> =
        blocks.iter().map(|&(d, _)| Vec::with_capacity(d)).collect();
    let mut ec_blocks: Vec<Vec<u8>> = blocks.iter().map(|&(_, e)| Vec::with_capacity(e)).collect();

    let mut it = codewords.iter().copied();
    let max_data = blocks.iter().map(|&(d, _)| d).max().unwrap_or(0);
    for i in 0..max_data {
        for (bi, &(d, _)) in blocks.iter().enumerate() {
            if i < d {
                data_blocks[bi].push(it.next().expect("codeword count mismatch"));
            }
        }
    }
    let max_ec = blocks.iter().map(|&(_, e)| e).max().unwrap_or(0);
    for i in 0..max_ec {
        for (bi, &(_, e)) in blocks.iter().enumerate() {
            if i < e {
                ec_blocks[bi].push(it.next().expect("codeword count mismatch"));
            }
        }
    }

    // RS-correct each block and concatenate the data parts.
    let gf = Gf::new();
    let mut stream = Vec::with_capacity(spec.data_codewords());
    for (bi, &(d, e)) in blocks.iter().enumerate() {
        let mut codeword: Vec<u8> = data_blocks[bi]
            .iter()
            .chain(ec_blocks[bi].iter())
            .copied()
            .collect();
        rs::correct(&gf, &mut codeword, e).map_err(|_| DecodeError::Unrecoverable)?;
        stream.extend_from_slice(&codeword[..d]);
    }

    // Parse the byte-mode segment.
    let mut reader = BitReader::new(&stream);
    let mode = reader.read(4).ok_or(DecodeError::BadPayload)?;
    if mode != 0b0100 {
        return Err(DecodeError::BadPayload);
    }
    let count = reader
        .read(byte_count_bits(version))
        .ok_or(DecodeError::BadPayload)? as usize;
    let mut payload = Vec::with_capacity(count);
    for _ in 0..count {
        payload.push(reader.read(8).ok_or(DecodeError::BadPayload)? as u8);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode, encode_with_version};
    use crate::tables::{byte_capacity, EcLevel, MAX_VERSION};

    #[test]
    fn round_trip_all_versions_and_levels() {
        for version in 1..=MAX_VERSION {
            for level in EcLevel::ALL {
                let cap = byte_capacity(version, level);
                let payload: Vec<u8> = (0..cap).map(|i| b'a' + (i % 26) as u8).collect();
                let m = encode_with_version(&payload, level, version).unwrap();
                let decoded = decode(&m).unwrap_or_else(|e| panic!("v{version} {level:?}: {e}"));
                assert_eq!(decoded, payload, "v{version} {level:?}");
            }
        }
    }

    #[test]
    fn round_trip_urls() {
        for url in [
            "https://musk-gives.com",
            "https://xrp-2x-event.live/claim?id=abc123",
            "http://double-your-bitcoin.fund/r/QWERTY#top",
        ] {
            for level in EcLevel::ALL {
                let m = encode(url.as_bytes(), level).unwrap();
                assert_eq!(decode(&m).unwrap(), url.as_bytes(), "{url} at {level:?}");
            }
        }
    }

    #[test]
    fn binary_payload_round_trips() {
        let payload: Vec<u8> = (0..=255u8).take(40).collect();
        let m = encode(&payload, EcLevel::H).unwrap();
        assert_eq!(decode(&m).unwrap(), payload);
    }

    #[test]
    fn survives_module_damage_within_budget() {
        let url = b"https://eth-giveaway.org/x";
        let m = encode(url, EcLevel::H).unwrap();
        // Flip a handful of scattered data-area modules (~2% of symbol).
        let mut damaged = m.clone();
        let size = damaged.size();
        let mut flipped = 0;
        'outer: for r in (9..size - 9).step_by(4) {
            for c in (9..size - 9).step_by(5) {
                if !damaged.is_function(r, c) {
                    let v = damaged.get(r, c);
                    damaged.set(r, c, !v);
                    flipped += 1;
                    if flipped >= 8 {
                        break 'outer;
                    }
                }
            }
        }
        assert!(flipped >= 8);
        assert_eq!(decode(&damaged).unwrap(), url);
    }

    #[test]
    fn too_much_damage_is_an_error_not_garbage() {
        let url = b"https://eth-giveaway.org/x";
        let m = encode(url, EcLevel::L).unwrap();
        let mut damaged = m.clone();
        let size = damaged.size();
        // Carpet-bomb the data area.
        for r in 9..size - 9 {
            for c in 9..size - 9 {
                if !damaged.is_function(r, c) && (r + c) % 2 == 0 {
                    let v = damaged.get(r, c);
                    damaged.set(r, c, !v);
                }
            }
        }
        match decode(&damaged) {
            Err(DecodeError::Unrecoverable) | Err(DecodeError::BadPayload) => {}
            Ok(payload) => assert_eq!(payload, url, "if it decodes it must be right"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn format_info_damage_tolerated() {
        let url = b"format-damage-test";
        let m = encode(url, EcLevel::M).unwrap();
        let mut damaged = m.clone();
        // Corrupt two bits of format copy 1; copy 2 (or BCH correction)
        // must still recover.
        let positions = crate::matrix::format_positions_copy1();
        for &(r, c) in positions.iter().take(2) {
            let v = damaged.get(r, c);
            damaged.set(r, c, !v);
        }
        assert_eq!(decode(&damaged).unwrap(), url);
    }

    #[test]
    fn bad_size_rejected() {
        let m = Matrix::from_modules(20, vec![false; 400]);
        assert!(m.is_none(), "20 is not a valid symbol size");
    }
}
