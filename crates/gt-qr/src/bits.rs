//! Bit-stream writer/reader for codeword assembly.

/// Append-only bit buffer (MSB-first within bytes).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bits: Vec<bool>,
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Append the low `count` bits of `value`, most significant first.
    pub fn push(&mut self, value: u32, count: usize) {
        assert!(count <= 32);
        for i in (0..count).rev() {
            self.bits.push((value >> i) & 1 == 1);
        }
    }

    pub fn push_byte(&mut self, b: u8) {
        self.push(u32::from(b), 8);
    }

    pub fn len(&self) -> usize {
        self.bits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Pack into bytes, zero-padding the final partial byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.len().div_ceil(8)];
        for (i, &bit) in self.bits.iter().enumerate() {
            if bit {
                out[i / 8] |= 1 << (7 - i % 8);
            }
        }
        out
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() * 8 - self.pos
    }

    /// Read `count` bits as a big-endian integer; `None` if exhausted.
    pub fn read(&mut self, count: usize) -> Option<u32> {
        assert!(count <= 32);
        if self.remaining() < count {
            return None;
        }
        let mut value = 0u32;
        for _ in 0..count {
            let byte = self.data[self.pos / 8];
            let bit = (byte >> (7 - self.pos % 8)) & 1;
            value = (value << 1) | u32::from(bit);
            self.pos += 1;
        }
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_packs_msb_first() {
        let mut w = BitWriter::new();
        w.push(0b0100, 4); // byte-mode indicator
        w.push(0b1010_1010, 8);
        assert_eq!(w.len(), 12);
        assert_eq!(w.to_bytes(), vec![0b0100_1010, 0b1010_0000]);
    }

    #[test]
    fn round_trip_through_reader() {
        let mut w = BitWriter::new();
        w.push(0b101, 3);
        w.push(0xbeef, 16);
        w.push_byte(0x42);
        let bytes = w.to_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), Some(0b101));
        assert_eq!(r.read(16), Some(0xbeef));
        assert_eq!(r.read(8), Some(0x42));
    }

    #[test]
    fn reader_stops_at_end() {
        let data = [0xff];
        let mut r = BitReader::new(&data);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.read(8), Some(0xff));
        assert_eq!(r.read(1), None);
    }

    #[test]
    fn zero_count_reads() {
        let data = [0xab];
        let mut r = BitReader::new(&data);
        assert_eq!(r.read(0), Some(0));
        assert_eq!(r.remaining(), 8);
    }
}
