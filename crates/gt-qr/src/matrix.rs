//! Module matrix: function patterns, data placement order, masking.

use crate::tables::{alignment_positions, symbol_size};

/// A square module matrix. `true` = dark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    size: usize,
    modules: Vec<bool>,
    /// Marks function-pattern cells (finder, timing, alignment, format,
    /// version, dark module) that carry no data codeword bits.
    function: Vec<bool>,
}

impl Matrix {
    /// An all-light matrix for `version` with function-pattern areas
    /// marked (and the fixed patterns drawn).
    pub fn for_version(version: u8) -> Self {
        let size = symbol_size(version);
        let mut m = Matrix {
            size,
            modules: vec![false; size * size],
            function: vec![false; size * size],
        };
        m.draw_function_patterns(version);
        m
    }

    /// An empty matrix of raw modules (used by the decoder after
    /// sampling a frame). Function map is rebuilt from the version.
    pub fn from_modules(size: usize, modules: Vec<bool>) -> Option<Self> {
        if modules.len() != size * size {
            return None;
        }
        let version = crate::tables::version_for_size(size)?;
        let mut m = Matrix {
            size,
            modules,
            function: vec![false; size * size],
        };
        // Re-mark function areas without overwriting sampled modules.
        let mut template = Matrix::for_version(version);
        std::mem::swap(&mut m.function, &mut template.function);
        Some(m)
    }

    pub fn size(&self) -> usize {
        self.size
    }

    pub fn get(&self, row: usize, col: usize) -> bool {
        self.modules[row * self.size + col]
    }

    pub fn set(&mut self, row: usize, col: usize, dark: bool) {
        self.modules[row * self.size + col] = dark;
    }

    pub fn is_function(&self, row: usize, col: usize) -> bool {
        self.function[row * self.size + col]
    }

    fn set_function(&mut self, row: usize, col: usize, dark: bool) {
        self.set(row, col, dark);
        self.function[row * self.size + col] = true;
    }

    /// Fraction of dark modules (penalty rule 4 and tests).
    pub fn dark_fraction(&self) -> f64 {
        self.modules.iter().filter(|&&m| m).count() as f64 / self.modules.len() as f64
    }

    fn draw_function_patterns(&mut self, version: u8) {
        let size = self.size;
        // Finder patterns + separators at three corners.
        self.draw_finder(0, 0);
        self.draw_finder(0, size - 7);
        self.draw_finder(size - 7, 0);
        // Separators (1-module light border inside the symbol).
        for i in 0..8 {
            self.set_function(7, i, false);
            self.set_function(i, 7, false);
            self.set_function(7, size - 8 + i, false);
            self.set_function(i, size - 8, false);
            self.set_function(size - 8, i, false);
            self.set_function(size - 8 + i, 7, false);
        }
        // Timing patterns.
        for i in 8..size - 8 {
            let dark = i % 2 == 0;
            self.set_function(6, i, dark);
            self.set_function(i, 6, dark);
        }
        // Alignment patterns (skip any overlapping a finder).
        let centers = alignment_positions(version);
        for &r in centers {
            for &c in centers {
                let near_finder = (r < 9 && (c < 9 || c > size - 10)) || (r > size - 10 && c < 9);
                if near_finder {
                    continue;
                }
                self.draw_alignment(r, c);
            }
        }
        // Dark module.
        self.set_function(size - 8, 8, true);
        // Reserve format info areas (filled in later by the encoder).
        for (r, c) in format_positions_copy1() {
            self.function[r * size + c] = true;
        }
        for (r, c) in format_positions_copy2(size) {
            self.function[r * size + c] = true;
        }
        // Reserve version info areas (v >= 7).
        if version >= 7 {
            for i in 0..18 {
                let a = i / 3;
                let b = size - 11 + i % 3;
                self.function[a * size + b] = true;
                self.function[b * size + a] = true;
            }
        }
    }

    fn draw_finder(&mut self, top: usize, left: usize) {
        for dr in 0..7 {
            for dc in 0..7 {
                let on_ring = dr == 0 || dr == 6 || dc == 0 || dc == 6;
                let in_core = (2..=4).contains(&dr) && (2..=4).contains(&dc);
                self.set_function(top + dr, left + dc, on_ring || in_core);
            }
        }
    }

    fn draw_alignment(&mut self, center_r: usize, center_c: usize) {
        for dr in 0..5 {
            for dc in 0..5 {
                let ring = dr == 0 || dr == 4 || dc == 0 || dc == 4;
                let core = dr == 2 && dc == 2;
                self.set_function(center_r - 2 + dr, center_c - 2 + dc, ring || core);
            }
        }
    }

    /// The zigzag order in which data bits occupy non-function modules.
    /// Shared by encoder and decoder so placement and extraction always
    /// agree.
    pub fn data_order(&self) -> Vec<(usize, usize)> {
        let size = self.size;
        let mut order = Vec::new();
        let mut col = size as isize - 1;
        let mut upward = true;
        while col > 0 {
            if col == 6 {
                col -= 1; // the vertical timing pattern column is skipped entirely
            }
            let rows: Vec<usize> = if upward {
                (0..size).rev().collect()
            } else {
                (0..size).collect()
            };
            for row in rows {
                for c in [col, col - 1] {
                    let c = c as usize;
                    if !self.is_function(row, c) {
                        order.push((row, c));
                    }
                }
            }
            upward = !upward;
            col -= 2;
        }
        order
    }

    /// Apply (or remove — XOR is an involution) mask `mask` to all
    /// non-function modules.
    pub fn apply_mask(&mut self, mask: u8) {
        for row in 0..self.size {
            for col in 0..self.size {
                if !self.is_function(row, col) && mask_bit(mask, row, col) {
                    let v = self.get(row, col);
                    self.set(row, col, !v);
                }
            }
        }
    }

    /// Standard penalty score used to pick the mask.
    pub fn penalty(&self) -> u32 {
        let size = self.size;
        let mut score = 0u32;

        // Rule 1: runs of >= 5 same-colour modules, rows and columns.
        for axis in 0..2 {
            for i in 0..size {
                let mut run = 1;
                let mut prev = self.axis_get(axis, i, 0);
                for j in 1..size {
                    let cur = self.axis_get(axis, i, j);
                    if cur == prev {
                        run += 1;
                    } else {
                        if run >= 5 {
                            score += 3 + (run - 5) as u32;
                        }
                        run = 1;
                        prev = cur;
                    }
                }
                if run >= 5 {
                    score += 3 + (run - 5) as u32;
                }
            }
        }

        // Rule 2: 2x2 blocks of the same colour.
        for r in 0..size - 1 {
            for c in 0..size - 1 {
                let v = self.get(r, c);
                if self.get(r, c + 1) == v && self.get(r + 1, c) == v && self.get(r + 1, c + 1) == v
                {
                    score += 3;
                }
            }
        }

        // Rule 3: finder-like 1011101 pattern with 4 light modules on
        // either side.
        const PAT: [bool; 11] = [
            true, false, true, true, true, false, true, false, false, false, false,
        ];
        for axis in 0..2 {
            for i in 0..size {
                for j in 0..size.saturating_sub(10) {
                    let fwd = (0..11).all(|k| self.axis_get(axis, i, j + k) == PAT[k]);
                    let rev = (0..11).all(|k| self.axis_get(axis, i, j + k) == PAT[10 - k]);
                    if fwd {
                        score += 40;
                    }
                    if rev {
                        score += 40;
                    }
                }
            }
        }

        // Rule 4: dark-module balance.
        let dark_pct = (self.dark_fraction() * 100.0).round() as i32;
        score += ((dark_pct - 50).abs() / 5) as u32 * 10;
        score
    }

    fn axis_get(&self, axis: usize, i: usize, j: usize) -> bool {
        if axis == 0 {
            self.get(i, j)
        } else {
            self.get(j, i)
        }
    }

    /// Render as text for debugging ('#' dark, '.' light).
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(self.size * (self.size + 1));
        for r in 0..self.size {
            for c in 0..self.size {
                s.push(if self.get(r, c) { '#' } else { '.' });
            }
            s.push('\n');
        }
        s
    }
}

/// Mask predicate: whether (row, col) flips under mask `mask`.
pub fn mask_bit(mask: u8, r: usize, c: usize) -> bool {
    match mask {
        0 => (r + c).is_multiple_of(2),
        1 => r.is_multiple_of(2),
        2 => c.is_multiple_of(3),
        3 => (r + c).is_multiple_of(3),
        4 => (r / 2 + c / 3).is_multiple_of(2),
        5 => (r * c) % 2 + (r * c) % 3 == 0,
        6 => ((r * c) % 2 + (r * c) % 3).is_multiple_of(2),
        7 => ((r + c) % 2 + (r * c) % 3).is_multiple_of(2),
        _ => panic!("mask {mask} out of range"),
    }
}

/// Format-info module positions for copy 1 (around the top-left finder),
/// most significant bit first.
pub fn format_positions_copy1() -> [(usize, usize); 15] {
    [
        (8, 0),
        (8, 1),
        (8, 2),
        (8, 3),
        (8, 4),
        (8, 5),
        (8, 7),
        (8, 8),
        (7, 8),
        (5, 8),
        (4, 8),
        (3, 8),
        (2, 8),
        (1, 8),
        (0, 8),
    ]
}

/// Format-info module positions for copy 2 (split between the bottom-left
/// and top-right finders), most significant bit first.
pub fn format_positions_copy2(size: usize) -> [(usize, usize); 15] {
    let mut out = [(0usize, 0usize); 15];
    // 7 bits down the left of the bottom-left finder (col 8).
    for (i, slot) in out.iter_mut().take(7).enumerate() {
        *slot = (size - 1 - i, 8);
    }
    // 8 bits along the bottom of the top-right finder (row 8).
    for i in 0..8 {
        out[7 + i] = (8, size - 8 + i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{block_spec, remainder_bits, EcLevel, MAX_VERSION};

    #[test]
    fn finder_patterns_in_three_corners() {
        let m = Matrix::for_version(1);
        // Centers of the finder patterns are dark.
        assert!(m.get(3, 3));
        assert!(m.get(3, 17));
        assert!(m.get(17, 3));
        // Fourth corner has no finder.
        assert!(!m.get(17, 17));
        // Ring structure: (0,0) dark, (1,1) light, (2,2) dark.
        assert!(m.get(0, 0));
        assert!(!m.get(1, 1));
        assert!(m.get(2, 2));
    }

    #[test]
    fn timing_patterns_alternate() {
        let m = Matrix::for_version(2);
        for i in 8..m.size() - 8 {
            assert_eq!(m.get(6, i), i % 2 == 0, "row timing at {i}");
            assert_eq!(m.get(i, 6), i % 2 == 0, "col timing at {i}");
        }
    }

    #[test]
    fn dark_module_present() {
        for v in 1..=MAX_VERSION {
            let m = Matrix::for_version(v);
            assert!(m.get(m.size() - 8, 8), "v{v} dark module");
            assert!(m.is_function(m.size() - 8, 8));
        }
    }

    #[test]
    fn alignment_pattern_in_v2() {
        let m = Matrix::for_version(2);
        // v2 alignment centre at (18, 18).
        assert!(m.get(18, 18));
        assert!(!m.get(17, 18));
        assert!(m.get(16, 18));
        assert!(m.is_function(18, 18));
    }

    #[test]
    fn data_capacity_matches_tables() {
        // Non-function module count must equal 8 * total codewords +
        // remainder bits for every version.
        for v in 1..=MAX_VERSION {
            let m = Matrix::for_version(v);
            let order = m.data_order();
            let expected = block_spec(v, EcLevel::L).total_codewords() * 8 + remainder_bits(v);
            assert_eq!(order.len(), expected, "v{v} data module count");
        }
    }

    #[test]
    fn data_order_has_no_duplicates_or_function_cells() {
        let m = Matrix::for_version(7);
        let order = m.data_order();
        let mut seen = std::collections::HashSet::new();
        for &(r, c) in &order {
            assert!(!m.is_function(r, c), "({r},{c}) is a function cell");
            assert!(seen.insert((r, c)), "({r},{c}) appears twice");
        }
    }

    #[test]
    fn mask_is_involution() {
        let mut m = Matrix::for_version(3);
        // Scatter some data bits.
        let order = m.data_order();
        for (i, &(r, c)) in order.iter().enumerate() {
            m.set(r, c, i % 3 == 0);
        }
        let before = m.clone();
        for mask in 0..8 {
            m.apply_mask(mask);
            m.apply_mask(mask);
            assert_eq!(m, before, "mask {mask} not an involution");
        }
    }

    #[test]
    fn masks_differ_from_each_other() {
        let base = Matrix::for_version(2);
        let mut rendered = Vec::new();
        for mask in 0..8u8 {
            let mut m = base.clone();
            m.apply_mask(mask);
            rendered.push(m);
        }
        for i in 0..8 {
            for j in i + 1..8 {
                assert_ne!(rendered[i], rendered[j], "masks {i} and {j} identical");
            }
        }
    }

    #[test]
    fn format_positions_are_distinct_and_in_bounds() {
        for v in [1u8, 7, 10] {
            let size = symbol_size(v);
            let p1 = format_positions_copy1();
            let p2 = format_positions_copy2(size);
            let all: std::collections::HashSet<_> = p1.iter().chain(p2.iter()).collect();
            assert_eq!(all.len(), 30, "v{v} positions overlap");
            for &(r, c) in p1.iter().chain(p2.iter()) {
                assert!(r < size && c < size);
            }
        }
    }

    #[test]
    fn penalty_is_finite_and_sane() {
        let m = Matrix::for_version(1);
        let p = m.penalty();
        // An empty (all-light data) matrix has huge run penalties.
        assert!(p > 100);
    }
}
