//! Locating and sampling a QR symbol inside a video frame.
//!
//! The measurement pipeline samples two-second clips of each livestream
//! and scans the frames for QR codes. Frames here are luma grids; the
//! scanner finds finder patterns by their 1:1:3:1:1 dark/light run
//! signature, infers the module size and grid origin, samples the
//! modules, and hands the matrix to [`crate::decode()`].
//!
//! Upright symbols at any integer scale and position are supported
//! (matching how scam streams embed static overlay QR graphics).

use crate::decode::{decode, DecodeError};
use crate::matrix::Matrix;
use crate::tables::version_for_size;

/// A grayscale frame. Values ≥ 128 are treated as light.
#[derive(Debug, Clone)]
pub struct Frame {
    pub width: usize,
    pub height: usize,
    /// Row-major luma values.
    pub luma: Vec<u8>,
}

impl Frame {
    /// A blank (white) frame.
    pub fn blank(width: usize, height: usize) -> Self {
        Frame {
            width,
            height,
            luma: vec![255; width * height],
        }
    }

    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.luma[y * self.width + x]
    }

    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        self.luma[y * self.width + x] = v;
    }

    fn dark(&self, x: usize, y: usize) -> bool {
        self.get(x, y) < 128
    }

    /// Paint a QR matrix into the frame at (`left`, `top`) with
    /// `scale` pixels per module, surrounded by a 4-module quiet zone.
    pub fn paint_qr(&mut self, matrix: &Matrix, left: usize, top: usize, scale: usize) {
        assert!(scale >= 1);
        let quiet = 4 * scale;
        let span = matrix.size() * scale + 2 * quiet;
        assert!(
            left + span <= self.width && top + span <= self.height,
            "QR of span {span} does not fit at ({left},{top}) in {}x{}",
            self.width,
            self.height
        );
        // Quiet zone.
        for y in 0..span {
            for x in 0..span {
                self.set(left + x, top + y, 255);
            }
        }
        for r in 0..matrix.size() {
            for c in 0..matrix.size() {
                let v = if matrix.get(r, c) { 0 } else { 255 };
                for dy in 0..scale {
                    for dx in 0..scale {
                        self.set(
                            left + quiet + c * scale + dx,
                            top + quiet + r * scale + dy,
                            v,
                        );
                    }
                }
            }
        }
    }
}

/// A located finder-pattern candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FinderCandidate {
    center_x: f64,
    center_y: f64,
    module_size: f64,
}

/// Scan a row (or column) for 1:1:3:1:1 dark/light run signatures.
fn row_candidates(frame: &Frame, y: usize) -> Vec<FinderCandidate> {
    let mut out = Vec::new();
    let mut runs: Vec<(bool, usize, usize)> = Vec::new(); // (dark, start, len)
    let mut x = 0;
    while x < frame.width {
        let dark = frame.dark(x, y);
        let start = x;
        while x < frame.width && frame.dark(x, y) == dark {
            x += 1;
        }
        runs.push((dark, start, x - start));
    }
    // A finder row signature: dark, light, dark(3x), light, dark with
    // ratios 1:1:3:1:1.
    for w in runs.windows(5) {
        let [(d0, s0, l0), (d1, _, l1), (d2, _, l2), (d3, _, l3), (d4, _, l4)] =
            [w[0], w[1], w[2], w[3], w[4]];
        if !(d0 && !d1 && d2 && !d3 && d4) {
            continue;
        }
        let unit = (l0 + l1 + l2 + l3 + l4) as f64 / 7.0;
        let ok = |len: usize, expect: f64| {
            let tol = (unit * 0.5).max(0.5);
            (len as f64 - expect * unit).abs() <= tol * expect.max(1.0)
        };
        if ok(l0, 1.0) && ok(l1, 1.0) && ok(l2, 3.0) && ok(l3, 1.0) && ok(l4, 1.0) {
            out.push(FinderCandidate {
                center_x: s0 as f64 + (l0 + l1 + l2 + l3 + l4) as f64 / 2.0,
                center_y: y as f64,
                module_size: unit,
            });
        }
    }
    // silence unused-variable warning for s-values of inner runs
    out
}

/// Verify a horizontal candidate by checking the same signature
/// vertically through its centre.
fn verify_vertical(frame: &Frame, cand: &FinderCandidate) -> bool {
    let x = cand.center_x.round() as usize;
    if x >= frame.width {
        return false;
    }
    let cy = cand.center_y.round() as isize;
    // Walk up and down from the centre collecting run lengths.
    let count_run = |mut y: isize, step: isize, dark: bool| -> usize {
        let mut n = 0;
        while y >= 0 && (y as usize) < frame.height && frame.dark(x, y as usize) == dark {
            n += 1;
            y += step;
        }
        n
    };
    let core_up = count_run(cy, -1, true);
    let core_down = count_run(cy + 1, 1, true);
    let core = core_up + core_down;
    let white_up = count_run(cy - core_up as isize, -1, false);
    let white_down = count_run(cy + core_down as isize + 1, 1, false);
    let cap_up = count_run(cy - core_up as isize - white_up as isize, -1, true);
    let cap_down = count_run(cy + core_down as isize + white_down as isize + 1, 1, true);
    let unit = cand.module_size;
    let near = |v: usize, expect: f64| (v as f64 - expect * unit).abs() <= unit * 0.75 + 0.5;
    near(core, 3.0)
        && near(white_up, 1.0)
        && near(white_down, 1.0)
        && near(cap_up, 1.0)
        && near(cap_down, 1.0)
}

/// Cluster nearby candidates into distinct finder patterns.
fn cluster(cands: Vec<FinderCandidate>) -> Vec<FinderCandidate> {
    let mut clusters: Vec<(FinderCandidate, usize)> = Vec::new();
    for c in cands {
        let mut merged = false;
        for (rep, n) in &mut clusters {
            if (rep.center_x - c.center_x).abs() < rep.module_size * 2.0
                && (rep.center_y - c.center_y).abs() < rep.module_size * 2.0
            {
                // Running average.
                let total = *n as f64;
                rep.center_x = (rep.center_x * total + c.center_x) / (total + 1.0);
                rep.center_y = (rep.center_y * total + c.center_y) / (total + 1.0);
                rep.module_size = (rep.module_size * total + c.module_size) / (total + 1.0);
                *n += 1;
                merged = true;
                break;
            }
        }
        if !merged {
            clusters.push((c, 1));
        }
    }
    clusters.into_iter().map(|(c, _)| c).collect()
}

/// A decoded QR payload with its location in the frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameHit {
    pub payload: Vec<u8>,
    /// Top-left pixel of the symbol (excluding quiet zone).
    pub left: usize,
    pub top: usize,
    /// Symbol side length in modules.
    pub symbol_size: usize,
}

/// Scan `frame` for upright QR symbols and decode them.
pub fn scan_frame(frame: &Frame) -> Vec<FrameHit> {
    // Collect horizontal candidates on every row (cheap — frames are
    // small in the pipeline), verify vertically, cluster.
    let mut cands = Vec::new();
    for y in 0..frame.height {
        for c in row_candidates(frame, y) {
            if verify_vertical(frame, &c) {
                cands.push(c);
            }
        }
    }
    let finders = cluster(cands);
    if finders.len() < 3 {
        return Vec::new();
    }

    // Try every triple that forms an axis-aligned right angle:
    // top-left, top-right, bottom-left.
    let mut hits: Vec<FrameHit> = Vec::new();
    for (i, tl) in finders.iter().enumerate() {
        for (j, tr) in finders.iter().enumerate() {
            for (k, bl) in finders.iter().enumerate() {
                if i == j || i == k || j == k {
                    continue;
                }
                let unit = (tl.module_size + tr.module_size + bl.module_size) / 3.0;
                // Axis alignment within a module.
                if (tl.center_y - tr.center_y).abs() > unit
                    || (tl.center_x - bl.center_x).abs() > unit
                {
                    continue;
                }
                let dx = tr.center_x - tl.center_x;
                let dy = bl.center_y - tl.center_y;
                if dx <= 0.0 || dy <= 0.0 || (dx - dy).abs() > unit * 2.0 {
                    continue;
                }
                // Distance between finder centres = (size - 7) modules.
                let size_est = (dx / unit).round() as isize + 7;
                let Some(_) = version_for_size(size_est.max(0) as usize) else {
                    continue;
                };
                let size = size_est as usize;
                // Sample the grid.
                let origin_x = tl.center_x - 3.5 * unit;
                let origin_y = tl.center_y - 3.5 * unit;
                if let Some(hit) = sample_and_decode(frame, origin_x, origin_y, unit, size) {
                    if !hits.iter().any(|h| h.payload == hit.payload) {
                        hits.push(hit);
                    }
                }
            }
        }
    }
    hits
}

fn sample_and_decode(
    frame: &Frame,
    origin_x: f64,
    origin_y: f64,
    unit: f64,
    size: usize,
) -> Option<FrameHit> {
    let mut modules = Vec::with_capacity(size * size);
    for r in 0..size {
        for c in 0..size {
            let x = origin_x + (c as f64 + 0.5) * unit;
            let y = origin_y + (r as f64 + 0.5) * unit;
            if x < 0.0 || y < 0.0 {
                return None;
            }
            let (xi, yi) = (x.floor() as usize, y.floor() as usize);
            if xi >= frame.width || yi >= frame.height {
                return None;
            }
            modules.push(frame.dark(xi, yi));
        }
    }
    let matrix = Matrix::from_modules(size, modules)?;
    match decode(&matrix) {
        Ok(payload) => Some(FrameHit {
            payload,
            left: origin_x.round() as usize,
            top: origin_y.round() as usize,
            symbol_size: size,
        }),
        Err(DecodeError::BadSize(_) | DecodeError::BadFormat) => None,
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::tables::EcLevel;

    fn qr(text: &str) -> Matrix {
        encode(text.as_bytes(), EcLevel::M).unwrap()
    }

    #[test]
    fn finds_qr_at_scale_one() {
        let m = qr("https://btc-x2.com");
        let mut frame = Frame::blank(120, 120);
        frame.paint_qr(&m, 10, 10, 1);
        let hits = scan_frame(&frame);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].payload, b"https://btc-x2.com");
    }

    #[test]
    fn finds_qr_at_larger_scales() {
        for scale in [2usize, 3, 5] {
            let m = qr("https://xrp-event.live/go");
            let span = m.size() * scale + 8 * scale + 20;
            let mut frame = Frame::blank(span + 30, span + 30);
            frame.paint_qr(&m, 13, 17, scale);
            let hits = scan_frame(&frame);
            assert_eq!(hits.len(), 1, "scale {scale}");
            assert_eq!(
                hits[0].payload, b"https://xrp-event.live/go",
                "scale {scale}"
            );
        }
    }

    #[test]
    fn blank_frame_has_no_hits() {
        let frame = Frame::blank(200, 150);
        assert!(scan_frame(&frame).is_empty());
    }

    #[test]
    fn noisy_frame_without_qr_has_no_hits() {
        let mut frame = Frame::blank(160, 120);
        // Deterministic speckle noise.
        for y in 0..frame.height {
            for x in 0..frame.width {
                if (x * 31 + y * 17) % 7 == 0 {
                    frame.set(x, y, 0);
                }
            }
        }
        assert!(scan_frame(&frame).is_empty());
    }

    #[test]
    fn qr_amid_background_clutter() {
        let m = qr("https://eth-drop.org");
        let mut frame = Frame::blank(220, 180);
        // Clutter stripes away from the symbol.
        for y in 0..180 {
            for x in 160..220 {
                frame.set(x, y, if (y / 3) % 2 == 0 { 0 } else { 255 });
            }
        }
        frame.paint_qr(&m, 5, 40, 2);
        let hits = scan_frame(&frame);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].payload, b"https://eth-drop.org");
    }

    #[test]
    fn reports_symbol_geometry() {
        let m = qr("geom");
        let mut frame = Frame::blank(100, 100);
        frame.paint_qr(&m, 20, 30, 1);
        let hits = scan_frame(&frame);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].symbol_size, m.size());
        // Origin is at the top-left of the symbol proper (after the
        // 4-module quiet zone).
        assert!((hits[0].left as isize - 24).abs() <= 1);
        assert!((hits[0].top as isize - 34).abs() <= 1);
    }

    #[test]
    fn two_qrs_in_one_frame() {
        let a = qr("https://first.com");
        let b = qr("https://second.org");
        let mut frame = Frame::blank(300, 120);
        frame.paint_qr(&a, 5, 5, 2);
        frame.paint_qr(&b, 160, 5, 2);
        let mut payloads: Vec<String> = scan_frame(&frame)
            .into_iter()
            .map(|h| String::from_utf8(h.payload).unwrap())
            .collect();
        payloads.sort();
        assert_eq!(payloads, ["https://first.com", "https://second.org"]);
    }
}
