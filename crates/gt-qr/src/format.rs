//! Format and version information BCH codes.
//!
//! Format info: 5 data bits (2 EC level + 3 mask) protected by BCH(15,5)
//! with generator 0x537, XOR-masked with 0x5412. Version info (v ≥ 7):
//! 6 data bits protected by BCH(18,6) with generator 0x1F25.

use crate::tables::EcLevel;

const FORMAT_GEN: u32 = 0x537;
const FORMAT_MASK: u16 = 0x5412;
const VERSION_GEN: u32 = 0x1f25;

/// Polynomial remainder of `value << (gen_degree)` by `gen` over GF(2).
fn bch_remainder(mut value: u32, gen: u32, total_bits: u32) -> u32 {
    let gen_degree = 31 - gen.leading_zeros();
    value <<= gen_degree;
    for i in (gen_degree..total_bits).rev() {
        if value & (1 << i) != 0 {
            value ^= gen << (i - gen_degree);
        }
    }
    value
}

/// The 15-bit format information for (level, mask), already XOR-masked.
pub fn encode_format(level: EcLevel, mask: u8) -> u16 {
    assert!(mask < 8);
    let data = (u32::from(level.format_bits()) << 3) | u32::from(mask);
    let rem = bch_remainder(data, FORMAT_GEN, 15);
    (((data << 10) | rem) as u16) ^ FORMAT_MASK
}

/// Decode a (possibly corrupted) 15-bit format word. Accepts up to 3 bit
/// errors by nearest-codeword search over the 32 valid words.
pub fn decode_format(raw: u16) -> Option<(EcLevel, u8)> {
    let mut best: Option<(u32, EcLevel, u8)> = None;
    for level in EcLevel::ALL {
        for mask in 0..8u8 {
            let valid = encode_format(level, mask);
            let distance = (valid ^ raw).count_ones();
            if best.is_none_or(|(d, _, _)| distance < d) {
                best = Some((distance, level, mask));
            }
        }
    }
    let (distance, level, mask) = best?;
    (distance <= 3).then_some((level, mask))
}

/// The 18-bit version information word for `version` (7..=40).
pub fn encode_version(version: u8) -> u32 {
    assert!((7..=40).contains(&version));
    let data = u32::from(version);
    let rem = bch_remainder(data, VERSION_GEN, 18);
    (data << 12) | rem
}

/// Decode a (possibly corrupted) 18-bit version word; accepts up to 3 bit
/// errors.
pub fn decode_version(raw: u32) -> Option<u8> {
    let mut best: Option<(u32, u8)> = None;
    for version in 7..=40u8 {
        let valid = encode_version(version);
        let distance = (valid ^ (raw & 0x3ffff)).count_ones();
        if best.is_none_or(|(d, _)| distance < d) {
            best = Some((distance, version));
        }
    }
    let (distance, version) = best?;
    (distance <= 3).then_some(version)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_format_words() {
        // From the QR specification appendix: level M (00), mask 5 →
        // 0x40CE after masking... the canonical published example is
        // level L mask 4 → 0x76C4? Pin instead to the widely-cited
        // example: format data 00101 (M, mask 5) has sequence
        // 100000011001110.
        assert_eq!(encode_format(EcLevel::M, 5), 0b100_0000_1100_1110);
        // And the all-zero data case (M, mask 0) equals the XOR mask
        // itself because BCH(0) = 0.
        assert_eq!(encode_format(EcLevel::M, 0), FORMAT_MASK);
    }

    #[test]
    fn format_round_trips() {
        for level in EcLevel::ALL {
            for mask in 0..8u8 {
                let word = encode_format(level, mask);
                assert_eq!(decode_format(word), Some((level, mask)));
            }
        }
    }

    #[test]
    fn format_words_pairwise_distance() {
        // BCH(15,5) with the QR mask has minimum distance 7 — any two
        // valid words differ in at least 7 bits, so 3-bit correction is
        // unambiguous.
        let words: Vec<u16> = EcLevel::ALL
            .iter()
            .flat_map(|&l| (0..8u8).map(move |m| encode_format(l, m)))
            .collect();
        for i in 0..words.len() {
            for j in i + 1..words.len() {
                assert!(
                    (words[i] ^ words[j]).count_ones() >= 7,
                    "{i} vs {j}: distance too small"
                );
            }
        }
    }

    #[test]
    fn format_corrects_up_to_three_errors() {
        let word = encode_format(EcLevel::Q, 3);
        for bits in [vec![0usize], vec![14], vec![0, 7], vec![1, 8, 13]] {
            let mut corrupted = word;
            for b in bits {
                corrupted ^= 1 << b;
            }
            assert_eq!(decode_format(corrupted), Some((EcLevel::Q, 3)));
        }
    }

    #[test]
    fn format_rejects_heavy_corruption() {
        let word = encode_format(EcLevel::L, 0);
        let corrupted = word ^ 0b1111; // 4 bit errors
                                       // Must not return the original pair (may return None or another
                                       // codeword's pair at distance <= 3 — with d_min 7, 4 errors land
                                       // strictly between codewords, so None).
        assert_eq!(decode_format(corrupted), None);
    }

    #[test]
    fn known_version_words() {
        // Published example: version 7 → 0x07C94.
        assert_eq!(encode_version(7), 0x07c94);
        // Version 8 → 0x085BC.
        assert_eq!(encode_version(8), 0x085bc);
    }

    #[test]
    fn version_round_trips_with_errors() {
        for v in 7..=10u8 {
            let word = encode_version(v);
            assert_eq!(decode_version(word), Some(v));
            assert_eq!(decode_version(word ^ 0b101), Some(v), "2-bit errors");
            assert_eq!(decode_version(word ^ (1 << 17)), Some(v), "MSB error");
        }
    }
}
