//! QR symbol structure tables (versions 1–10, byte mode).

/// Error-correction level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EcLevel {
    /// ~7% recovery.
    L,
    /// ~15% recovery.
    M,
    /// ~25% recovery.
    Q,
    /// ~30% recovery.
    H,
}

impl EcLevel {
    pub const ALL: [EcLevel; 4] = [EcLevel::L, EcLevel::M, EcLevel::Q, EcLevel::H];

    /// The two-bit indicator used in the format information.
    pub fn format_bits(self) -> u8 {
        match self {
            EcLevel::L => 0b01,
            EcLevel::M => 0b00,
            EcLevel::Q => 0b11,
            EcLevel::H => 0b10,
        }
    }

    pub fn from_format_bits(bits: u8) -> Option<EcLevel> {
        match bits {
            0b01 => Some(EcLevel::L),
            0b00 => Some(EcLevel::M),
            0b11 => Some(EcLevel::Q),
            0b10 => Some(EcLevel::H),
            _ => None,
        }
    }

    fn index(self) -> usize {
        match self {
            EcLevel::L => 0,
            EcLevel::M => 1,
            EcLevel::Q => 2,
            EcLevel::H => 3,
        }
    }
}

/// One group of identical RS blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGroup {
    /// Number of blocks in this group.
    pub count: usize,
    /// Data codewords per block.
    pub data_len: usize,
    /// Error-correction codewords per block.
    pub ec_len: usize,
}

/// Block structure for a (version, level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpec {
    pub groups: [Option<BlockGroup>; 2],
}

impl BlockSpec {
    /// Total data codewords.
    pub fn data_codewords(&self) -> usize {
        self.groups
            .iter()
            .flatten()
            .map(|g| g.count * g.data_len)
            .sum()
    }

    /// Total codewords (data + EC).
    pub fn total_codewords(&self) -> usize {
        self.groups
            .iter()
            .flatten()
            .map(|g| g.count * (g.data_len + g.ec_len))
            .sum()
    }

    /// Iterate over (data_len, ec_len) for every block, in block order.
    pub fn blocks(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.groups
            .iter()
            .flatten()
            .flat_map(|g| std::iter::repeat_n((g.data_len, g.ec_len), g.count))
    }
}

const fn one(count: usize, data_len: usize, ec_len: usize) -> BlockSpec {
    BlockSpec {
        groups: [
            Some(BlockGroup {
                count,
                data_len,
                ec_len,
            }),
            None,
        ],
    }
}

const fn two(c1: usize, d1: usize, c2: usize, d2: usize, ec_len: usize) -> BlockSpec {
    BlockSpec {
        groups: [
            Some(BlockGroup {
                count: c1,
                data_len: d1,
                ec_len,
            }),
            Some(BlockGroup {
                count: c2,
                data_len: d2,
                ec_len,
            }),
        ],
    }
}

/// Block structure table, indexed `[version-1][level]` (ISO/IEC 18004
/// Table 9, versions 1–10).
const BLOCKS: [[BlockSpec; 4]; 10] = [
    // v1 (26 codewords)
    [one(1, 19, 7), one(1, 16, 10), one(1, 13, 13), one(1, 9, 17)],
    // v2 (44)
    [
        one(1, 34, 10),
        one(1, 28, 16),
        one(1, 22, 22),
        one(1, 16, 28),
    ],
    // v3 (70)
    [
        one(1, 55, 15),
        one(1, 44, 26),
        one(2, 17, 18),
        one(2, 13, 22),
    ],
    // v4 (100)
    [
        one(1, 80, 20),
        one(2, 32, 18),
        one(2, 24, 26),
        one(4, 9, 16),
    ],
    // v5 (134)
    [
        one(1, 108, 26),
        one(2, 43, 24),
        two(2, 15, 2, 16, 18),
        two(2, 11, 2, 12, 22),
    ],
    // v6 (172)
    [
        one(2, 68, 18),
        one(4, 27, 16),
        one(4, 19, 24),
        one(4, 15, 28),
    ],
    // v7 (196)
    [
        one(2, 78, 20),
        one(4, 31, 18),
        two(2, 14, 4, 15, 18),
        two(4, 13, 1, 14, 26),
    ],
    // v8 (242)
    [
        one(2, 97, 24),
        two(2, 38, 2, 39, 22),
        two(4, 18, 2, 19, 22),
        two(4, 14, 2, 15, 26),
    ],
    // v9 (292)
    [
        one(2, 116, 30),
        two(3, 36, 2, 37, 22),
        two(4, 16, 4, 17, 20),
        two(4, 12, 4, 13, 24),
    ],
    // v10 (346)
    [
        two(2, 68, 2, 69, 18),
        two(4, 43, 1, 44, 26),
        two(6, 19, 2, 20, 24),
        two(6, 15, 2, 16, 28),
    ],
];

/// Total codewords per version (function-pattern-independent capacity).
pub const TOTAL_CODEWORDS: [usize; 10] = [26, 44, 70, 100, 134, 172, 196, 242, 292, 346];

/// Maximum supported version.
pub const MAX_VERSION: u8 = 10;

/// Block structure for a (version, level). Versions are 1-based.
pub fn block_spec(version: u8, level: EcLevel) -> BlockSpec {
    assert!(
        (1..=MAX_VERSION).contains(&version),
        "unsupported version {version}"
    );
    BLOCKS[(version - 1) as usize][level.index()]
}

/// Side length in modules for a version.
pub fn symbol_size(version: u8) -> usize {
    17 + 4 * version as usize
}

/// Version for a symbol side length, if valid.
pub fn version_for_size(size: usize) -> Option<u8> {
    if size < 21 || !(size - 17).is_multiple_of(4) {
        return None;
    }
    let v = ((size - 17) / 4) as u8;
    (v <= MAX_VERSION).then_some(v)
}

/// Alignment pattern centre coordinates per version.
pub fn alignment_positions(version: u8) -> &'static [usize] {
    match version {
        1 => &[],
        2 => &[6, 18],
        3 => &[6, 22],
        4 => &[6, 26],
        5 => &[6, 30],
        6 => &[6, 34],
        7 => &[6, 22, 38],
        8 => &[6, 24, 42],
        9 => &[6, 26, 46],
        10 => &[6, 28, 50],
        _ => panic!("unsupported version {version}"),
    }
}

/// Remainder bits after the last codeword for each version.
pub fn remainder_bits(version: u8) -> usize {
    match version {
        1 => 0,
        2..=6 => 7,
        7..=10 => 0,
        _ => panic!("unsupported version {version}"),
    }
}

/// Byte-mode character-count field width in bits.
pub fn byte_count_bits(version: u8) -> usize {
    if version <= 9 {
        8
    } else {
        16
    }
}

/// Byte-mode capacity in bytes for (version, level).
pub fn byte_capacity(version: u8, level: EcLevel) -> usize {
    let data_bits = block_spec(version, level).data_codewords() * 8;
    // mode indicator (4) + count field
    let overhead = 4 + byte_count_bits(version);
    data_bits.saturating_sub(overhead) / 8
}

/// Smallest version that fits `len` bytes at `level`.
pub fn smallest_version(len: usize, level: EcLevel) -> Option<u8> {
    (1..=MAX_VERSION).find(|&v| byte_capacity(v, level) >= len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_totals_match_symbol_capacity() {
        for v in 1..=MAX_VERSION {
            for level in EcLevel::ALL {
                let spec = block_spec(v, level);
                assert_eq!(
                    spec.total_codewords(),
                    TOTAL_CODEWORDS[(v - 1) as usize],
                    "v{v} {level:?}"
                );
            }
        }
    }

    #[test]
    fn data_codewords_decrease_with_ec_level() {
        for v in 1..=MAX_VERSION {
            let caps: Vec<usize> = EcLevel::ALL
                .iter()
                .map(|&l| block_spec(v, l).data_codewords())
                .collect();
            assert!(caps[0] > caps[1], "v{v} L > M");
            assert!(caps[1] > caps[2], "v{v} M > Q");
            assert!(caps[2] > caps[3], "v{v} Q > H");
        }
    }

    #[test]
    fn known_capacities() {
        // Published byte-mode capacities.
        assert_eq!(byte_capacity(1, EcLevel::L), 17);
        assert_eq!(byte_capacity(1, EcLevel::H), 7);
        assert_eq!(byte_capacity(2, EcLevel::M), 26);
        assert_eq!(byte_capacity(4, EcLevel::Q), 46);
        assert_eq!(byte_capacity(10, EcLevel::L), 271);
    }

    #[test]
    fn symbol_sizes() {
        assert_eq!(symbol_size(1), 21);
        assert_eq!(symbol_size(10), 57);
        assert_eq!(version_for_size(21), Some(1));
        assert_eq!(version_for_size(57), Some(10));
        assert_eq!(version_for_size(22), None);
        assert_eq!(version_for_size(17), None);
        assert_eq!(version_for_size(61), None, "v11 unsupported");
    }

    #[test]
    fn smallest_version_picks_minimal_fit() {
        assert_eq!(smallest_version(17, EcLevel::L), Some(1));
        assert_eq!(smallest_version(18, EcLevel::L), Some(2));
        assert_eq!(smallest_version(1000, EcLevel::L), None);
        // A typical scam URL (~40 chars) fits v3-M.
        let v = smallest_version(40, EcLevel::M).unwrap();
        assert!(v <= 4, "40-byte URL should fit a small symbol, got v{v}");
    }

    #[test]
    fn ec_format_bits_round_trip() {
        for level in EcLevel::ALL {
            assert_eq!(EcLevel::from_format_bits(level.format_bits()), Some(level));
        }
        assert_eq!(EcLevel::from_format_bits(0b100), None);
    }

    #[test]
    fn alignment_positions_fit_symbol() {
        for v in 1..=MAX_VERSION {
            let size = symbol_size(v);
            for &p in alignment_positions(v) {
                assert!(p + 2 < size, "v{v} alignment at {p} exceeds symbol");
            }
        }
    }
}
