//! GF(2⁸) arithmetic with the QR/Reed–Solomon polynomial x⁸+x⁴+x³+x²+1
//! (0x11D), generator α = 2.

/// Exponent table: `EXP[i] = α^i`, doubled so products index without a
/// modulo.
fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    for (i, e) in exp.iter_mut().enumerate().take(255) {
        *e = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11d;
        }
    }
    for i in 255..512 {
        exp[i] = exp[i - 255];
    }
    (exp, log)
}

/// Precomputed field tables.
pub struct Gf {
    exp: [u8; 512],
    log: [u8; 256],
}

impl Gf {
    pub fn new() -> Self {
        let (exp, log) = build_tables();
        Gf { exp, log }
    }

    /// α^i for i in 0..255 (wraps mod 255).
    pub fn exp(&self, i: usize) -> u8 {
        self.exp[i % 255]
    }

    /// log_α(x); panics on zero.
    pub fn log(&self, x: u8) -> usize {
        assert!(x != 0, "log of zero");
        self.log[x as usize] as usize
    }

    /// Field multiplication.
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Field division; panics on division by zero.
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero");
        if a == 0 {
            0
        } else {
            self.exp[255 + self.log[a as usize] as usize - self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    pub fn inv(&self, a: u8) -> u8 {
        self.div(1, a)
    }

    /// Evaluate polynomial `p` (highest-degree coefficient first) at `x`.
    pub fn poly_eval(&self, p: &[u8], x: u8) -> u8 {
        let mut y = 0u8;
        for &c in p {
            y = self.mul(y, x) ^ c;
        }
        y
    }

    /// Multiply polynomials (highest-degree first).
    pub fn poly_mul(&self, a: &[u8], b: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; a.len() + b.len() - 1];
        for (i, &ca) in a.iter().enumerate() {
            for (j, &cb) in b.iter().enumerate() {
                out[i + j] ^= self.mul(ca, cb);
            }
        }
        out
    }
}

impl Default for Gf {
    fn default() -> Self {
        Gf::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_inverse_of_each_other() {
        let gf = Gf::new();
        for x in 1..=255u8 {
            assert_eq!(gf.exp(gf.log(x)), x);
        }
        for i in 0..255usize {
            assert_eq!(gf.log(gf.exp(i)), i);
        }
    }

    #[test]
    fn known_powers_of_two() {
        let gf = Gf::new();
        assert_eq!(gf.exp(0), 1);
        assert_eq!(gf.exp(1), 2);
        assert_eq!(gf.exp(8), 29, "α⁸ = 0x1D after reduction");
    }

    #[test]
    fn mul_matches_russian_peasant() {
        // Cross-check table multiplication against carry-less reference.
        fn slow_mul(mut a: u16, mut b: u16) -> u8 {
            let mut p: u16 = 0;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= 0x11d;
                }
                b >>= 1;
            }
            p as u8
        }
        let gf = Gf::new();
        for a in (0..=255u16).step_by(7) {
            for b in (0..=255u16).step_by(11) {
                assert_eq!(gf.mul(a as u8, b as u8), slow_mul(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn div_inverts_mul() {
        let gf = Gf::new();
        for a in 1..=255u8 {
            for b in [1u8, 2, 3, 29, 128, 255] {
                assert_eq!(gf.div(gf.mul(a, b), b), a);
            }
        }
    }

    #[test]
    fn inv_is_self_consistent() {
        let gf = Gf::new();
        for a in 1..=255u8 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1);
        }
    }

    #[test]
    fn poly_eval_horner() {
        let gf = Gf::new();
        // p(x) = x² + 3x + 2 at x=1 is 1^2 ^ 3 ^ 2 = 0 (XOR arithmetic).
        assert_eq!(gf.poly_eval(&[1, 3, 2], 1), 1 ^ 3 ^ 2);
        // p(0) = constant term.
        assert_eq!(gf.poly_eval(&[7, 9, 42], 0), 42);
    }

    #[test]
    fn poly_mul_degree_adds() {
        let gf = Gf::new();
        let p = gf.poly_mul(&[1, 1], &[1, 2]); // (x+1)(x+2) = x² + 3x + 2
        assert_eq!(p, vec![1, 3, 2]);
    }
}
