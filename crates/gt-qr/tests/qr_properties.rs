//! Property tests for the QR stack: arbitrary payloads round-trip,
//! damage within the Reed–Solomon budget is corrected, and the frame
//! scanner finds symbols wherever they are painted.

use gt_qr::tables::{byte_capacity, MAX_VERSION};
use gt_qr::{decode, encode, scan_frame, EcLevel, Frame};
use proptest::prelude::*;

fn any_level() -> impl Strategy<Value = EcLevel> {
    prop_oneof![
        Just(EcLevel::L),
        Just(EcLevel::M),
        Just(EcLevel::Q),
        Just(EcLevel::H),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_payloads_round_trip(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        level in any_level(),
    ) {
        prop_assume!(payload.len() <= byte_capacity(MAX_VERSION, level));
        let matrix = encode(&payload, level).unwrap();
        prop_assert_eq!(decode(&matrix).unwrap(), payload);
    }

    #[test]
    fn damage_within_half_ec_budget_is_corrected(
        payload in proptest::collection::vec(any::<u8>(), 5..40),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let matrix = encode(&payload, EcLevel::H).unwrap();
        let mut damaged = matrix.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Level H corrects ~30% of codewords; flipping a few scattered
        // data modules stays safely inside the budget.
        let size = damaged.size();
        let mut flipped = 0;
        while flipped < 6 {
            let r = rng.gen_range(0..size);
            let c = rng.gen_range(0..size);
            if !damaged.is_function(r, c) {
                let v = damaged.get(r, c);
                damaged.set(r, c, !v);
                flipped += 1;
            }
        }
        prop_assert_eq!(decode(&damaged).unwrap(), payload);
    }

    #[test]
    fn decode_never_returns_wrong_payload(
        payload in proptest::collection::vec(any::<u8>(), 5..40),
        flips in 1usize..80,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        // Whatever the damage, decode must either fail or return the
        // original payload — never silently corrupt data.
        let matrix = encode(&payload, EcLevel::M).unwrap();
        let mut damaged = matrix.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let size = damaged.size();
        for _ in 0..flips {
            let r = rng.gen_range(0..size);
            let c = rng.gen_range(0..size);
            if !damaged.is_function(r, c) {
                let v = damaged.get(r, c);
                damaged.set(r, c, !v);
            }
        }
        if let Ok(decoded) = decode(&damaged) {
            prop_assert_eq!(decoded, payload);
        }
    }

    #[test]
    fn scanner_finds_symbol_at_any_position(
        payload in "[a-z0-9:/.\\-]{8,60}",
        left in 0usize..80,
        top in 0usize..40,
        scale in 1usize..4,
    ) {
        let matrix = encode(payload.as_bytes(), EcLevel::M).unwrap();
        let span = matrix.size() * scale + 8 * scale;
        let mut frame = Frame::blank(left + span + 10, top + span + 10);
        frame.paint_qr(&matrix, left, top, scale);
        let hits = scan_frame(&frame);
        prop_assert_eq!(hits.len(), 1, "exactly one symbol");
        prop_assert_eq!(&hits[0].payload, &payload.as_bytes().to_vec());
    }

    #[test]
    fn scanner_has_no_false_positives_on_noise(
        seed in any::<u64>(),
        density in 1u32..6,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut frame = Frame::blank(160, 120);
        for y in 0..frame.height {
            for x in 0..frame.width {
                if rng.gen_ratio(density, 10) {
                    frame.set(x, y, 0);
                }
            }
        }
        prop_assert!(scan_frame(&frame).is_empty());
    }
}
