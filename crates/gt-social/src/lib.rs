//! Social-platform simulators: Twitter, YouTube, Twitch.
//!
//! The paper draws on three platform surfaces:
//!
//! * a **Twitter snapshot** (Google's crawl of public tweets) queried
//!   retrospectively for tweets containing known scam domains
//!   ([`twitter::TwitterSnapshot`]);
//! * the **YouTube Data API**: keyword search over livestreams, stream
//!   metadata (concurrent/total viewers), channel metadata (subscriber
//!   counts), chat history capped at 70 messages, and the stream video
//!   itself recorded via Streamlink ([`youtube::YouTube`]);
//! * the **Twitch Helix API**: list *all* live streams (no keyword
//!   filter), stream tags/categories, and a chat with **no** history —
//!   messages are only observable while the stream is live
//!   ([`twitch::Twitch`]).
//!
//! All state is generated up front by `gt-world`; queries are
//! parameterised by virtual time (`now`), which keeps monitoring runs
//! deterministic. API call counts are tracked so the pipeline's quota
//! behaviour (poll cadences from the paper) can be audited in tests.

pub mod twitch;
pub mod twitter;
pub mod youtube;

pub use twitch::{Twitch, TwitchStream, TwitchStreamId};
pub use twitter::{Tweet, TweetId, TwitterAccountId, TwitterSnapshot};
pub use youtube::{
    ChannelId, ChatMessage, LiveStream, LiveStreamId, StreamVideo, ViewerCurve, YouTube,
};
