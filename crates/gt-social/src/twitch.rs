//! The Twitch platform model and Helix-API surface.
//!
//! Differences from YouTube that the paper's Appendix B.1 works around:
//!
//! * the API returns **all** live streams (no server-side keyword
//!   search) — the pipeline must filter client-side on title/tags and
//!   drop game categories;
//! * chat has **no history endpoint** — messages are only observable
//!   while polling a live stream;
//! * a ~15-second advertisement clip precedes stream content, so
//!   recordings shorter than that may capture no content frames.

use crate::youtube::{ChatMessage, StreamVideo, ViewerCurve};
use gt_qr::{encode, EcLevel, Frame};
use gt_sim::faults::{CheckedCall, Denied, Substrate};
use gt_sim::{SimDuration, SimTime};
use gt_store::{StoreDecode, StoreEncode};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Seconds of advertisement inserted before stream content.
pub const AD_SECONDS: i64 = 15;

#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub struct TwitchStreamId(pub u64);

/// A Twitch stream.
#[derive(Debug, Clone, PartialEq, StoreEncode, StoreDecode)]
pub struct TwitchStream {
    pub id: TwitchStreamId,
    pub channel_name: String,
    pub title: String,
    pub tags: Vec<String>,
    /// Twitch category, e.g. "Just Chatting", "Fortnite", "Crypto".
    pub category: String,
    pub start: SimTime,
    pub end: SimTime,
    pub video: StreamVideo,
    pub viewers: ViewerCurve,
    pub chat: Vec<ChatMessage>,
}

impl TwitchStream {
    pub fn is_live(&self, now: SimTime) -> bool {
        self.start <= now && now < self.end
    }
}

/// Per-endpoint call counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, StoreEncode, StoreDecode)]
pub struct TwitchApiCalls {
    pub get_streams: u64,
    pub record: u64,
    pub chat_poll: u64,
}

/// The Twitch platform.
#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct Twitch {
    streams: Vec<TwitchStream>,
    calls: Mutex<TwitchApiCalls>,
}

impl Twitch {
    pub fn new() -> Self {
        Twitch::default()
    }

    pub fn add_stream(&mut self, mut stream: TwitchStream) -> TwitchStreamId {
        let id = TwitchStreamId(self.streams.len() as u64);
        stream.id = id;
        assert!(stream.start < stream.end);
        self.streams.push(stream);
        id
    }

    pub fn stream(&self, id: TwitchStreamId) -> &TwitchStream {
        &self.streams[id.0 as usize]
    }

    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    pub fn api_calls(&self) -> TwitchApiCalls {
        *self.calls.lock()
    }

    /// All streams live at `now` (the Helix "get streams" endpoint; no
    /// keyword filtering server-side).
    pub fn get_streams(&self, now: SimTime) -> Vec<&TwitchStream> {
        self.calls.lock().get_streams += 1;
        self.streams.iter().filter(|s| s.is_live(now)).collect()
    }

    /// Record `duration` starting at `now`. The first [`AD_SECONDS`]
    /// seconds after the recording starts show an advertisement (no
    /// stream content, no QR).
    pub fn record(&self, id: TwitchStreamId, now: SimTime, duration: SimDuration) -> Vec<Frame> {
        self.calls.lock().record += 1;
        let Some(s) = self.streams.get(id.0 as usize) else {
            return Vec::new();
        };
        let mut frames = Vec::new();
        for i in 0..duration.as_seconds().max(1) {
            let at = now + SimDuration::seconds(i);
            if !s.is_live(at) {
                break;
            }
            if i < AD_SECONDS {
                frames.push(ad_frame());
            } else {
                frames.push(content_frame(s, at));
            }
        }
        frames
    }

    /// Chat messages in `(since, now]`; only available while live
    /// (Twitch has no chat history API).
    pub fn chat_since(&self, id: TwitchStreamId, since: SimTime, now: SimTime) -> Vec<ChatMessage> {
        self.calls.lock().chat_poll += 1;
        let Some(s) = self.streams.get(id.0 as usize) else {
            return Vec::new();
        };
        if !s.is_live(now) {
            return Vec::new();
        }
        s.chat
            .iter()
            .filter(|m| m.time > since && m.time <= now)
            .cloned()
            .collect()
    }

    // ---- gated variants (see the YouTube counterparts) ----

    /// [`Twitch::get_streams`] behind a checked-call gate.
    pub fn get_streams_gated<G: CheckedCall>(
        &self,
        now: SimTime,
        gate: &mut G,
    ) -> Result<Vec<&TwitchStream>, Denied> {
        gate.checked_counted(Substrate::TwitchList, now, || {
            let streams = self.get_streams(now);
            let n = streams.len() as u64;
            (streams, n)
        })
    }

    /// [`Twitch::record`] behind a checked-call gate. Recording rides
    /// the chat/IRC substrate: both are per-stream taps, distinct from
    /// the Helix listing quota.
    pub fn record_gated<G: CheckedCall>(
        &self,
        id: TwitchStreamId,
        now: SimTime,
        duration: SimDuration,
        gate: &mut G,
    ) -> Result<Vec<Frame>, Denied> {
        gate.checked_counted(Substrate::TwitchChat, now, || {
            let frames = self.record(id, now, duration);
            let n = frames.len() as u64;
            (frames, n)
        })
    }

    /// [`Twitch::chat_since`] behind a checked-call gate.
    pub fn chat_since_gated<G: CheckedCall>(
        &self,
        id: TwitchStreamId,
        since: SimTime,
        now: SimTime,
        gate: &mut G,
    ) -> Result<Vec<ChatMessage>, Denied> {
        gate.checked_counted(Substrate::TwitchChat, now, || {
            let messages = self.chat_since(id, since, now);
            let n = messages.len() as u64;
            (messages, n)
        })
    }
}

const FRAME_W: usize = 320;
const FRAME_H: usize = 240;

fn ad_frame() -> Frame {
    // A mid-gray card: no QR, recognisably not content.
    let mut frame = Frame::blank(FRAME_W, FRAME_H);
    for y in 80..160 {
        for x in 60..260 {
            frame.set(x, y, 100);
        }
    }
    frame
}

fn content_frame(stream: &TwitchStream, at: SimTime) -> Frame {
    let mut frame = Frame::blank(FRAME_W, FRAME_H);
    if let StreamVideo::ScamLoop {
        qr_url, qr_scale, ..
    } = &stream.video
    {
        let _ = at;
        if let Ok(matrix) = encode(qr_url.as_bytes(), EcLevel::M) {
            let scale = (*qr_scale).max(1);
            let span = matrix.size() * scale + 8 * scale;
            if span + 10 <= FRAME_W.min(FRAME_H) {
                frame.paint_qr(&matrix, FRAME_W - span - 5, FRAME_H - span - 5, scale);
            }
        }
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_qr::scan_frame;

    fn t(s: i64) -> SimTime {
        SimTime(1_688_169_600 + s) // 2023-07-01 (the pilot window)
    }

    fn gaming_stream() -> TwitchStream {
        TwitchStream {
            id: TwitchStreamId(0),
            channel_name: "speedrunner99".into(),
            title: "casual runs".into(),
            tags: vec!["gaming".into()],
            category: "Fortnite".into(),
            start: t(0),
            end: t(7200),
            video: StreamVideo::Benign,
            viewers: ViewerCurve {
                peak_concurrent: 120,
                total_views: 900,
            },
            chat: vec![],
        }
    }

    #[test]
    fn get_streams_returns_all_live() {
        let mut tw = Twitch::new();
        tw.add_stream(gaming_stream());
        let mut other = gaming_stream();
        other.start = t(10_000);
        other.end = t(20_000);
        tw.add_stream(other);
        assert_eq!(tw.get_streams(t(100)).len(), 1);
        assert_eq!(tw.get_streams(t(12_000)).len(), 1);
        assert_eq!(tw.get_streams(t(8_000)).len(), 0);
    }

    #[test]
    fn recording_starts_with_ad() {
        let mut tw = Twitch::new();
        let mut s = gaming_stream();
        s.video = StreamVideo::ScamLoop {
            qr_url: "https://btc-2x.fund".into(),
            qr_duty_cycle: None,
            qr_scale: 2,
        };
        let id = tw.add_stream(s);
        // A 10-second recording is all advertisement: no QR captured.
        let frames = tw.record(id, t(100), SimDuration::seconds(10));
        assert_eq!(frames.len(), 10);
        assert!(frames.iter().all(|f| scan_frame(f).is_empty()));
        // A 20-second recording reaches content (the paper's fix).
        let frames = tw.record(id, t(100), SimDuration::seconds(20));
        assert!(frames[frames.len() - 1..]
            .iter()
            .any(|f| !scan_frame(f).is_empty()));
    }

    #[test]
    fn chat_has_no_history_after_end() {
        let mut tw = Twitch::new();
        let mut s = gaming_stream();
        s.chat = vec![ChatMessage {
            time: t(50),
            author: "a".into(),
            text: "hello".into(),
        }];
        let id = tw.add_stream(s);
        assert_eq!(tw.chat_since(id, t(0), t(100)).len(), 1);
        // After the stream ends, nothing is retrievable.
        assert!(tw.chat_since(id, t(0), t(8000)).is_empty());
        // Interval filtering.
        assert!(tw.chat_since(id, t(60), t(100)).is_empty());
    }

    #[test]
    fn call_counters() {
        let mut tw = Twitch::new();
        let id = tw.add_stream(gaming_stream());
        tw.get_streams(t(0));
        tw.record(id, t(0), SimDuration::seconds(2));
        tw.chat_since(id, t(0), t(10));
        let calls = tw.api_calls();
        assert_eq!(
            (calls.get_streams, calls.record, calls.chat_poll),
            (1, 1, 1)
        );
    }
}
