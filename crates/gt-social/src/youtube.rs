//! The YouTube platform model and Data-API surface.
//!
//! Streams, channels, chats and video tracks are generated up front by
//! the world; every API method takes `now` so a monitoring run can replay
//! the platform at any virtual instant. Call counts per endpoint are
//! recorded for quota audits.

use gt_qr::{encode, EcLevel, Frame, Matrix};
use gt_sim::faults::{CheckedCall, Denied, Substrate};
use gt_sim::{SimDuration, SimTime};
use gt_store::{StoreDecode, StoreEncode};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Maximum chat messages returned per history call (YouTube's cap).
pub const CHAT_HISTORY_LIMIT: usize = 70;

#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub struct ChannelId(pub u64);

#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub struct LiveStreamId(pub u64);

/// A YouTube channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct Channel {
    pub id: ChannelId,
    pub name: String,
    pub subscribers: u64,
}

/// A timestamped chat message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct ChatMessage {
    pub time: SimTime,
    pub author: String,
    pub text: String,
}

/// What the video track shows.
#[derive(Debug, Clone, PartialEq, StoreEncode, StoreDecode)]
pub enum StreamVideo {
    /// Ordinary content; frames carry no QR code.
    Benign,
    /// A looping pre-recorded scam video with a QR overlay.
    ScamLoop {
        /// URL encoded in the QR code.
        qr_url: String,
        /// If set, the QR is only visible periodically: (visible,
        /// hidden) second spans, repeating from stream start. `None`
        /// means continuously visible (the common case the pilot study
        /// found).
        qr_duty_cycle: Option<(i64, i64)>,
        /// Pixels per module when painted into a frame.
        qr_scale: usize,
    },
}

/// How many viewers a stream has over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct ViewerCurve {
    /// Peak concurrent viewers.
    pub peak_concurrent: u64,
    /// Total views accumulated by stream end.
    pub total_views: u64,
}

impl ViewerCurve {
    /// Concurrent viewers at a fraction `f` in `[0, 1]` of the stream's
    /// lifetime (triangular ramp: up to the peak at 60%, then decay).
    pub fn concurrent_at(&self, f: f64) -> u64 {
        let f = f.clamp(0.0, 1.0);
        let shape = if f <= 0.6 { f / 0.6 } else { (1.0 - f) / 0.4 };
        (self.peak_concurrent as f64 * shape).round() as u64
    }

    /// Total views accumulated by fraction `f` of the lifetime.
    pub fn views_by(&self, f: f64) -> u64 {
        (self.total_views as f64 * f.clamp(0.0, 1.0)).round() as u64
    }
}

/// A livestream with its full (pre-generated) history.
#[derive(Debug, Clone, PartialEq, StoreEncode, StoreDecode)]
pub struct LiveStream {
    pub id: LiveStreamId,
    pub channel: ChannelId,
    pub title: String,
    pub description: String,
    /// BCP-47-ish language tag, e.g. "en", "es".
    pub language: String,
    /// Topics the search backend associates with the stream beyond its
    /// literal text (YouTube search returns streams "associated with"
    /// keywords, not only textual matches — Appendix B.2 finds 45% of
    /// returned streams contain no search keyword verbatim).
    pub fuzzy_topics: Vec<String>,
    pub start: SimTime,
    pub end: SimTime,
    pub video: StreamVideo,
    pub viewers: ViewerCurve,
    /// All chat messages over the stream's lifetime, time-ordered.
    pub chat: Vec<ChatMessage>,
}

impl LiveStream {
    pub fn is_live(&self, now: SimTime) -> bool {
        self.start <= now && now < self.end
    }

    fn lifetime_fraction(&self, now: SimTime) -> f64 {
        let total = (self.end - self.start).as_seconds().max(1);
        ((now - self.start).as_seconds() as f64 / total as f64).clamp(0.0, 1.0)
    }

    /// Whether the QR overlay is visible at `now`.
    pub fn qr_visible(&self, now: SimTime) -> bool {
        match &self.video {
            StreamVideo::Benign => false,
            StreamVideo::ScamLoop { qr_duty_cycle, .. } => match qr_duty_cycle {
                None => true,
                Some((on, off)) => {
                    let period = on + off;
                    let offset = (now - self.start).as_seconds().rem_euclid(period.max(1));
                    offset < *on
                }
            },
        }
    }
}

/// Per-endpoint API call counters.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub struct ApiCallCounts {
    pub search: u64,
    pub stream_details: u64,
    pub channel_details: u64,
    pub chat_history: u64,
    pub record: u64,
}

/// The YouTube platform.
/// Lazily built (start, id) rows sorted by start time, plus the maximum
/// stream duration, so `live_at` queries touch only plausible candidates
/// instead of scanning the whole population on every poll.
type LiveIndex = (Vec<(SimTime, LiveStreamId)>, SimDuration);

#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct YouTube {
    channels: Vec<Channel>,
    streams: Vec<LiveStream>,
    calls: Mutex<ApiCallCounts>,
    /// Derived acceleration structure; rebuilt lazily on first `live_at`
    /// query, so it is excluded from snapshots.
    #[store(skip)]
    live_index: Mutex<Option<LiveIndex>>,
}

/// A search result row (what the search endpoint exposes).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    pub stream: LiveStreamId,
    pub channel: ChannelId,
    pub title: String,
}

impl YouTube {
    pub fn new() -> Self {
        YouTube::default()
    }

    // ---- world-building (not part of the public API surface) ----

    pub fn add_channel(&mut self, name: String, subscribers: u64) -> ChannelId {
        let id = ChannelId(self.channels.len() as u64);
        self.channels.push(Channel {
            id,
            name,
            subscribers,
        });
        id
    }

    pub fn add_stream(&mut self, mut stream: LiveStream) -> LiveStreamId {
        let id = LiveStreamId(self.streams.len() as u64);
        stream.id = id;
        assert!(
            stream.start < stream.end,
            "stream must have positive duration"
        );
        assert!(
            (stream.channel.0 as usize) < self.channels.len(),
            "unknown channel"
        );
        self.streams.push(stream);
        *self.live_index.lock() = None;
        id
    }

    /// Ids of streams live at `now` (index-accelerated).
    pub fn live_at(&self, now: SimTime) -> Vec<LiveStreamId> {
        let mut index = self.live_index.lock();
        let (by_start, max_duration) = index.get_or_insert_with(|| {
            let mut by_start: Vec<(SimTime, LiveStreamId)> =
                self.streams.iter().map(|s| (s.start, s.id)).collect();
            by_start.sort();
            let max_duration = self
                .streams
                .iter()
                .map(|s| s.end - s.start)
                .max()
                .unwrap_or(SimDuration::ZERO);
            (by_start, max_duration)
        });
        // Candidates: streams starting in (now - max_duration, now].
        let lo = by_start.partition_point(|&(start, _)| start <= now - *max_duration);
        let hi = by_start.partition_point(|&(start, _)| start <= now);
        by_start[lo..hi]
            .iter()
            .filter(|&&(_, id)| self.streams[id.0 as usize].is_live(now))
            .map(|&(_, id)| id)
            .collect()
    }

    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Direct (non-API) access for ground-truth evaluation.
    pub fn stream(&self, id: LiveStreamId) -> &LiveStream {
        &self.streams[id.0 as usize]
    }

    pub fn streams(&self) -> &[LiveStream] {
        &self.streams
    }

    pub fn api_calls(&self) -> ApiCallCounts {
        *self.calls.lock()
    }

    // ---- the API surface the pipeline uses ----

    /// Keyword search over live streams: returns streams live at `now`
    /// whose title, description or channel name matches any keyword
    /// (whole-word, case-insensitive) — the filtering the YouTube API
    /// performs server-side.
    pub fn search_live(&self, keywords: &gt_text::KeywordSet, now: SimTime) -> Vec<SearchHit> {
        self.calls.lock().search += 1;
        self.live_at(now)
            .into_iter()
            .map(|id| &self.streams[id.0 as usize])
            .filter(|s| {
                let channel_name = &self.channels[s.channel.0 as usize].name;
                keywords.matches(&s.title)
                    || keywords.matches(&s.description)
                    || keywords.matches(channel_name)
                    || s.fuzzy_topics.iter().any(|t| keywords.matches(t))
            })
            .map(|s| SearchHit {
                stream: s.id,
                channel: s.channel,
                title: s.title.clone(),
            })
            .collect()
    }

    /// Stream metadata at `now` (concurrent and total viewers); `None`
    /// if the stream is not live.
    pub fn stream_details(&self, id: LiveStreamId, now: SimTime) -> Option<(u64, u64)> {
        self.calls.lock().stream_details += 1;
        let s = self.streams.get(id.0 as usize)?;
        if !s.is_live(now) {
            return None;
        }
        let f = s.lifetime_fraction(now);
        Some((s.viewers.concurrent_at(f), s.viewers.views_by(f)))
    }

    /// Channel metadata (subscriber count).
    pub fn channel_details(&self, id: ChannelId) -> Option<Channel> {
        self.calls.lock().channel_details += 1;
        self.channels.get(id.0 as usize).cloned()
    }

    /// The last [`CHAT_HISTORY_LIMIT`] chat messages posted at or before
    /// `now`. Empty if the stream is not live.
    pub fn chat_history(&self, id: LiveStreamId, now: SimTime) -> Vec<ChatMessage> {
        self.calls.lock().chat_history += 1;
        let Some(s) = self.streams.get(id.0 as usize) else {
            return Vec::new();
        };
        if !s.is_live(now) {
            return Vec::new();
        }
        let visible: Vec<ChatMessage> = s.chat.iter().filter(|m| m.time <= now).cloned().collect();
        let skip = visible.len().saturating_sub(CHAT_HISTORY_LIMIT);
        visible.into_iter().skip(skip).collect()
    }

    /// Record `duration` of the stream's video starting at `now`,
    /// returning one sampled frame per second. Empty if not live.
    ///
    /// This is the Streamlink step: the monitoring pipeline records two
    /// seconds at a time.
    pub fn record(&self, id: LiveStreamId, now: SimTime, duration: SimDuration) -> Vec<Frame> {
        self.calls.lock().record += 1;
        let Some(s) = self.streams.get(id.0 as usize) else {
            return Vec::new();
        };
        let mut frames = Vec::new();
        let seconds = duration.as_seconds().max(1);
        for i in 0..seconds {
            let at = now + SimDuration::seconds(i);
            if !s.is_live(at) {
                break;
            }
            frames.push(render_frame(s, at));
        }
        frames
    }

    // ---- gated variants of the API surface ----
    //
    // Each routes through a [`CheckedCall`] gate, which consults its
    // `FaultPlan` before answering (retrying transients inside its
    // budget) and, for observing gates, records per-call telemetry.
    // `Err(Denied)` means the poll was shed. A successful call serves
    // data as of `now` even when retries delayed it (snapshot
    // semantics), so a faulty run observes a strict subset of a clean
    // run.

    /// [`YouTube::search_live`] behind a checked-call gate.
    pub fn search_live_gated<G: CheckedCall>(
        &self,
        keywords: &gt_text::KeywordSet,
        now: SimTime,
        gate: &mut G,
    ) -> Result<Vec<SearchHit>, Denied> {
        gate.checked_counted(Substrate::YoutubeSearch, now, || {
            let hits = self.search_live(keywords, now);
            let n = hits.len() as u64;
            (hits, n)
        })
    }

    /// [`YouTube::stream_details`] behind a checked-call gate.
    pub fn stream_details_gated<G: CheckedCall>(
        &self,
        id: LiveStreamId,
        now: SimTime,
        gate: &mut G,
    ) -> Result<Option<(u64, u64)>, Denied> {
        gate.checked_counted(Substrate::YoutubeDetails, now, || {
            let details = self.stream_details(id, now);
            let n = details.is_some() as u64;
            (details, n)
        })
    }

    /// [`YouTube::chat_history`] behind a checked-call gate.
    pub fn chat_history_gated<G: CheckedCall>(
        &self,
        id: LiveStreamId,
        now: SimTime,
        gate: &mut G,
    ) -> Result<Vec<ChatMessage>, Denied> {
        gate.checked_counted(Substrate::YoutubeChat, now, || {
            let messages = self.chat_history(id, now);
            let n = messages.len() as u64;
            (messages, n)
        })
    }

    /// [`YouTube::record`] behind a checked-call gate.
    pub fn record_gated<G: CheckedCall>(
        &self,
        id: LiveStreamId,
        now: SimTime,
        duration: SimDuration,
        gate: &mut G,
    ) -> Result<Vec<Frame>, Denied> {
        gate.checked_counted(Substrate::YoutubeRecord, now, || {
            let frames = self.record(id, now, duration);
            let n = frames.len() as u64;
            (frames, n)
        })
    }
}

/// Frame geometry used by the simulated video track.
const FRAME_W: usize = 320;
const FRAME_H: usize = 240;

fn render_frame(stream: &LiveStream, at: SimTime) -> Frame {
    let mut frame = Frame::blank(FRAME_W, FRAME_H);
    // A bit of deterministic "video content" texture in the top half so
    // frames are not trivially blank.
    let phase = (at - stream.start).as_seconds() as usize;
    for y in 0..40 {
        for x in 0..FRAME_W {
            if (x + y * 3 + phase).is_multiple_of(11) {
                frame.set(x, y, 40);
            }
        }
    }
    if let StreamVideo::ScamLoop {
        qr_url, qr_scale, ..
    } = &stream.video
    {
        if stream.qr_visible(at) {
            if let Ok(matrix) = encode(qr_url.as_bytes(), EcLevel::M) {
                let scale = (*qr_scale).max(1);
                let span = matrix.size() * scale + 8 * scale;
                if span + 10 <= FRAME_W && span + 50 <= FRAME_H {
                    frame.paint_qr(&matrix, FRAME_W - span - 5, FRAME_H - span - 5, scale);
                } else {
                    // Fall back to scale 1 in a corner.
                    let span1 = matrix.size() + 8;
                    frame.paint_qr(&matrix, FRAME_W - span1 - 2, FRAME_H - span1 - 2, 1);
                }
            }
        }
    }
    frame
}

/// Render the QR matrix a stream would show (test helper / Figure 2).
pub fn stream_qr_matrix(stream: &LiveStream) -> Option<Matrix> {
    match &stream.video {
        StreamVideo::ScamLoop { qr_url, .. } => encode(qr_url.as_bytes(), EcLevel::M).ok(),
        StreamVideo::Benign => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_qr::scan_frame;
    use gt_text::KeywordSet;

    fn t(s: i64) -> SimTime {
        SimTime(1_690_156_800 + s) // 2023-07-24
    }

    fn platform_with_scam_stream() -> (YouTube, LiveStreamId) {
        let mut yt = YouTube::new();
        let ch = yt.add_channel("Crypto News 24/7".into(), 16_800);
        let id = yt.add_stream(LiveStream {
            id: LiveStreamId(0),
            channel: ch,
            title: "Brad Garlinghouse: 50,000,000 XRP giveaway LIVE".into(),
            description: "scan the QR to participate".into(),
            language: "en".into(),
            fuzzy_topics: vec![],
            start: t(0),
            end: t(7200),
            video: StreamVideo::ScamLoop {
                qr_url: "https://xrp-2x.live/claim".into(),
                qr_duty_cycle: None,
                qr_scale: 2,
            },
            viewers: ViewerCurve {
                peak_concurrent: 900,
                total_views: 12_000,
            },
            chat: vec![ChatMessage {
                time: t(100),
                author: "mod".into(),
                text: "participate now: https://xrp-2x.live/claim".into(),
            }],
        });
        (yt, id)
    }

    #[test]
    fn search_matches_title_keywords_only_while_live() {
        let (yt, _) = platform_with_scam_stream();
        let kw = KeywordSet::new(["xrp", "bitcoin"]);
        assert_eq!(yt.search_live(&kw, t(100)).len(), 1);
        assert!(yt.search_live(&kw, t(-100)).is_empty(), "before start");
        assert!(yt.search_live(&kw, t(7300)).is_empty(), "after end");
        let other = KeywordSet::new(["dogecoin"]);
        assert!(yt.search_live(&other, t(100)).is_empty());
    }

    #[test]
    fn search_matches_channel_name() {
        let (yt, _) = platform_with_scam_stream();
        let kw = KeywordSet::new(["crypto"]);
        assert_eq!(yt.search_live(&kw, t(100)).len(), 1);
    }

    #[test]
    fn stream_details_report_viewer_curve() {
        let (yt, id) = platform_with_scam_stream();
        let (conc_early, views_early) = yt.stream_details(id, t(60)).unwrap();
        let (conc_peak, views_peak) = yt.stream_details(id, t(4320)).unwrap(); // 60% point
        assert!(conc_peak > conc_early);
        assert!(views_peak > views_early);
        assert_eq!(conc_peak, 900);
        assert!(yt.stream_details(id, t(9999)).is_none());
    }

    #[test]
    fn chat_history_caps_at_limit() {
        let mut yt = YouTube::new();
        let ch = yt.add_channel("c".into(), 10);
        let chat: Vec<ChatMessage> = (0..100)
            .map(|i| ChatMessage {
                time: t(i),
                author: format!("u{i}"),
                text: format!("m{i}"),
            })
            .collect();
        let id = yt.add_stream(LiveStream {
            id: LiveStreamId(0),
            channel: ch,
            title: "t".into(),
            description: String::new(),
            language: "en".into(),
            fuzzy_topics: vec![],
            start: t(0),
            end: t(1000),
            video: StreamVideo::Benign,
            viewers: ViewerCurve {
                peak_concurrent: 5,
                total_views: 10,
            },
            chat,
        });
        let history = yt.chat_history(id, t(500));
        assert_eq!(history.len(), CHAT_HISTORY_LIMIT);
        assert_eq!(history.last().unwrap().text, "m99");
        assert_eq!(history[0].text, "m30");
        // Earlier in the stream, fewer messages exist.
        assert_eq!(yt.chat_history(id, t(10)).len(), 11);
    }

    #[test]
    fn recorded_frames_contain_scannable_qr() {
        let (yt, id) = platform_with_scam_stream();
        let frames = yt.record(id, t(300), SimDuration::seconds(2));
        assert_eq!(frames.len(), 2);
        let hits = scan_frame(&frames[0]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].payload, b"https://xrp-2x.live/claim");
    }

    #[test]
    fn benign_stream_frames_have_no_qr() {
        let mut yt = YouTube::new();
        let ch = yt.add_channel("just chatting".into(), 100);
        let id = yt.add_stream(LiveStream {
            id: LiveStreamId(0),
            channel: ch,
            title: "bitcoin market analysis".into(),
            description: String::new(),
            language: "en".into(),
            fuzzy_topics: vec![],
            start: t(0),
            end: t(3600),
            video: StreamVideo::Benign,
            viewers: ViewerCurve {
                peak_concurrent: 50,
                total_views: 400,
            },
            chat: vec![],
        });
        let frames = yt.record(id, t(60), SimDuration::seconds(2));
        assert_eq!(frames.len(), 2);
        assert!(scan_frame(&frames[0]).is_empty());
    }

    #[test]
    fn periodic_qr_duty_cycle() {
        let mut yt = YouTube::new();
        let ch = yt.add_channel("c".into(), 10);
        let id = yt.add_stream(LiveStream {
            id: LiveStreamId(0),
            channel: ch,
            title: "eth".into(),
            description: String::new(),
            language: "en".into(),
            fuzzy_topics: vec![],
            start: t(0),
            end: t(3600),
            video: StreamVideo::ScamLoop {
                qr_url: "https://eth-x2.org".into(),
                qr_duty_cycle: Some((15, 285)), // 15s visible per 5 min
                qr_scale: 2,
            },
            viewers: ViewerCurve {
                peak_concurrent: 10,
                total_views: 50,
            },
            chat: vec![],
        });
        let s = yt.stream(id);
        assert!(s.qr_visible(t(5)));
        assert!(!s.qr_visible(t(20)));
        assert!(s.qr_visible(t(305)));
        // Recording during the hidden window sees nothing.
        let frames = yt.record(id, t(100), SimDuration::seconds(2));
        assert!(scan_frame(&frames[0]).is_empty());
        // Recording during the visible window sees the QR.
        let frames = yt.record(id, t(2), SimDuration::seconds(2));
        assert_eq!(scan_frame(&frames[0]).len(), 1);
    }

    #[test]
    fn recording_stops_at_stream_end() {
        let (yt, id) = platform_with_scam_stream();
        let frames = yt.record(id, t(7199), SimDuration::seconds(5));
        assert_eq!(frames.len(), 1, "only one second remained");
    }

    #[test]
    fn api_calls_are_counted() {
        let (yt, id) = platform_with_scam_stream();
        let kw = KeywordSet::new(["xrp"]);
        yt.search_live(&kw, t(0));
        yt.search_live(&kw, t(10));
        yt.stream_details(id, t(10));
        yt.chat_history(id, t(10));
        yt.record(id, t(10), SimDuration::seconds(2));
        let calls = yt.api_calls();
        assert_eq!(calls.search, 2);
        assert_eq!(calls.stream_details, 1);
        assert_eq!(calls.chat_history, 1);
        assert_eq!(calls.record, 1);
    }

    #[test]
    fn viewer_curve_shape() {
        let v = ViewerCurve {
            peak_concurrent: 100,
            total_views: 1000,
        };
        assert_eq!(v.concurrent_at(0.0), 0);
        assert_eq!(v.concurrent_at(0.6), 100);
        assert!(v.concurrent_at(0.9) < 100);
        assert_eq!(v.views_by(1.0), 1000);
        assert_eq!(v.views_by(0.5), 500);
    }
}
