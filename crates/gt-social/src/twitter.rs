//! A static snapshot of public tweets, queryable by embedded domain.
//!
//! Mirrors the dataset the paper used: "Google's Internet-wide crawl of
//! public URLs … tens of billions of tweets". The analysis only ever
//! queries it one way — *all tweets containing at least one known scam
//! domain* — so the snapshot maintains a domain inverted index built
//! with the same URL extractor the chat scanner uses.

use gt_sim::SimTime;
use gt_store::{StoreDecode, StoreEncode};
use gt_text::extract_urls;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a tweet within the snapshot.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub struct TweetId(pub u64);

/// Identifier of a Twitter account.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub struct TwitterAccountId(pub u64);

/// A public tweet as the snapshot stores it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct Tweet {
    pub id: TweetId,
    pub author: TwitterAccountId,
    pub time: SimTime,
    pub text: String,
    /// Hashtags without the leading '#', lowercased.
    pub hashtags: Vec<String>,
    /// Accounts @-mentioned.
    pub mentions: Vec<TwitterAccountId>,
    /// Tweet this one replies to, if any.
    pub reply_to: Option<TweetId>,
}

/// The static tweet corpus with a domain inverted index.
#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct TwitterSnapshot {
    tweets: Vec<Tweet>,
    by_domain: HashMap<String, Vec<TweetId>>,
}

impl TwitterSnapshot {
    pub fn new() -> Self {
        TwitterSnapshot::default()
    }

    /// Insert a tweet, indexing any URLs in its text by host.
    pub fn insert(
        &mut self,
        author: TwitterAccountId,
        time: SimTime,
        text: String,
        hashtags: Vec<String>,
        mentions: Vec<TwitterAccountId>,
        reply_to: Option<TweetId>,
    ) -> TweetId {
        let id = TweetId(self.tweets.len() as u64);
        for url in extract_urls(&text) {
            self.by_domain
                .entry(url.host().to_string())
                .or_default()
                .push(id);
        }
        self.tweets.push(Tweet {
            id,
            author,
            time,
            text,
            hashtags,
            mentions,
            reply_to,
        });
        id
    }

    pub fn len(&self) -> usize {
        self.tweets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tweets.is_empty()
    }

    pub fn tweet(&self, id: TweetId) -> Option<&Tweet> {
        self.tweets.get(id.0 as usize)
    }

    pub fn tweets(&self) -> &[Tweet] {
        &self.tweets
    }

    /// All tweets whose text contains a URL on `domain`.
    pub fn tweets_with_domain(&self, domain: &str) -> Vec<&Tweet> {
        self.by_domain
            .get(domain)
            .map(|ids| ids.iter().map(|&id| &self.tweets[id.0 as usize]).collect())
            .unwrap_or_default()
    }

    /// The distinct domains appearing in the snapshot.
    pub fn indexed_domains(&self) -> impl Iterator<Item = &str> {
        self.by_domain.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> SimTime {
        SimTime(1_640_995_200 + s) // 2022-01-01
    }

    fn snapshot_with(texts: &[&str]) -> TwitterSnapshot {
        let mut snap = TwitterSnapshot::new();
        for (i, text) in texts.iter().enumerate() {
            snap.insert(
                TwitterAccountId(i as u64),
                t(i as i64 * 60),
                text.to_string(),
                vec![],
                vec![],
                None,
            );
        }
        snap
    }

    #[test]
    fn domain_index_finds_tweets() {
        let snap = snapshot_with(&[
            "5000 XRP giveaway! https://ripple-2x.com hurry #xrp",
            "nothing to see here",
            "also at https://ripple-2x.com/claim and https://btc-x2.net",
        ]);
        let hits = snap.tweets_with_domain("ripple-2x.com");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, TweetId(0));
        assert_eq!(hits[1].id, TweetId(2));
        assert_eq!(snap.tweets_with_domain("btc-x2.net").len(), 1);
        assert!(snap.tweets_with_domain("unknown.com").is_empty());
    }

    #[test]
    fn metadata_is_preserved() {
        let mut snap = TwitterSnapshot::new();
        let id = snap.insert(
            TwitterAccountId(9),
            t(0),
            "reply text https://scam.site".into(),
            vec!["xrp".into(), "crypto".into()],
            vec![TwitterAccountId(5)],
            Some(TweetId(123)),
        );
        let tw = snap.tweet(id).unwrap();
        assert_eq!(tw.hashtags, ["xrp", "crypto"]);
        assert_eq!(tw.mentions, [TwitterAccountId(5)]);
        assert_eq!(tw.reply_to, Some(TweetId(123)));
        assert_eq!(tw.author, TwitterAccountId(9));
    }

    #[test]
    fn ids_are_sequential() {
        let snap = snapshot_with(&["a", "b", "c"]);
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.tweets()[2].id, TweetId(2));
    }

    #[test]
    fn indexed_domains_enumerates_hosts() {
        let snap = snapshot_with(&["x https://one.com y", "z https://two.org"]);
        let mut domains: Vec<&str> = snap.indexed_domains().collect();
        domains.sort();
        assert_eq!(domains, ["one.com", "two.org"]);
    }

    #[test]
    fn www_and_path_variants_index_by_host() {
        let snap = snapshot_with(&["see www.give.fund/claim now"]);
        assert_eq!(snap.tweets_with_domain("www.give.fund").len(), 1);
    }
}
