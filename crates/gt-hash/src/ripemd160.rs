//! RIPEMD-160 (Dobbertin, Bosselaers, Preneel 1996).

// Message word selection for the left and right lines.
const RL: [usize; 80] = [
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, //
    7, 4, 13, 1, 10, 6, 15, 3, 12, 0, 9, 5, 2, 14, 11, 8, //
    3, 10, 14, 4, 9, 15, 8, 1, 2, 7, 0, 6, 13, 11, 5, 12, //
    1, 9, 11, 10, 0, 8, 12, 4, 13, 3, 7, 15, 14, 5, 6, 2, //
    4, 0, 5, 9, 7, 12, 2, 10, 14, 1, 3, 8, 11, 6, 15, 13,
];
const RR: [usize; 80] = [
    5, 14, 7, 0, 9, 2, 11, 4, 13, 6, 15, 8, 1, 10, 3, 12, //
    6, 11, 3, 7, 0, 13, 5, 10, 14, 15, 8, 12, 4, 9, 1, 2, //
    15, 5, 1, 3, 7, 14, 6, 9, 11, 8, 12, 2, 10, 0, 4, 13, //
    8, 6, 4, 1, 3, 11, 15, 0, 5, 12, 2, 13, 9, 7, 10, 14, //
    12, 15, 10, 4, 1, 5, 8, 7, 6, 2, 13, 14, 0, 3, 9, 11,
];
// Rotation amounts.
const SL: [u32; 80] = [
    11, 14, 15, 12, 5, 8, 7, 9, 11, 13, 14, 15, 6, 7, 9, 8, //
    7, 6, 8, 13, 11, 9, 7, 15, 7, 12, 15, 9, 11, 7, 13, 12, //
    11, 13, 6, 7, 14, 9, 13, 15, 14, 8, 13, 6, 5, 12, 7, 5, //
    11, 12, 14, 15, 14, 15, 9, 8, 9, 14, 5, 6, 8, 6, 5, 12, //
    9, 15, 5, 11, 6, 8, 13, 12, 5, 12, 13, 14, 11, 8, 5, 6,
];
const SR: [u32; 80] = [
    8, 9, 9, 11, 13, 15, 15, 5, 7, 7, 8, 11, 14, 14, 12, 6, //
    9, 13, 15, 7, 12, 8, 9, 11, 7, 7, 12, 7, 6, 15, 13, 11, //
    9, 7, 15, 11, 8, 6, 6, 14, 12, 13, 5, 14, 13, 13, 7, 5, //
    15, 5, 8, 11, 14, 14, 6, 14, 6, 9, 12, 9, 12, 5, 15, 8, //
    8, 5, 12, 9, 12, 5, 14, 6, 8, 13, 6, 5, 15, 13, 11, 11,
];

fn f(round: usize, x: u32, y: u32, z: u32) -> u32 {
    match round {
        0 => x ^ y ^ z,
        1 => (x & y) | (!x & z),
        2 => (x | !y) ^ z,
        3 => (x & z) | (y & !z),
        _ => x ^ (y | !z),
    }
}

const KL: [u32; 5] = [
    0x0000_0000,
    0x5a82_7999,
    0x6ed9_eba1,
    0x8f1b_bcdc,
    0xa953_fd4e,
];
const KR: [u32; 5] = [
    0x50a2_8be6,
    0x5c4d_d124,
    0x6d70_3ef3,
    0x7a6d_76e9,
    0x0000_0000,
];

fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
    let mut x = [0u32; 16];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        x[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    let (mut al, mut bl, mut cl, mut dl, mut el) =
        (state[0], state[1], state[2], state[3], state[4]);
    let (mut ar, mut br, mut cr, mut dr, mut er) =
        (state[0], state[1], state[2], state[3], state[4]);

    for j in 0..80 {
        let round = j / 16;
        let t = al
            .wrapping_add(f(round, bl, cl, dl))
            .wrapping_add(x[RL[j]])
            .wrapping_add(KL[round])
            .rotate_left(SL[j])
            .wrapping_add(el);
        al = el;
        el = dl;
        dl = cl.rotate_left(10);
        cl = bl;
        bl = t;

        let t = ar
            .wrapping_add(f(4 - round, br, cr, dr))
            .wrapping_add(x[RR[j]])
            .wrapping_add(KR[round])
            .rotate_left(SR[j])
            .wrapping_add(er);
        ar = er;
        er = dr;
        dr = cr.rotate_left(10);
        cr = br;
        br = t;
    }

    let t = state[1].wrapping_add(cl).wrapping_add(dr);
    state[1] = state[2].wrapping_add(dl).wrapping_add(er);
    state[2] = state[3].wrapping_add(el).wrapping_add(ar);
    state[3] = state[4].wrapping_add(al).wrapping_add(br);
    state[4] = state[0].wrapping_add(bl).wrapping_add(cr);
    state[0] = t;
}

/// One-shot RIPEMD-160.
pub fn ripemd160(data: &[u8]) -> [u8; 20] {
    let mut state: [u32; 5] = [
        0x6745_2301,
        0xefcd_ab89,
        0x98ba_dcfe,
        0x1032_5476,
        0xc3d2_e1f0,
    ];
    let mut blocks = data.chunks_exact(64);
    for block in &mut blocks {
        let mut b = [0u8; 64];
        b.copy_from_slice(block);
        compress(&mut state, &b);
    }
    // Padding: 0x80, zeros, 64-bit little-endian bit length.
    let rem = blocks.remainder();
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let tail_len = if rem.len() < 56 { 64 } else { 128 };
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_le_bytes());
    for block in tail[..tail_len].chunks_exact(64) {
        let mut b = [0u8; 64];
        b.copy_from_slice(block);
        compress(&mut state, &b);
    }
    let mut out = [0u8; 20];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    // Official test vectors from the RIPEMD-160 paper.
    #[test]
    fn official_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "9c1185a5c5e9fc54612808977ee8f548b2258d31"),
            (b"a", "0bdc9d2d256b3ee9daae347be6f4dc835a467ffe"),
            (b"abc", "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc"),
            (
                b"message digest",
                "5d0689ef49d2fae572b881b123a85ffa21595f36",
            ),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "f71c27109c692c1b56bbdceb5b9d2865b3708dbc",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "12a053384a9c0c88e405a06c27dcf49ada62eb2b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "b0e20b6e3116640286ed3a87a5713079b21f5189",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(
                to_hex(&ripemd160(input)),
                *expected,
                "input {:?}",
                String::from_utf8_lossy(input)
            );
        }
    }

    #[test]
    fn eight_times_digits() {
        let input = b"1234567890".repeat(8);
        assert_eq!(
            to_hex(&ripemd160(&input)),
            "9b752e45573d4b39f4dbd3323cab82bf63326bfb"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&ripemd160(&data)),
            "52783243c1697bdbe16d37f97f68f08325dc1528"
        );
    }

    #[test]
    fn padding_boundary_lengths_do_not_panic() {
        for len in 50..=130usize {
            let data = vec![0x5au8; len];
            let _ = ripemd160(&data);
        }
    }
}
