//! From-scratch hash primitives for the address codecs.
//!
//! The paper validates scam-page cryptocurrency addresses with
//! `coinaddrvalidator` / `multicoin-address-validator`. Faithful validation
//! needs the real checksum constructions:
//!
//! * Base58Check (BTC legacy, XRP): double SHA-256;
//! * P2PKH/P2SH address derivation: HASH160 = RIPEMD-160 ∘ SHA-256;
//! * EIP-55 mixed-case checksums (ETH): Keccak-256.
//!
//! No cryptographic dependency is in the approved set, so the three
//! primitives are implemented here directly from their specifications and
//! pinned to published test vectors.

pub mod hex;
pub mod keccak;
pub mod ripemd160;
pub mod sha256;

pub use keccak::keccak256;
pub use ripemd160::ripemd160;
pub use sha256::sha256;

/// Double SHA-256, the Base58Check checksum function.
pub fn sha256d(data: &[u8]) -> [u8; 32] {
    sha256(&sha256(data))
}

/// RIPEMD-160 of SHA-256, the Bitcoin public-key-hash function.
pub fn hash160(data: &[u8]) -> [u8; 20] {
    ripemd160(&sha256(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    #[test]
    fn sha256d_empty() {
        assert_eq!(
            to_hex(&sha256d(b"")),
            "5df6e0e2761359d30a8275058e299fcc0381534545f55cf43e41983f5d4c9456"
        );
    }

    #[test]
    fn sha256d_hello() {
        assert_eq!(
            to_hex(&sha256d(b"hello")),
            "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50"
        );
    }

    #[test]
    fn hash160_is_composition() {
        let data = b"some pubkey bytes";
        assert_eq!(hash160(data), ripemd160(&sha256(data)));
    }
}
