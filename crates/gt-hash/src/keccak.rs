//! Keccak-256 (the pre-NIST padding variant used by Ethereum).
//!
//! Ethereum's EIP-55 checksummed addresses hash the lowercase hex address
//! with Keccak-256 (*not* SHA3-256 — the domain-separation padding differs:
//! Keccak uses `0x01`, SHA-3 uses `0x06`).

const RC: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

const RHO: [u32; 24] = [
    1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14, 27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44,
];

const PI: [usize; 24] = [
    10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4, 15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1,
];

fn keccak_f1600(state: &mut [u64; 25]) {
    for rc in RC {
        // Theta
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // Rho and Pi
        let mut last = state[1];
        for i in 0..24 {
            let j = PI[i];
            let tmp = state[j];
            state[j] = last.rotate_left(RHO[i]);
            last = tmp;
        }
        // Chi
        for y in 0..5 {
            let row: [u64; 5] = std::array::from_fn(|x| state[5 * y + x]);
            for x in 0..5 {
                state[5 * y + x] = row[x] ^ (!row[(x + 1) % 5] & row[(x + 2) % 5]);
            }
        }
        // Iota
        state[0] ^= rc;
    }
}

/// One-shot Keccak-256.
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    const RATE: usize = 136; // 1600 - 2*256 bits, in bytes
    let mut state = [0u64; 25];

    let mut chunks = data.chunks_exact(RATE);
    for block in &mut chunks {
        absorb(&mut state, block);
        keccak_f1600(&mut state);
    }
    // Final partial block with multi-rate padding 0x01 .. 0x80.
    let rem = chunks.remainder();
    let mut last = [0u8; RATE];
    last[..rem.len()].copy_from_slice(rem);
    last[rem.len()] ^= 0x01;
    last[RATE - 1] ^= 0x80;
    absorb(&mut state, &last);
    keccak_f1600(&mut state);

    let mut out = [0u8; 32];
    for i in 0..4 {
        out[i * 8..i * 8 + 8].copy_from_slice(&state[i].to_le_bytes());
    }
    out
}

fn absorb(state: &mut [u64; 25], block: &[u8]) {
    for (i, chunk) in block.chunks_exact(8).enumerate() {
        state[i] ^= u64::from_le_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    #[test]
    fn empty() {
        assert_eq!(
            to_hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            to_hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn hello_eth_style() {
        // keccak256("hello") as computed by Solidity/web3.
        assert_eq!(
            to_hex(&keccak256(b"hello")),
            "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"
        );
    }

    #[test]
    fn exactly_one_rate_block() {
        // 136 bytes: forces an extra all-padding block.
        let data = vec![0xaau8; 136];
        let h1 = keccak256(&data);
        let h2 = keccak256(&data);
        assert_eq!(h1, h2);
        assert_ne!(h1, keccak256(&data[..135]));
    }

    #[test]
    fn multi_block_input() {
        let data = vec![0x42u8; 1000];
        // Self-consistency plus sensitivity to the last byte.
        let mut data2 = data.clone();
        data2[999] ^= 1;
        assert_ne!(keccak256(&data), keccak256(&data2));
    }

    #[test]
    fn eip55_fixture_address_hash() {
        // The first bytes of keccak256("52908400098527886e0f7030069857d2e4169ee7")
        // decide the EIP-55 capitalisation of that address; pin the digest.
        let digest = keccak256(b"52908400098527886e0f7030069857d2e4169ee7");
        // All-caps fixture from EIP-55 means every hex digit's nibble >= 8.
        let hex = to_hex(&digest);
        for (i, c) in hex.chars().take(40).enumerate() {
            let addr_char = "52908400098527886e0f7030069857d2e4169ee7".as_bytes()[i] as char;
            if addr_char.is_ascii_alphabetic() {
                assert!(
                    c.to_digit(16).unwrap() >= 8,
                    "nibble {i} should force uppercase"
                );
            }
        }
    }
}
