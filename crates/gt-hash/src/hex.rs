//! Minimal hex encoding/decoding.

/// Lowercase hex encoding of a byte slice.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

/// Decode a hex string (case-insensitive). Returns `None` on odd length or
/// non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = [0x00, 0x01, 0xab, 0xff];
        assert_eq!(to_hex(&data), "0001abff");
        assert_eq!(from_hex("0001abff").unwrap(), data);
        assert_eq!(from_hex("0001ABFF").unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(from_hex("abc").is_none(), "odd length");
        assert!(from_hex("zz").is_none(), "non-hex chars");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }
}
