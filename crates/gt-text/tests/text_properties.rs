//! Property tests for the text scanners: Aho–Corasick agrees with a
//! naive reference, URL extraction finds planted URLs, and the address
//! scanner is faithful to the codecs.

use gt_addr::{Address, AddressGenerator, Coin};
use gt_text::{extract_urls, scan_address_candidates, AhoCorasick, KeywordSet};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aho_corasick_agrees_with_naive_search(
        patterns in proptest::collection::vec("[a-c]{1,4}", 1..8),
        haystack in "[a-c]{0,60}",
    ) {
        let ac = AhoCorasick::new(patterns.iter().map(|p| p.as_bytes()));
        let mut expected = Vec::new();
        for (pi, pat) in patterns.iter().enumerate() {
            let mut start = 0;
            while let Some(pos) = haystack[start..].find(pat.as_str()) {
                expected.push((pi, start + pos));
                start += pos + 1;
            }
        }
        let mut actual: Vec<(usize, usize)> = ac
            .find_all(haystack.as_bytes())
            .into_iter()
            .map(|m| (m.pattern, m.start))
            .collect();
        actual.sort();
        expected.sort();
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn planted_urls_are_always_extracted(
        prefix in "[a-z ]{0,30}",
        host in "[a-z]{3,10}",
        tld in prop_oneof![Just("com"), Just("net"), Just("live"), Just("fund")],
        path in "[a-z0-9]{0,10}",
        suffix in "[a-z ]{0,30}",
    ) {
        let url = if path.is_empty() {
            format!("https://{host}-x.{tld}")
        } else {
            format!("https://{host}-x.{tld}/{path}")
        };
        let text = format!("{prefix} {url} {suffix}");
        let found = extract_urls(&text);
        prop_assert!(
            found.iter().any(|u| u.url == url),
            "missing {url} in {text:?}: {found:?}"
        );
    }

    #[test]
    fn extraction_never_panics_on_arbitrary_text(text in "\\PC{0,200}") {
        let _ = extract_urls(&text);
        let _ = scan_address_candidates(&text);
    }

    #[test]
    fn generated_addresses_are_always_found_and_validated(seed in any::<u64>()) {
        let mut gen = AddressGenerator::new(rand::rngs::StdRng::seed_from_u64(seed));
        for coin in Coin::ALL {
            let address = gen.generate(coin);
            let text = format!("send your coins to {} right now", address.encode());
            let candidates = scan_address_candidates(&text);
            let validated: Vec<Address> = candidates
                .iter()
                .filter_map(|c| gt_addr::validate_any(&c.text))
                .collect();
            prop_assert!(
                validated.contains(&address),
                "{coin} address {} not recovered from text",
                address.encode()
            );
        }
    }

    #[test]
    fn keyword_set_whole_word_is_sound(
        words in proptest::collection::vec("[a-z]{2,8}", 1..6),
        keyword_idx in 0usize..6,
    ) {
        let keyword_idx = keyword_idx % words.len();
        let keyword = words[keyword_idx].clone();
        let ks = KeywordSet::new([keyword.clone()]);
        let text = words.join(" ");
        // The keyword is present as a whole word in the joined text.
        prop_assert!(ks.matches(&text), "{keyword} in {text}");
        // Gluing everything together must not match unless the keyword
        // happens to sit at a boundary of the glued string.
        let glued = words.concat();
        if glued != keyword
            && !(glued.starts_with(&keyword)
                 && keyword_idx == 0)
            && !(glued.ends_with(&keyword) && keyword_idx == words.len() - 1)
        {
            // Inner occurrences have word characters on both sides.
            if words.len() > 2 && keyword_idx != 0 && keyword_idx != words.len() - 1 {
                // Unless the keyword also occurs elsewhere with a
                // boundary, this must not match. Check containment of
                // the keyword at positions with boundaries:
                let ok = !ks.matches(&glued);
                // The keyword could coincidentally appear at the glued
                // string's edges via other words; tolerate that.
                let edge = glued.starts_with(&keyword) || glued.ends_with(&keyword);
                prop_assert!(ok || edge, "inner keyword matched in {glued}");
            }
        }
    }
}
