//! URL extraction from free text (chat messages, tweets, page bodies).
//!
//! Mirrors the paper's regex-based chat extraction: absolute `http(s)://`
//! URLs, scheme-less `www.` URLs, and bare `host.tld/...` mentions for a
//! conservative set of TLDs that the scam-domain corpus actually uses.

use serde::{Deserialize, Serialize};

/// A URL found in free text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractedUrl {
    /// The normalised URL (scheme always present, host lowercased).
    pub url: String,
    /// Byte offset in the source text where the raw mention started.
    pub start: usize,
    /// Whether a scheme was present in the raw text.
    pub had_scheme: bool,
}

impl ExtractedUrl {
    /// The host portion of the normalised URL.
    pub fn host(&self) -> &str {
        let rest = &self.url[self.url.find("//").map(|i| i + 2).unwrap_or(0)..];
        let end = rest.find(['/', '?', '#']).unwrap_or(rest.len());
        let host_port = &rest[..end];
        host_port.split(':').next().unwrap_or(host_port)
    }
}

/// TLDs accepted for scheme-less mentions. Scam giveaway domains in the
/// CryptoScamTracker corpus overwhelmingly use these.
const BARE_TLDS: &[&str] = &[
    "com", "net", "org", "io", "me", "co", "info", "live", "xyz", "site", "online", "top", "fund",
    "gift", "cash", "app", "dev", "finance", "exchange", "events", "promo", "club", "pro", "vip",
];

fn is_host_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'-' || b == b'.'
}

fn is_path_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric()
        || matches!(
            b,
            b'-' | b'.'
                | b'_'
                | b'~'
                | b'/'
                | b'?'
                | b'#'
                | b'&'
                | b'='
                | b'%'
                | b'+'
                | b':'
                | b'@'
        )
}

/// Trailing characters that are almost always sentence punctuation, not
/// part of the URL.
fn trim_trailing_punct(s: &str) -> &str {
    s.trim_end_matches(['.', ',', ';', ':', '!', '?', ')', ']', '}', '\'', '"'])
}

fn valid_host(host: &str) -> bool {
    if host.len() < 4 || !host.contains('.') {
        return false;
    }
    let labels: Vec<&str> = host.split('.').collect();
    if labels.len() < 2 {
        return false;
    }
    for label in &labels {
        if label.is_empty() || label.starts_with('-') || label.ends_with('-') {
            return false;
        }
    }
    // The TLD must be alphabetic and at least 2 chars.
    let tld = labels.last().unwrap();
    tld.len() >= 2 && tld.bytes().all(|b| b.is_ascii_alphabetic())
}

/// Extract all URLs from `text`.
pub fn extract_urls(text: &str) -> Vec<ExtractedUrl> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Only start parsing at character boundaries (the scan index
        // walks bytes; multi-byte text is skipped over safely).
        if !text.is_char_boundary(i) {
            i += 1;
            continue;
        }
        // Absolute URLs (byte-wise, ASCII case-insensitive).
        let starts_with_ci = |prefix: &[u8]| {
            bytes.len() >= i + prefix.len()
                && bytes[i..i + prefix.len()].eq_ignore_ascii_case(prefix)
        };
        let (scheme_len, had_scheme) = if starts_with_ci(b"https://") {
            (8, true)
        } else if starts_with_ci(b"http://") {
            (7, true)
        } else if candidate_start(bytes, i) {
            (0, false)
        } else {
            i += 1;
            continue;
        };

        let body_start = i + scheme_len;
        // Host part.
        let mut j = body_start;
        while j < bytes.len() && is_host_byte(bytes[j]) {
            j += 1;
        }
        let host_raw = &text[body_start..j];
        let host_trimmed = host_raw.trim_end_matches('.');
        let host = host_trimmed.to_ascii_lowercase();
        if !valid_host(&host) || (!had_scheme && !bare_mention_allowed(&host)) {
            i = j.max(i + 1);
            continue;
        }
        let mut end = body_start + host_trimmed.len();
        // Optional port.
        if end < bytes.len() && bytes[end] == b':' {
            let mut k = end + 1;
            while k < bytes.len() && bytes[k].is_ascii_digit() {
                k += 1;
            }
            if k > end + 1 {
                end = k;
            }
        }
        // Optional path/query/fragment.
        if end < bytes.len() && (bytes[end] == b'/' || bytes[end] == b'?' || bytes[end] == b'#') {
            let mut k = end;
            while k < bytes.len() && is_path_byte(bytes[k]) {
                k += 1;
            }
            end = k;
        }
        let raw = trim_trailing_punct(&text[body_start..end]);
        let end = body_start + raw.len();
        // Rebuild with lowercased host.
        let after_host = &raw[host_trimmed.len().min(raw.len())..];
        let url = format!("https://{}{}", host, after_host);
        // Keep http scheme if it was explicit.
        let url = if had_scheme
            && bytes[i..].len() >= 7
            && bytes[i..i + 7].eq_ignore_ascii_case(b"http://")
        {
            format!("http://{}{}", host, after_host)
        } else {
            url
        };
        out.push(ExtractedUrl {
            url,
            start: i,
            had_scheme,
        });
        i = end.max(i + 1);
    }
    out
}

/// Is `i` a plausible start of a scheme-less URL mention?
fn candidate_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && is_host_byte(bytes[i - 1]) {
        return false; // middle of a word
    }
    bytes[i].is_ascii_alphanumeric()
}

fn bare_mention_allowed(host: &str) -> bool {
    if host.starts_with("www.") {
        return true;
    }
    let tld = host.rsplit('.').next().unwrap_or("");
    BARE_TLDS.contains(&tld)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urls(text: &str) -> Vec<String> {
        extract_urls(text).into_iter().map(|u| u.url).collect()
    }

    #[test]
    fn absolute_https() {
        assert_eq!(
            urls("go to https://musk-gives.com/claim now"),
            ["https://musk-gives.com/claim"]
        );
    }

    #[test]
    fn absolute_http_keeps_scheme() {
        assert_eq!(urls("http://example.org"), ["http://example.org"]);
    }

    #[test]
    fn www_without_scheme() {
        assert_eq!(
            urls("visit www.ripple2x.net today"),
            ["https://www.ripple2x.net"]
        );
    }

    #[test]
    fn bare_domain_with_known_tld() {
        assert_eq!(urls("claim at elon-drop.live!"), ["https://elon-drop.live"]);
    }

    #[test]
    fn bare_domain_with_unknown_tld_ignored() {
        assert!(urls("see example.invalidtld for more").is_empty());
    }

    #[test]
    fn trailing_punctuation_trimmed() {
        assert_eq!(
            urls("check https://btc-x2.com/go."),
            ["https://btc-x2.com/go"]
        );
        assert_eq!(urls("(https://btc-x2.com)"), ["https://btc-x2.com"]);
    }

    #[test]
    fn host_is_lowercased_path_preserved() {
        assert_eq!(
            urls("HTTPS://Big-Giveaway.COM/Path?X=1"),
            ["https://big-giveaway.com/Path?X=1"]
        );
    }

    #[test]
    fn multiple_urls_in_order() {
        let found = urls("a https://one.com b https://two.com/x c");
        assert_eq!(found, ["https://one.com", "https://two.com/x"]);
    }

    #[test]
    fn port_numbers_kept() {
        assert_eq!(
            urls("dev server https://site.com:8443/x"),
            ["https://site.com:8443/x"]
        );
    }

    #[test]
    fn no_match_inside_words() {
        assert!(
            urls("notwww.example.comtext").is_empty()
                || !urls("notwww.example.comtext")
                    .iter()
                    .any(|u| u.contains("notwww"))
        );
    }

    #[test]
    fn host_accessor() {
        let u = extract_urls("https://a.b.example.com:8080/p?q=1").remove(0);
        assert_eq!(u.host(), "a.b.example.com");
        let u2 = extract_urls("https://plain.com").remove(0);
        assert_eq!(u2.host(), "plain.com");
    }

    #[test]
    fn empty_and_plain_text() {
        assert!(urls("").is_empty());
        assert!(urls("no links here, just words.").is_empty());
    }

    #[test]
    fn qr_style_url_with_path_tokens() {
        assert_eq!(
            urls("https://xrp-event.org/r/AbC123?ref=qr#top"),
            ["https://xrp-event.org/r/AbC123?ref=qr#top"]
        );
    }
}
