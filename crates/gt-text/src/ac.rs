//! Aho–Corasick multi-pattern string matching.
//!
//! Classic goto/fail automaton over bytes with BFS-computed failure links
//! and merged output sets. Supports case-insensitive matching by folding
//! ASCII at build and search time.

use std::collections::{HashMap, VecDeque};

/// A match reported by [`AhoCorasick::find_all`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index of the pattern (in construction order).
    pub pattern: usize,
    /// Byte offset of the first matched byte.
    pub start: usize,
    /// Byte offset one past the last matched byte.
    pub end: usize,
}

#[derive(Debug, Default)]
struct Node {
    next: HashMap<u8, u32>,
    fail: u32,
    /// Patterns ending at this node (after output-link merging).
    outputs: Vec<usize>,
}

/// An Aho–Corasick automaton over a fixed pattern set.
#[derive(Debug)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_lens: Vec<usize>,
    case_insensitive: bool,
}

impl AhoCorasick {
    /// Build a case-sensitive automaton.
    pub fn new<I, P>(patterns: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        Self::build(patterns, false)
    }

    /// Build an ASCII case-insensitive automaton.
    pub fn new_case_insensitive<I, P>(patterns: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        Self::build(patterns, true)
    }

    fn build<I, P>(patterns: I, case_insensitive: bool) -> Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        let mut nodes = vec![Node::default()];
        let mut pattern_lens = Vec::new();

        // Goto function (trie).
        for (pat_idx, pattern) in patterns.into_iter().enumerate() {
            let bytes = pattern.as_ref();
            assert!(!bytes.is_empty(), "empty patterns are not allowed");
            pattern_lens.push(bytes.len());
            let mut cur = 0u32;
            for &raw in bytes {
                let b = if case_insensitive {
                    raw.to_ascii_lowercase()
                } else {
                    raw
                };
                let next_id = nodes.len() as u32;
                let entry = nodes[cur as usize].next.entry(b).or_insert(next_id);
                if *entry == next_id {
                    nodes.push(Node::default());
                }
                cur = nodes[cur as usize].next[&b];
            }
            nodes[cur as usize].outputs.push(pat_idx);
        }

        // Failure links by BFS, merging outputs along the way.
        let mut queue = VecDeque::new();
        let root_children: Vec<(u8, u32)> = nodes[0].next.iter().map(|(&b, &n)| (b, n)).collect();
        for (_, child) in &root_children {
            nodes[*child as usize].fail = 0;
            queue.push_back(*child);
        }
        while let Some(id) = queue.pop_front() {
            let transitions: Vec<(u8, u32)> = nodes[id as usize]
                .next
                .iter()
                .map(|(&b, &n)| (b, n))
                .collect();
            for (b, child) in transitions {
                // Follow fail links until a node with a b-transition (or root).
                let mut f = nodes[id as usize].fail;
                loop {
                    if let Some(&t) = nodes[f as usize].next.get(&b) {
                        if t != child {
                            nodes[child as usize].fail = t;
                        }
                        break;
                    }
                    if f == 0 {
                        nodes[child as usize].fail = 0;
                        break;
                    }
                    f = nodes[f as usize].fail;
                }
                let fail_outputs = nodes[nodes[child as usize].fail as usize].outputs.clone();
                nodes[child as usize].outputs.extend(fail_outputs);
                queue.push_back(child);
            }
        }

        AhoCorasick {
            nodes,
            pattern_lens,
            case_insensitive,
        }
    }

    /// Number of patterns in the automaton.
    pub fn pattern_count(&self) -> usize {
        self.pattern_lens.len()
    }

    /// Length (in bytes) of pattern `i`.
    pub fn pattern_len(&self, i: usize) -> usize {
        self.pattern_lens[i]
    }

    fn step(&self, mut state: u32, raw: u8) -> u32 {
        let b = if self.case_insensitive {
            raw.to_ascii_lowercase()
        } else {
            raw
        };
        loop {
            if let Some(&next) = self.nodes[state as usize].next.get(&b) {
                return next;
            }
            if state == 0 {
                return 0;
            }
            state = self.nodes[state as usize].fail;
        }
    }

    /// All (possibly overlapping) matches in `haystack`.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut state = 0u32;
        for (i, &b) in haystack.iter().enumerate() {
            state = self.step(state, b);
            for &pat in &self.nodes[state as usize].outputs {
                out.push(Match {
                    pattern: pat,
                    start: i + 1 - self.pattern_lens[pat],
                    end: i + 1,
                });
            }
        }
        out
    }

    /// Whether any pattern occurs in `haystack`. Short-circuits.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        let mut state = 0u32;
        for &b in haystack {
            state = self.step(state, b);
            if !self.nodes[state as usize].outputs.is_empty() {
                return true;
            }
        }
        false
    }

    /// The set of distinct pattern indices that occur in `haystack`.
    pub fn matching_patterns(&self, haystack: &[u8]) -> Vec<usize> {
        let mut seen = vec![false; self.pattern_lens.len()];
        for m in self.find_all(haystack) {
            seen[m.pattern] = true;
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_he_she_his_hers() {
        let ac = AhoCorasick::new(["he", "she", "his", "hers"]);
        let matches = ac.find_all(b"ushers");
        let found: Vec<(usize, usize, usize)> = matches
            .iter()
            .map(|m| (m.pattern, m.start, m.end))
            .collect();
        // "she" at 1..4, "he" at 2..4, "hers" at 2..6
        assert!(found.contains(&(1, 1, 4)));
        assert!(found.contains(&(0, 2, 4)));
        assert!(found.contains(&(3, 2, 6)));
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn overlapping_matches_all_reported() {
        let ac = AhoCorasick::new(["aa"]);
        let matches = ac.find_all(b"aaaa");
        assert_eq!(matches.len(), 3);
    }

    #[test]
    fn case_insensitive_matches_any_case() {
        let ac = AhoCorasick::new_case_insensitive(["Bitcoin", "ETH"]);
        assert!(ac.is_match(b"BITCOIN giveaway"));
        assert!(ac.is_match(b"send eth now"));
        assert!(!ac.is_match(b"dogecoin"));
        let pats = ac.matching_patterns(b"bitcoin and eth and BiTcOiN");
        assert_eq!(pats, vec![0, 1]);
    }

    #[test]
    fn case_sensitive_does_not_fold() {
        let ac = AhoCorasick::new(["BTC"]);
        assert!(!ac.is_match(b"btc"));
        assert!(ac.is_match(b"BTC"));
    }

    #[test]
    fn no_patterns_in_haystack() {
        let ac = AhoCorasick::new(["xyz"]);
        assert!(ac.find_all(b"aaabbbccc").is_empty());
        assert!(!ac.is_match(b""));
    }

    #[test]
    fn substring_patterns_both_fire() {
        let ac = AhoCorasick::new(["doge", "dogecoin"]);
        let matches = ac.find_all(b"dogecoin");
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn fail_links_cross_pattern_boundaries() {
        // After reading "ab" of pattern "abx", the suffix "b" should still
        // allow "bc" to match in "abc".
        let ac = AhoCorasick::new(["abx", "bc"]);
        let matches = ac.find_all(b"abc");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].pattern, 1);
    }

    #[test]
    #[should_panic(expected = "empty patterns")]
    fn rejects_empty_pattern() {
        let _ = AhoCorasick::new([""]);
    }

    #[test]
    fn utf8_patterns_work_at_byte_level() {
        let ac = AhoCorasick::new(["héllo"]);
        assert!(ac.is_match("say héllo".as_bytes()));
    }

    #[test]
    fn large_pattern_set() {
        let patterns: Vec<String> = (0..500).map(|i| format!("kw{i:03}x")).collect();
        let ac = AhoCorasick::new(&patterns);
        assert_eq!(ac.pattern_count(), 500);
        let hay = "prefix kw042x middle kw499x suffix".as_bytes();
        let pats = ac.matching_patterns(hay);
        assert_eq!(pats, vec![42, 499]);
    }
}
