//! Text scanning for the measurement pipeline.
//!
//! The paper extracts three things from unstructured text:
//!
//! * **URLs** from chat messages and tweets ("via regular expressions");
//! * **cryptocurrency address candidates** from landing-page HTML (then
//!   validated with real checksum rules in `gt-addr`);
//! * **keyword matches** — coin names/tickers and the CryptoScamTracker
//!   keyword corpus — over tweet hashtags, stream titles, descriptions and
//!   page bodies.
//!
//! Keyword matching over hundreds of patterns and hundreds of thousands of
//! documents wants a real multi-pattern automaton, so this crate implements
//! Aho–Corasick from scratch ([`ac::AhoCorasick`]) and layers a
//! whole-word, case-insensitive [`keywords::KeywordSet`] on top.

pub mod ac;
pub mod keywords;
pub mod scan;
pub mod url;

pub use ac::AhoCorasick;
pub use keywords::KeywordSet;
pub use scan::{scan_address_candidates, AddressCandidate, CandidateKind};
pub use url::{extract_urls, ExtractedUrl};
