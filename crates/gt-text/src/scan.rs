//! Cryptocurrency address *candidate* scanning.
//!
//! The paper "extracted addresses via a regular expression and then
//! validated the address". This module is the regular-expression half: it
//! finds syntactic candidates (base58 runs, bech32 runs, 0x-hex runs) with
//! their positions; `gt-addr` performs the checksum validation.

use serde::{Deserialize, Serialize};

/// What kind of address syntax a candidate looks like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CandidateKind {
    /// Base58 run starting with `1` or `3` (BTC legacy P2PKH/P2SH).
    Base58Btc,
    /// `bc1...` bech32 run (BTC segwit).
    Bech32Btc,
    /// `0x` + 40 hex chars (ETH).
    HexEth,
    /// Base58 run starting with `r` in the Ripple alphabet (XRP).
    Base58Xrp,
}

/// A syntactic address candidate found in text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressCandidate {
    pub kind: CandidateKind,
    pub text: String,
    pub start: usize,
}

const BASE58_BTC: &str = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";
const BASE58_XRP: &str = "rpshnaf39wBUDNEGHJKLM4PQRST7VWXYZ2bcdeCg65jkm8oFqi1tuvAxyz";
const BECH32_CHARSET: &str = "qpzry9x8gf2tvdw0s3jn54khce6mua7l";

fn in_alphabet(alphabet: &str, c: char) -> bool {
    alphabet.contains(c)
}

fn is_word_char(b: u8) -> bool {
    b.is_ascii_alphanumeric()
}

/// Scan `text` for address candidates of all kinds.
pub fn scan_address_candidates(text: &str) -> Vec<AddressCandidate> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Walk bytes, but only parse at character boundaries.
        if !text.is_char_boundary(i) {
            i += 1;
            continue;
        }
        // Candidates must start at a word boundary.
        if i > 0 && is_word_char(bytes[i - 1]) {
            i += 1;
            continue;
        }
        let c = bytes[i] as char;

        // ETH: 0x + exactly 40 hex digits.
        if c == '0' && i + 42 <= bytes.len() && bytes[i + 1] == b'x' {
            let run = &text[i + 2..];
            let hex_len = run.bytes().take_while(|b| b.is_ascii_hexdigit()).count();
            if hex_len == 40 && (i + 42 == bytes.len() || !is_word_char(bytes[i + 42])) {
                out.push(AddressCandidate {
                    kind: CandidateKind::HexEth,
                    text: text[i..i + 42].to_string(),
                    start: i,
                });
                i += 42;
                continue;
            }
        }

        // BTC bech32: "bc1" + 11..=87 charset chars.
        if (c == 'b' || c == 'B')
            && bytes.len() - i >= 14
            && bytes[i..i + 3].eq_ignore_ascii_case(b"bc1")
        {
            let run_len = text[i + 3..]
                .chars()
                .take_while(|&ch| {
                    in_alphabet(BECH32_CHARSET, ch.to_ascii_lowercase()) || ch.is_ascii_digit()
                })
                .count();
            let total = 3 + run_len;
            if (14..=90).contains(&total)
                && (i + total == bytes.len() || !is_word_char(bytes[i + total]))
            {
                out.push(AddressCandidate {
                    kind: CandidateKind::Bech32Btc,
                    text: text[i..i + total].to_string(),
                    start: i,
                });
                i += total;
                continue;
            }
        }

        // BTC legacy: '1' or '3' + 25..=34 base58 chars total.
        if c == '1' || c == '3' {
            let run_len = text[i..]
                .chars()
                .take_while(|&ch| in_alphabet(BASE58_BTC, ch))
                .count();
            if (25..=35).contains(&run_len)
                && (i + run_len == bytes.len() || !is_word_char(bytes[i + run_len]))
            {
                out.push(AddressCandidate {
                    kind: CandidateKind::Base58Btc,
                    text: text[i..i + run_len].to_string(),
                    start: i,
                });
                i += run_len;
                continue;
            }
        }

        // XRP: 'r' + 24..=34 ripple-base58 chars total.
        if c == 'r' {
            let run_len = text[i..]
                .chars()
                .take_while(|&ch| in_alphabet(BASE58_XRP, ch))
                .count();
            if (25..=35).contains(&run_len)
                && (i + run_len == bytes.len() || !is_word_char(bytes[i + run_len]))
            {
                out.push(AddressCandidate {
                    kind: CandidateKind::Base58Xrp,
                    text: text[i..i + run_len].to_string(),
                    start: i,
                });
                i += run_len;
                continue;
            }
        }

        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_eth_candidate() {
        let text = "Send to 0x52908400098527886E0F7030069857D2E4169EE7 now";
        let found = scan_address_candidates(text);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, CandidateKind::HexEth);
        assert_eq!(found[0].text.len(), 42);
        assert_eq!(found[0].start, 8);
    }

    #[test]
    fn rejects_eth_with_wrong_length() {
        // 39 hex chars
        let short = format!("0x{}", "a".repeat(39));
        assert!(scan_address_candidates(&short).is_empty());
        // 41 hex chars — run is too long, must not match
        let long = format!("0x{}", "a".repeat(41));
        assert!(scan_address_candidates(&long).is_empty());
    }

    #[test]
    fn finds_btc_legacy_candidate() {
        let text = "pay 1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa please";
        let found = scan_address_candidates(text);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, CandidateKind::Base58Btc);
        assert_eq!(found[0].text, "1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa");
    }

    #[test]
    fn finds_p2sh_candidate() {
        let text = "3J98t1WpEZ73CNmQviecrnyiWrnqRhWNLy";
        let found = scan_address_candidates(text);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, CandidateKind::Base58Btc);
    }

    #[test]
    fn finds_bech32_candidate() {
        let text = "bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4";
        let found = scan_address_candidates(text);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, CandidateKind::Bech32Btc);
    }

    #[test]
    fn finds_xrp_candidate() {
        let text = "XRP: rN7n7otQDd6FczFgLdSqtcsAUxDkw6fzRH thanks";
        let found = scan_address_candidates(text);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, CandidateKind::Base58Xrp);
    }

    #[test]
    fn base58_rejects_forbidden_chars() {
        // 0, O, I, l are not in the BTC base58 alphabet — run breaks early.
        let text = "1A1zP1eP5QGefi2DMP0fTL5SLmv7DivfNa";
        assert!(scan_address_candidates(text).is_empty());
    }

    #[test]
    fn requires_word_boundaries() {
        let embedded = "x1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa";
        assert!(scan_address_candidates(embedded).is_empty());
    }

    #[test]
    fn multiple_candidates_mixed_kinds() {
        let text = format!(
            "btc 1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa eth 0x{} xrp rN7n7otQDd6FczFgLdSqtcsAUxDkw6fzRH",
            "ab".repeat(20)
        );
        let found = scan_address_candidates(&text);
        let kinds: Vec<CandidateKind> = found.iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            [
                CandidateKind::Base58Btc,
                CandidateKind::HexEth,
                CandidateKind::Base58Xrp
            ]
        );
    }

    #[test]
    fn plain_text_yields_nothing() {
        assert!(scan_address_candidates("hurry, participate in the giveaway now!").is_empty());
    }

    #[test]
    fn html_context_extraction() {
        let html = r#"<div class="addr">1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa</div>"#;
        let found = scan_address_candidates(html);
        assert_eq!(found.len(), 1);
    }
}
