//! Whole-word, case-insensitive keyword matching.
//!
//! Coin tagging in the paper matches names and ticker symbols ("btc",
//! "eth", "usd coin") against tweet hashtags and stream metadata. Ticker
//! symbols are short, so substring matching would tag "methane" as ETH;
//! matches must land on word boundaries. Multi-word phrases match across
//! single spaces.

use crate::ac::AhoCorasick;
use serde::{Deserialize, Serialize};

/// A set of keywords with whole-word semantics.
#[derive(Debug)]
pub struct KeywordSet {
    automaton: AhoCorasick,
    keywords: Vec<String>,
}

/// A whole-word keyword match.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeywordMatch {
    /// Index into the keyword list.
    pub keyword: usize,
    pub start: usize,
    pub end: usize,
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric()
}

impl KeywordSet {
    /// Build from keyword strings. Keywords are matched ASCII
    /// case-insensitively on word boundaries.
    pub fn new<I, S>(keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let keywords: Vec<String> = keywords.into_iter().map(Into::into).collect();
        assert!(!keywords.is_empty(), "keyword set must be non-empty");
        for kw in &keywords {
            assert!(!kw.is_empty(), "keywords must be non-empty");
        }
        let automaton = AhoCorasick::new_case_insensitive(keywords.iter().map(|k| k.as_bytes()));
        KeywordSet {
            automaton,
            keywords,
        }
    }

    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// The keyword string at `index`.
    pub fn keyword(&self, index: usize) -> &str {
        &self.keywords[index]
    }

    /// All whole-word matches in `text`.
    pub fn find_all(&self, text: &str) -> Vec<KeywordMatch> {
        let bytes = text.as_bytes();
        self.automaton
            .find_all(bytes)
            .into_iter()
            .filter(|m| {
                let left_ok = m.start == 0 || !is_word_byte(bytes[m.start - 1]);
                let right_ok = m.end == bytes.len() || !is_word_byte(bytes[m.end]);
                left_ok && right_ok
            })
            .map(|m| KeywordMatch {
                keyword: m.pattern,
                start: m.start,
                end: m.end,
            })
            .collect()
    }

    /// Whether any keyword occurs (whole-word) in `text`.
    pub fn matches(&self, text: &str) -> bool {
        !self.find_all(text).is_empty()
    }

    /// Distinct keyword indices occurring (whole-word) in `text`.
    pub fn matching_keywords(&self, text: &str) -> Vec<usize> {
        let mut seen = vec![false; self.keywords.len()];
        for m in self.find_all(text) {
            seen[m.keyword] = true;
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_word_only() {
        let ks = KeywordSet::new(["eth", "btc"]);
        assert!(ks.matches("send eth now"));
        assert!(ks.matches("ETH giveaway"));
        assert!(!ks.matches("methane"), "eth inside a word must not match");
        assert!(!ks.matches("xbtc"), "btc with word prefix must not match");
        assert!(ks.matches("#btc"), "hash mark is a boundary");
        assert!(ks.matches("eth"));
    }

    #[test]
    fn multi_word_phrases() {
        let ks = KeywordSet::new(["usd coin", "shiba inu"]);
        assert!(ks.matches("the usd coin drop"));
        assert!(ks.matches("SHIBA INU giveaway!"));
        assert!(!ks.matches("usd coins"), "trailing 's' breaks the boundary");
        assert!(!ks.matches("usdcoin"), "no space means no phrase match");
    }

    #[test]
    fn punctuation_is_boundary() {
        let ks = KeywordSet::new(["xrp"]);
        for text in ["xrp!", "(xrp)", "xrp,btc", "$xrp", "xrp."] {
            assert!(ks.matches(text), "{text:?} should match");
        }
    }

    #[test]
    fn matching_keywords_dedupes_and_sorts() {
        let ks = KeywordSet::new(["btc", "bitcoin", "eth"]);
        let found = ks.matching_keywords("bitcoin btc bitcoin eth");
        assert_eq!(found, vec![0, 1, 2]);
    }

    #[test]
    fn keyword_accessor() {
        let ks = KeywordSet::new(["ripple", "xrp"]);
        assert_eq!(ks.len(), 2);
        assert_eq!(ks.keyword(1), "xrp");
    }

    #[test]
    fn match_positions_are_byte_offsets() {
        let ks = KeywordSet::new(["doge"]);
        let ms = ks.find_all("much doge wow doge");
        assert_eq!(ms.len(), 2);
        assert_eq!((ms[0].start, ms[0].end), (5, 9));
        assert_eq!((ms[1].start, ms[1].end), (14, 18));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_keyword() {
        let _ = KeywordSet::new([""]);
    }
}
