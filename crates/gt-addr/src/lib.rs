//! Cryptocurrency address generation and validation for BTC, ETH and XRP.
//!
//! This is the repository's stand-in for the `coinaddrvalidator` and
//! `multicoin-address-validator` tools the paper used: a candidate string
//! is *valid* iff it satisfies the real checksum construction of its coin.
//! The same codecs also let the world generator mint syntactically genuine
//! addresses for scam landing pages, victims and services.
//!
//! * BTC: Base58Check P2PKH (`1...`) / P2SH (`3...`) and Bech32/Bech32m
//!   segwit (`bc1...`);
//! * ETH: 20-byte hex with EIP-55 mixed-case checksum;
//! * XRP: classic addresses in the Ripple Base58 dialect.

pub mod address;
pub mod base58;
pub mod bech32;
pub mod eth;
pub mod xrp;

pub use address::{Address, AddressError, AddressGenerator, BtcAddress, Coin};
pub use eth::EthAddress;
pub use xrp::XrpAddress;

/// Validate a candidate string as any supported address type.
///
/// Returns the parsed address on success. This is the entry point the
/// landing-page validator uses after `gt_text::scan_address_candidates`.
pub fn validate_any(candidate: &str) -> Option<Address> {
    Address::parse(candidate).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_any_accepts_each_kind() {
        assert!(matches!(
            validate_any("1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa"),
            Some(Address::Btc(_))
        ));
        assert!(matches!(
            validate_any("0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed"),
            Some(Address::Eth(_))
        ));
        assert!(matches!(
            validate_any("rN7n7otQDd6FczFgLdSqtcsAUxDkw6fzRH"),
            Some(Address::Xrp(_))
        ));
    }

    #[test]
    fn validate_any_rejects_noise() {
        assert!(validate_any("not an address").is_none());
        assert!(validate_any("").is_none());
        assert!(validate_any("1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNb").is_none()); // bad checksum
    }
}
