//! Unified address model across the three coins the paper analyses.

use crate::base58::{decode_check, encode_check, BTC_ALPHABET};
use crate::bech32;
use crate::eth::EthAddress;
use crate::xrp::XrpAddress;
use gt_store::{StoreDecode, StoreEncode};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The cryptocurrencies whose payments the paper quantifies.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub enum Coin {
    Btc,
    Eth,
    Xrp,
}

impl Coin {
    pub const ALL: [Coin; 3] = [Coin::Btc, Coin::Eth, Coin::Xrp];

    /// Ticker symbol, lowercase.
    pub fn ticker(self) -> &'static str {
        match self {
            Coin::Btc => "btc",
            Coin::Eth => "eth",
            Coin::Xrp => "xrp",
        }
    }

    /// Human name, lowercase.
    pub fn name(self) -> &'static str {
        match self {
            Coin::Btc => "bitcoin",
            Coin::Eth => "ethereum",
            Coin::Xrp => "ripple",
        }
    }

    /// Number of base units per coin (satoshi, wei-scaled-to-gwei*, drops).
    ///
    /// *ETH amounts are tracked in gwei (1e9 per ETH) — full wei precision
    /// would overflow u64 for whale-sized transfers and adds nothing to
    /// revenue estimation.
    pub fn base_units_per_coin(self) -> u64 {
        match self {
            Coin::Btc => 100_000_000,
            Coin::Eth => 1_000_000_000,
            Coin::Xrp => 1_000_000,
        }
    }
}

impl fmt::Display for Coin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Coin::Btc => "BTC",
            Coin::Eth => "ETH",
            Coin::Xrp => "XRP",
        })
    }
}

/// A Bitcoin address in one of the three deployed formats.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub enum BtcAddress {
    /// Pay-to-pubkey-hash (`1...`).
    P2pkh([u8; 20]),
    /// Pay-to-script-hash (`3...`).
    P2sh([u8; 20]),
    /// Native segwit v0 pay-to-witness-pubkey-hash (`bc1q...`, 20 bytes).
    P2wpkh([u8; 20]),
}

const P2PKH_VERSION: u8 = 0x00;
const P2SH_VERSION: u8 = 0x05;

impl BtcAddress {
    pub fn parse(s: &str) -> Option<Self> {
        if s.to_ascii_lowercase().starts_with("bc1") {
            let (version, program) = bech32::decode_segwit("bc", s)?;
            if version == 0 && program.len() == 20 {
                let mut arr = [0u8; 20];
                arr.copy_from_slice(&program);
                return Some(BtcAddress::P2wpkh(arr));
            }
            return None;
        }
        let payload = decode_check(s, BTC_ALPHABET)?;
        if payload.len() != 21 {
            return None;
        }
        let mut arr = [0u8; 20];
        arr.copy_from_slice(&payload[1..]);
        match payload[0] {
            P2PKH_VERSION => Some(BtcAddress::P2pkh(arr)),
            P2SH_VERSION => Some(BtcAddress::P2sh(arr)),
            _ => None,
        }
    }

    pub fn encode(&self) -> String {
        match self {
            BtcAddress::P2pkh(h) => {
                let mut payload = vec![P2PKH_VERSION];
                payload.extend_from_slice(h);
                encode_check(&payload, BTC_ALPHABET)
            }
            BtcAddress::P2sh(h) => {
                let mut payload = vec![P2SH_VERSION];
                payload.extend_from_slice(h);
                encode_check(&payload, BTC_ALPHABET)
            }
            BtcAddress::P2wpkh(h) => {
                bech32::encode_segwit("bc", 0, h).expect("20-byte v0 program is always valid")
            }
        }
    }
}

impl fmt::Display for BtcAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// A validated address of any supported coin.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub enum Address {
    Btc(BtcAddress),
    Eth(EthAddress),
    Xrp(XrpAddress),
}

/// Why a candidate failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressError {
    pub candidate: String,
}

impl fmt::Display for AddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not a valid BTC/ETH/XRP address: {:?}", self.candidate)
    }
}

impl std::error::Error for AddressError {}

impl Address {
    /// Parse a candidate as any supported address type.
    pub fn parse(s: &str) -> Result<Self, AddressError> {
        // Dispatch cheaply on the prefix; each branch still fully
        // validates checksums.
        if s.starts_with("0x") || s.starts_with("0X") {
            if let Some(a) = EthAddress::parse(s) {
                return Ok(Address::Eth(a));
            }
        } else if s.to_ascii_lowercase().starts_with("bc1")
            || s.starts_with('1')
            || s.starts_with('3')
        {
            if let Some(a) = BtcAddress::parse(s) {
                return Ok(Address::Btc(a));
            }
        }
        // XRP last: its alphabet overlaps base58 and all accounts start
        // with 'r', which neither BTC nor ETH use.
        if s.starts_with('r') {
            if let Some(a) = XrpAddress::parse(s) {
                return Ok(Address::Xrp(a));
            }
        }
        Err(AddressError {
            candidate: s.to_string(),
        })
    }

    /// Which coin this address belongs to.
    pub fn coin(&self) -> Coin {
        match self {
            Address::Btc(_) => Coin::Btc,
            Address::Eth(_) => Coin::Eth,
            Address::Xrp(_) => Coin::Xrp,
        }
    }

    /// Canonical string form (checksummed where applicable).
    pub fn encode(&self) -> String {
        match self {
            Address::Btc(a) => a.encode(),
            Address::Eth(a) => a.to_checksum_string(),
            Address::Xrp(a) => a.to_classic_string(),
        }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Deterministically mints fresh, well-formed addresses for the world
/// generator (hashes are random; no private keys exist or are needed).
#[derive(Debug)]
pub struct AddressGenerator<R: Rng> {
    rng: R,
}

impl<R: Rng> AddressGenerator<R> {
    pub fn new(rng: R) -> Self {
        AddressGenerator { rng }
    }

    fn random20(&mut self) -> [u8; 20] {
        let mut h = [0u8; 20];
        self.rng.fill(&mut h);
        h
    }

    /// A fresh address for `coin`. BTC addresses are drawn across the
    /// three formats with the rough mainnet mix (P2PKH-heavy, as scam
    /// pages in the corpus were).
    pub fn generate(&mut self, coin: Coin) -> Address {
        match coin {
            Coin::Btc => {
                let h = self.random20();
                let roll: f64 = self.rng.gen();
                Address::Btc(if roll < 0.55 {
                    BtcAddress::P2pkh(h)
                } else if roll < 0.75 {
                    BtcAddress::P2sh(h)
                } else {
                    BtcAddress::P2wpkh(h)
                })
            }
            Coin::Eth => Address::Eth(EthAddress(self.random20())),
            Coin::Xrp => Address::Xrp(XrpAddress(self.random20())),
        }
    }

    /// A fresh BTC address of a specific format.
    pub fn generate_btc_p2pkh(&mut self) -> BtcAddress {
        BtcAddress::P2pkh(self.random20())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn btc_known_addresses() {
        // The genesis block coinbase address.
        let a = BtcAddress::parse("1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa").unwrap();
        assert!(matches!(a, BtcAddress::P2pkh(_)));
        assert_eq!(a.encode(), "1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa");

        let a = BtcAddress::parse("3J98t1WpEZ73CNmQviecrnyiWrnqRhWNLy").unwrap();
        assert!(matches!(a, BtcAddress::P2sh(_)));

        let a = BtcAddress::parse("bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4").unwrap();
        assert!(matches!(a, BtcAddress::P2wpkh(_)));
    }

    #[test]
    fn btc_rejects_corruption() {
        assert!(BtcAddress::parse("1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNb").is_none());
        assert!(BtcAddress::parse("bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t5").is_none());
    }

    #[test]
    fn address_parse_dispatches() {
        assert_eq!(
            Address::parse("1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa")
                .unwrap()
                .coin(),
            Coin::Btc
        );
        assert_eq!(
            Address::parse("0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed")
                .unwrap()
                .coin(),
            Coin::Eth
        );
        assert_eq!(
            Address::parse("rHb9CJAWyB4rj91VRWn96DkukG4bwdtyTh")
                .unwrap()
                .coin(),
            Coin::Xrp
        );
        let err = Address::parse("garbage").unwrap_err();
        assert!(err.to_string().contains("garbage"));
    }

    #[test]
    fn generated_addresses_always_validate() {
        let mut gen = AddressGenerator::new(StdRng::seed_from_u64(99));
        for coin in Coin::ALL {
            for _ in 0..200 {
                let addr = gen.generate(coin);
                assert_eq!(addr.coin(), coin);
                let s = addr.encode();
                let parsed = Address::parse(&s)
                    .unwrap_or_else(|_| panic!("generated address failed validation: {s}"));
                assert_eq!(parsed, addr, "round trip mismatch for {s}");
            }
        }
    }

    #[test]
    fn generated_btc_covers_all_formats() {
        let mut gen = AddressGenerator::new(StdRng::seed_from_u64(3));
        let mut p2pkh = 0;
        let mut p2sh = 0;
        let mut segwit = 0;
        for _ in 0..300 {
            match gen.generate(Coin::Btc) {
                Address::Btc(BtcAddress::P2pkh(_)) => p2pkh += 1,
                Address::Btc(BtcAddress::P2sh(_)) => p2sh += 1,
                Address::Btc(BtcAddress::P2wpkh(_)) => segwit += 1,
                _ => unreachable!(),
            }
        }
        assert!(p2pkh > 0 && p2sh > 0 && segwit > 0);
        assert!(p2pkh > p2sh, "P2PKH should dominate the mix");
    }

    #[test]
    fn coin_metadata() {
        assert_eq!(Coin::Btc.ticker(), "btc");
        assert_eq!(Coin::Eth.name(), "ethereum");
        assert_eq!(Coin::Xrp.base_units_per_coin(), 1_000_000);
        assert_eq!(Coin::Btc.to_string(), "BTC");
    }

    #[test]
    fn display_equals_encode() {
        let mut gen = AddressGenerator::new(StdRng::seed_from_u64(5));
        for coin in Coin::ALL {
            let a = gen.generate(coin);
            assert_eq!(a.to_string(), a.encode());
        }
    }
}
