//! Base58 with pluggable alphabets, plus Base58Check.
//!
//! Bitcoin and Ripple use the same big-integer base conversion but
//! different digit alphabets (Ripple reorders so accounts start with `r`).

use gt_hash::sha256d;

/// The Bitcoin Base58 alphabet.
pub const BTC_ALPHABET: &[u8; 58] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

/// The Ripple Base58 alphabet.
pub const XRP_ALPHABET: &[u8; 58] = b"rpshnaf39wBUDNEGHJKLM4PQRST7VWXYZ2bcdeCg65jkm8oFqi1tuvAxyz";

/// Encode bytes in base58 with the given alphabet.
pub fn encode(data: &[u8], alphabet: &[u8; 58]) -> String {
    // Count leading zero bytes (encoded as the alphabet's zero digit).
    let zeros = data.iter().take_while(|&&b| b == 0).count();

    // Big-integer division in base 256 → base 58.
    let mut digits: Vec<u8> = Vec::with_capacity(data.len() * 138 / 100 + 1);
    for &byte in &data[zeros..] {
        let mut carry = byte as u32;
        for d in digits.iter_mut() {
            carry += (*d as u32) << 8;
            *d = (carry % 58) as u8;
            carry /= 58;
        }
        while carry > 0 {
            digits.push((carry % 58) as u8);
            carry /= 58;
        }
    }

    let mut out = String::with_capacity(zeros + digits.len());
    for _ in 0..zeros {
        out.push(alphabet[0] as char);
    }
    for &d in digits.iter().rev() {
        out.push(alphabet[d as usize] as char);
    }
    out
}

/// Decode a base58 string with the given alphabet.
pub fn decode(s: &str, alphabet: &[u8; 58]) -> Option<Vec<u8>> {
    let mut index = [255u8; 128];
    for (i, &c) in alphabet.iter().enumerate() {
        index[c as usize] = i as u8;
    }

    let zeros = s.bytes().take_while(|&b| b == alphabet[0]).count();

    let mut bytes: Vec<u8> = Vec::with_capacity(s.len());
    for c in s.bytes().skip(zeros) {
        if c as usize >= 128 {
            return None;
        }
        let digit = index[c as usize];
        if digit == 255 {
            return None;
        }
        let mut carry = digit as u32;
        for b in bytes.iter_mut() {
            carry += (*b as u32) * 58;
            *b = (carry & 0xff) as u8;
            carry >>= 8;
        }
        while carry > 0 {
            bytes.push((carry & 0xff) as u8);
            carry >>= 8;
        }
    }

    let mut out = vec![0u8; zeros];
    out.extend(bytes.iter().rev());
    Some(out)
}

/// Encode with a 4-byte double-SHA256 checksum appended (Base58Check).
pub fn encode_check(payload: &[u8], alphabet: &[u8; 58]) -> String {
    let checksum = sha256d(payload);
    let mut data = Vec::with_capacity(payload.len() + 4);
    data.extend_from_slice(payload);
    data.extend_from_slice(&checksum[..4]);
    encode(&data, alphabet)
}

/// Decode and verify a Base58Check string, returning the payload without
/// the checksum.
pub fn decode_check(s: &str, alphabet: &[u8; 58]) -> Option<Vec<u8>> {
    let data = decode(s, alphabet)?;
    if data.len() < 4 {
        return None;
    }
    let (payload, checksum) = data.split_at(data.len() - 4);
    let expected = sha256d(payload);
    if &expected[..4] != checksum {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_hash::hex::from_hex;

    #[test]
    fn btc_alphabet_known_vectors() {
        // From the Bitcoin Core base58 test vectors.
        let cases: &[(&str, &str)] = &[
            ("", ""),
            ("61", "2g"),
            ("626262", "a3gV"),
            ("636363", "aPEr"),
            (
                "73696d706c792061206c6f6e6720737472696e67",
                "2cFupjhnEsSn59qHXstmK2ffpLv2",
            ),
            (
                "00eb15231dfceb60925886b67d065299925915aeb172c06647",
                "1NS17iag9jJgTHD1VXjvLCEnZuQ3rJDE9L",
            ),
            ("516b6fcd0f", "ABnLTmg"),
            ("bf4f89001e670274dd", "3SEo3LWLoPntC"),
            ("572e4794", "3EFU7m"),
            ("ecac89cad93923c02321", "EJDM8drfXA6uyA"),
            ("10c8511e", "Rt5zm"),
            ("00000000000000000000", "1111111111"),
        ];
        for (hex, b58) in cases {
            let bytes = from_hex(hex).unwrap();
            assert_eq!(encode(&bytes, BTC_ALPHABET), *b58, "encode {hex}");
            assert_eq!(decode(b58, BTC_ALPHABET).unwrap(), bytes, "decode {b58}");
        }
    }

    #[test]
    fn decode_rejects_invalid_chars() {
        assert!(decode("0OIl", BTC_ALPHABET).is_none());
        assert!(decode("hello world", BTC_ALPHABET).is_none());
        assert!(decode("ab\u{00e9}", BTC_ALPHABET).is_none());
    }

    #[test]
    fn check_round_trip() {
        let payload = [
            0x00, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20,
        ];
        let encoded = encode_check(&payload, BTC_ALPHABET);
        assert_eq!(decode_check(&encoded, BTC_ALPHABET).unwrap(), payload);
    }

    #[test]
    fn check_detects_single_char_corruption() {
        let payload = [0x00u8; 21];
        let encoded = encode_check(&payload, BTC_ALPHABET);
        let mut chars: Vec<char> = encoded.chars().collect();
        // Flip one character to a different alphabet char.
        let replacement = if chars[5] == 'z' { 'x' } else { 'z' };
        chars[5] = replacement;
        let corrupted: String = chars.into_iter().collect();
        assert!(decode_check(&corrupted, BTC_ALPHABET).is_none());
    }

    #[test]
    fn check_rejects_too_short() {
        assert!(decode_check("2g", BTC_ALPHABET).is_none());
    }

    #[test]
    fn xrp_alphabet_round_trip() {
        let data = [0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03];
        let encoded = encode(&data, XRP_ALPHABET);
        assert_eq!(decode(&encoded, XRP_ALPHABET).unwrap(), data);
        // Leading zero byte maps to 'r' in the Ripple alphabet.
        assert!(encoded.starts_with('r'));
    }

    #[test]
    fn alphabets_are_incompatible() {
        let data = [1u8, 2, 3, 4, 5];
        let b = encode(&data, BTC_ALPHABET);
        // Same string decoded under the other alphabet gives different bytes
        // (or fails), never silently the same payload.
        if let Some(x) = decode(&b, XRP_ALPHABET) {
            assert_ne!(x, data);
        }
    }
}
