//! Bech32 / Bech32m (BIP-173, BIP-350) and segwit address codecs.

const CHARSET: &[u8; 32] = b"qpzry9x8gf2tvdw0s3jn54khce6mua7l";
const GEN: [u32; 5] = [
    0x3b6a_57b2,
    0x2650_8e6d,
    0x1ea1_19fa,
    0x3d42_33dd,
    0x2a14_62b3,
];

const BECH32_CONST: u32 = 1;
const BECH32M_CONST: u32 = 0x2bc8_30a3;

/// Which checksum variant a string carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    Bech32,
    Bech32m,
}

fn polymod(values: &[u8]) -> u32 {
    let mut chk: u32 = 1;
    for &v in values {
        let b = chk >> 25;
        chk = ((chk & 0x1ff_ffff) << 5) ^ u32::from(v);
        for (i, &g) in GEN.iter().enumerate() {
            if (b >> i) & 1 == 1 {
                chk ^= g;
            }
        }
    }
    chk
}

fn hrp_expand(hrp: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(hrp.len() * 2 + 1);
    for b in hrp.bytes() {
        out.push(b >> 5);
    }
    out.push(0);
    for b in hrp.bytes() {
        out.push(b & 31);
    }
    out
}

/// Encode 5-bit data with the given HRP and checksum variant.
pub fn encode(hrp: &str, data: &[u8], variant: Variant) -> String {
    let constant = match variant {
        Variant::Bech32 => BECH32_CONST,
        Variant::Bech32m => BECH32M_CONST,
    };
    let mut values = hrp_expand(hrp);
    values.extend_from_slice(data);
    values.extend_from_slice(&[0u8; 6]);
    let plm = polymod(&values) ^ constant;
    let mut out = String::with_capacity(hrp.len() + 1 + data.len() + 6);
    out.push_str(hrp);
    out.push('1');
    for &d in data {
        out.push(CHARSET[d as usize] as char);
    }
    for i in 0..6 {
        out.push(CHARSET[((plm >> (5 * (5 - i))) & 31) as usize] as char);
    }
    out
}

/// Decode a bech32(m) string into (hrp, 5-bit data, variant).
pub fn decode(s: &str) -> Option<(String, Vec<u8>, Variant)> {
    // Reject mixed case, then fold.
    if s.bytes().any(|b| b.is_ascii_uppercase()) && s.bytes().any(|b| b.is_ascii_lowercase()) {
        return None;
    }
    let s = s.to_ascii_lowercase();
    if s.len() > 90 {
        return None;
    }
    let sep = s.rfind('1')?;
    if sep == 0 || sep + 7 > s.len() {
        return None;
    }
    let (hrp, rest) = s.split_at(sep);
    let rest = &rest[1..];
    if hrp.bytes().any(|b| !(33..=126).contains(&b)) {
        return None;
    }
    let mut data = Vec::with_capacity(rest.len());
    for c in rest.bytes() {
        let pos = CHARSET.iter().position(|&x| x == c)?;
        data.push(pos as u8);
    }
    let mut values = hrp_expand(hrp);
    values.extend_from_slice(&data);
    let variant = match polymod(&values) {
        BECH32_CONST => Variant::Bech32,
        BECH32M_CONST => Variant::Bech32m,
        _ => return None,
    };
    data.truncate(data.len() - 6);
    Some((hrp.to_string(), data, variant))
}

/// Regroup bits, e.g. 8-bit bytes ↔ 5-bit groups.
pub fn convert_bits(data: &[u8], from: u32, to: u32, pad: bool) -> Option<Vec<u8>> {
    let mut acc: u32 = 0;
    let mut bits: u32 = 0;
    let maxv: u32 = (1 << to) - 1;
    let mut out = Vec::new();
    for &value in data {
        if u32::from(value) >> from != 0 {
            return None;
        }
        acc = (acc << from) | u32::from(value);
        bits += from;
        while bits >= to {
            bits -= to;
            out.push(((acc >> bits) & maxv) as u8);
        }
    }
    if pad {
        if bits > 0 {
            out.push(((acc << (to - bits)) & maxv) as u8);
        }
    } else if bits >= from || ((acc << (to - bits)) & maxv) != 0 {
        return None;
    }
    Some(out)
}

/// Encode a segwit address (witness version + program) for an HRP
/// (`"bc"` for Bitcoin mainnet).
pub fn encode_segwit(hrp: &str, witness_version: u8, program: &[u8]) -> Option<String> {
    if witness_version > 16 {
        return None;
    }
    if program.len() < 2 || program.len() > 40 {
        return None;
    }
    if witness_version == 0 && program.len() != 20 && program.len() != 32 {
        return None;
    }
    let variant = if witness_version == 0 {
        Variant::Bech32
    } else {
        Variant::Bech32m
    };
    let mut data = vec![witness_version];
    data.extend(convert_bits(program, 8, 5, true)?);
    Some(encode(hrp, &data, variant))
}

/// Decode and validate a segwit address, returning (witness version,
/// program).
pub fn decode_segwit(expected_hrp: &str, addr: &str) -> Option<(u8, Vec<u8>)> {
    let (hrp, data, variant) = decode(addr)?;
    if hrp != expected_hrp || data.is_empty() {
        return None;
    }
    let version = data[0];
    if version > 16 {
        return None;
    }
    let expected_variant = if version == 0 {
        Variant::Bech32
    } else {
        Variant::Bech32m
    };
    if variant != expected_variant {
        return None;
    }
    let program = convert_bits(&data[1..], 5, 8, false)?;
    if program.len() < 2 || program.len() > 40 {
        return None;
    }
    if version == 0 && program.len() != 20 && program.len() != 32 {
        return None;
    }
    Some((version, program))
}

#[cfg(test)]
mod tests {
    use super::*;

    // BIP-173 valid test vectors.
    #[test]
    fn valid_bech32_strings() {
        for s in [
            "A12UEL5L",
            "an83characterlonghumanreadablepartthatcontainsthenumber1andtheexcludedcharactersbio1tt5tgs",
            "abcdef1qpzry9x8gf2tvdw0s3jn54khce6mua7lmqqqxw",
            "11qqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqc8247j",
            "split1checkupstagehandshakeupstreamerranterredcaperred2y9e3w",
        ] {
            assert!(decode(s).is_some(), "{s} should decode");
        }
    }

    #[test]
    fn invalid_bech32_strings() {
        for s in [
            " 1nwldj5",      // HRP char out of range
            "pzry9x0s0muk",  // no separator
            "1pzry9x0s0muk", // empty HRP
            "x1b4n0q5v",     // invalid data char
            "li1dgmt3",      // too-short checksum
            "A1G7SGD8",      // checksum calculated with uppercase HRP
            "10a06t8",       // empty HRP
            "1qzzfhee",      // empty HRP
            "abc1DEF2x6tnr", // mixed case
        ] {
            assert!(decode(s).is_none(), "{s} should fail");
        }
    }

    // BIP-173/350 segwit address vectors.
    #[test]
    fn valid_segwit_addresses() {
        let (v, prog) = decode_segwit("bc", "BC1QW508D6QEJXTDG4Y5R3ZARVARY0C5XW7KV8F3T4").unwrap();
        assert_eq!(v, 0);
        assert_eq!(prog.len(), 20);

        let (v, prog) = decode_segwit(
            "bc",
            "bc1pw508d6qejxtdg4y5r3zarvary0c5xw7kw508d6qejxtdg4y5r3zarvary0c5xw7kt5nd6y",
        )
        .unwrap();
        assert_eq!(v, 1);
        assert_eq!(prog.len(), 40);

        // P2WSH (32-byte program).
        let (v, prog) = decode_segwit(
            "bc",
            "bc1qrp33g0q5c5txsp9arysrx4k6zdkfs4nce4xj0gdcccefvpysxf3qccfmv3",
        )
        .unwrap();
        assert_eq!(v, 0);
        assert_eq!(prog.len(), 32);
    }

    #[test]
    fn invalid_segwit_addresses() {
        for s in [
            // wrong hrp for mainnet check
            "tb1qw508d6qejxtdg4y5r3zarvary0c5xw7kxpjzsx",
            // v0 with bech32m checksum (BIP-350 invalid vector)
            "bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kemeawh",
            // v1 with bech32 checksum
            "bc1p38j9r5y49hruaue7wxjce0updqjuyyx0kh56v8s25huc6995vvpql3jow4",
            // invalid witness version 17 is unencodable, but a bad program length:
            "bc1pw5dgrnzv",
        ] {
            assert!(decode_segwit("bc", s).is_none(), "{s} should fail");
        }
    }

    #[test]
    fn segwit_round_trip() {
        let program: Vec<u8> = (0u8..20).collect();
        let addr = encode_segwit("bc", 0, &program).unwrap();
        assert!(addr.starts_with("bc1q"));
        let (v, p) = decode_segwit("bc", &addr).unwrap();
        assert_eq!(v, 0);
        assert_eq!(p, program);

        let program32: Vec<u8> = (0u8..32).collect();
        let addr = encode_segwit("bc", 1, &program32).unwrap();
        assert!(addr.starts_with("bc1p"));
        let (v, p) = decode_segwit("bc", &addr).unwrap();
        assert_eq!(v, 1);
        assert_eq!(p, program32);
    }

    #[test]
    fn encode_segwit_rejects_bad_inputs() {
        assert!(encode_segwit("bc", 17, &[0u8; 20]).is_none());
        assert!(encode_segwit("bc", 0, &[0u8; 19]).is_none());
        assert!(encode_segwit("bc", 1, &[0u8; 41]).is_none());
        assert!(encode_segwit("bc", 1, &[0u8; 1]).is_none());
    }

    #[test]
    fn convert_bits_round_trip() {
        let bytes: Vec<u8> = (0u8..=255).collect();
        let five = convert_bits(&bytes, 8, 5, true).unwrap();
        let back = convert_bits(&five, 5, 8, false).unwrap();
        assert_eq!(back, bytes);
    }

    #[test]
    fn convert_bits_rejects_out_of_range() {
        assert!(convert_bits(&[32], 5, 8, false).is_none());
    }
}
