//! XRP Ledger classic addresses.
//!
//! A classic address is Base58Check over the Ripple alphabet with a single
//! `0x00` version byte and a 20-byte account id; the leading zero encodes
//! as `r`, which is why every XRP account starts with it.

use crate::base58::{decode_check, encode_check, XRP_ALPHABET};
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::fmt;

const ACCOUNT_ID_VERSION: u8 = 0x00;

/// A 20-byte XRP account id.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub struct XrpAddress(pub [u8; 20]);

impl XrpAddress {
    /// Parse a classic address string.
    pub fn parse(s: &str) -> Option<Self> {
        if !s.starts_with('r') || s.len() < 25 || s.len() > 35 {
            return None;
        }
        let payload = decode_check(s, XRP_ALPHABET)?;
        if payload.len() != 21 || payload[0] != ACCOUNT_ID_VERSION {
            return None;
        }
        let mut arr = [0u8; 20];
        arr.copy_from_slice(&payload[1..]);
        Some(XrpAddress(arr))
    }

    /// Encode as a classic address string.
    pub fn to_classic_string(&self) -> String {
        let mut payload = Vec::with_capacity(21);
        payload.push(ACCOUNT_ID_VERSION);
        payload.extend_from_slice(&self.0);
        encode_check(&payload, XRP_ALPHABET)
    }
}

impl fmt::Display for XrpAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_classic_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_addresses_parse() {
        // The XRPL "ACCOUNT_ZERO" and "ACCOUNT_ONE" special addresses.
        let zero = XrpAddress::parse("rrrrrrrrrrrrrrrrrrrrrhoLvTp").unwrap();
        assert_eq!(zero.0, [0u8; 20]);

        let one = XrpAddress::parse("rrrrrrrrrrrrrrrrrrrrBZbvji").unwrap();
        let mut expected = [0u8; 20];
        expected[19] = 1;
        assert_eq!(one.0, expected);

        // The genesis account.
        assert!(XrpAddress::parse("rHb9CJAWyB4rj91VRWn96DkukG4bwdtyTh").is_some());
    }

    #[test]
    fn round_trip() {
        let addr = XrpAddress([
            1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20,
        ]);
        let s = addr.to_classic_string();
        assert!(s.starts_with('r'), "classic addresses start with r: {s}");
        assert_eq!(XrpAddress::parse(&s).unwrap(), addr);
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let addr = XrpAddress([7u8; 20]);
        let s = addr.to_classic_string();
        let mut chars: Vec<char> = s.chars().collect();
        let last = chars.len() - 1;
        chars[last] = if chars[last] == 'p' { 's' } else { 'p' };
        let corrupted: String = chars.into_iter().collect();
        assert!(XrpAddress::parse(&corrupted).is_none());
    }

    #[test]
    fn rejects_btc_style_strings() {
        assert!(XrpAddress::parse("1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa").is_none());
        assert!(XrpAddress::parse("0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed").is_none());
        assert!(XrpAddress::parse("").is_none());
    }

    #[test]
    fn display_matches_classic_string() {
        let addr = XrpAddress([0xabu8; 20]);
        assert_eq!(addr.to_string(), addr.to_classic_string());
    }
}
