//! Ethereum addresses with EIP-55 mixed-case checksums.

use gt_hash::hex::{from_hex, to_hex};
use gt_hash::keccak256;
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 20-byte Ethereum account address.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub struct EthAddress(pub [u8; 20]);

impl EthAddress {
    /// Parse `0x`-prefixed hex. Mixed-case input must satisfy EIP-55;
    /// all-lowercase and all-uppercase inputs are accepted without a
    /// checksum (as the original validators do).
    pub fn parse(s: &str) -> Option<Self> {
        let hex_part = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"))?;
        if hex_part.len() != 40 {
            return None;
        }
        let bytes = from_hex(&hex_part.to_ascii_lowercase())?;
        let mut arr = [0u8; 20];
        arr.copy_from_slice(&bytes);
        let addr = EthAddress(arr);

        let has_upper = hex_part.bytes().any(|b| b.is_ascii_uppercase());
        let has_lower = hex_part.bytes().any(|b| b.is_ascii_lowercase());
        if has_upper && has_lower {
            // Mixed case: must match the EIP-55 checksum exactly.
            if addr.to_checksum_string()[2..] != *hex_part {
                return None;
            }
        }
        Some(addr)
    }

    /// The EIP-55 checksummed representation (`0x`-prefixed).
    pub fn to_checksum_string(&self) -> String {
        let lower = to_hex(&self.0);
        let digest = keccak256(lower.as_bytes());
        let mut out = String::with_capacity(42);
        out.push_str("0x");
        for (i, c) in lower.chars().enumerate() {
            let nibble = (digest[i / 2] >> (4 * (1 - i % 2))) & 0xf;
            if c.is_ascii_alphabetic() && nibble >= 8 {
                out.push(c.to_ascii_uppercase());
            } else {
                out.push(c);
            }
        }
        out
    }
}

impl fmt::Display for EthAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_checksum_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The four all-caps / all-lower fixtures plus the mixed examples
    // straight from the EIP-55 specification.
    const EIP55_FIXTURES: &[&str] = &[
        "0x52908400098527886E0F7030069857D2E4169EE7",
        "0x8617E340B3D01FA5F11F306F4090FD50E238070D",
        "0xde709f2102306220921060314715629080e2fb77",
        "0x27b1fdb04752bbc536007a920d24acb045561c26",
        "0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed",
        "0xfB6916095ca1df60bB79Ce92cE3Ea74c37c5d359",
        "0xdbF03B407c01E7cD3CBea99509d93f8DDDC8C6FB",
        "0xD1220A0cf47c7B9Be7A2E6BA89F429762e7b9aDb",
    ];

    #[test]
    fn eip55_fixtures_round_trip() {
        for fixture in EIP55_FIXTURES {
            let addr =
                EthAddress::parse(fixture).unwrap_or_else(|| panic!("{fixture} should parse"));
            assert_eq!(addr.to_checksum_string(), *fixture, "checksum of {fixture}");
        }
    }

    #[test]
    fn wrong_mixed_case_rejected() {
        // Flip the case of one letter in a checksummed fixture.
        let bad = "0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAeD";
        assert!(EthAddress::parse(bad).is_none());
    }

    #[test]
    fn all_lowercase_accepted() {
        let addr = EthAddress::parse("0x5aaeb6053f3e94c9b9a09f33669435e7ef1beaed").unwrap();
        assert_eq!(
            addr.to_checksum_string(),
            "0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed"
        );
    }

    #[test]
    fn all_uppercase_accepted() {
        assert!(EthAddress::parse("0x5AAEB6053F3E94C9B9A09F33669435E7EF1BEAED").is_some());
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(EthAddress::parse("5aaeb6053f3e94c9b9a09f33669435e7ef1beaed").is_none()); // no 0x
        assert!(EthAddress::parse("0x5aaeb6053f3e94c9b9a09f33669435e7ef1beae").is_none()); // 39
        assert!(EthAddress::parse("0x5aaeb6053f3e94c9b9a09f33669435e7ef1beaedd").is_none()); // 41
        assert!(EthAddress::parse("0xzz aeb6053f3e94c9b9a09f33669435e7ef1bea").is_none());
        assert!(EthAddress::parse("").is_none());
    }

    #[test]
    fn display_is_checksummed() {
        let addr = EthAddress::parse("0xfb6916095ca1df60bb79ce92ce3ea74c37c5d359").unwrap();
        assert_eq!(
            addr.to_string(),
            "0xfB6916095ca1df60bB79Ce92cE3Ea74c37c5d359"
        );
    }
}
