//! Property-based tests for the address codecs.

use gt_addr::base58::{self, BTC_ALPHABET, XRP_ALPHABET};
use gt_addr::bech32;
use gt_addr::{Address, BtcAddress, EthAddress, XrpAddress};
use proptest::prelude::*;

proptest! {
    #[test]
    fn base58_round_trips_btc(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let encoded = base58::encode(&data, BTC_ALPHABET);
        prop_assert_eq!(base58::decode(&encoded, BTC_ALPHABET).unwrap(), data);
    }

    #[test]
    fn base58_round_trips_xrp(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let encoded = base58::encode(&data, XRP_ALPHABET);
        prop_assert_eq!(base58::decode(&encoded, XRP_ALPHABET).unwrap(), data);
    }

    #[test]
    fn base58check_round_trips(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let encoded = base58::encode_check(&data, BTC_ALPHABET);
        prop_assert_eq!(base58::decode_check(&encoded, BTC_ALPHABET).unwrap(), data);
    }

    #[test]
    fn base58check_detects_truncation(data in proptest::collection::vec(any::<u8>(), 1..64)) {
        let encoded = base58::encode_check(&data, BTC_ALPHABET);
        let truncated = &encoded[..encoded.len() - 1];
        // Truncation may accidentally decode, but never to the same payload.
        if let Some(p) = base58::decode_check(truncated, BTC_ALPHABET) {
            prop_assert_ne!(p, data);
        }
    }

    #[test]
    fn bech32_round_trips(hrp in "[a-z]{1,10}", data in proptest::collection::vec(0u8..32, 0..50)) {
        for variant in [bech32::Variant::Bech32, bech32::Variant::Bech32m] {
            let s = bech32::encode(&hrp, &data, variant);
            let (h2, d2, v2) = bech32::decode(&s).unwrap();
            prop_assert_eq!(&h2, &hrp);
            prop_assert_eq!(&d2, &data);
            prop_assert_eq!(v2, variant);
        }
    }

    #[test]
    fn segwit_round_trips(version in 0u8..=16, len in 2usize..=40) {
        // v0 only allows 20- or 32-byte programs.
        prop_assume!(version != 0 || len == 20 || len == 32);
        let program: Vec<u8> = (0..len).map(|i| (i * 7 + version as usize) as u8).collect();
        let addr = bech32::encode_segwit("bc", version, &program).unwrap();
        let (v, p) = bech32::decode_segwit("bc", &addr).unwrap();
        prop_assert_eq!(v, version);
        prop_assert_eq!(p, program);
    }

    #[test]
    fn btc_addresses_round_trip(hash in any::<[u8; 20]>(), kind in 0u8..3) {
        let addr = match kind {
            0 => BtcAddress::P2pkh(hash),
            1 => BtcAddress::P2sh(hash),
            _ => BtcAddress::P2wpkh(hash),
        };
        let s = addr.encode();
        prop_assert_eq!(BtcAddress::parse(&s).unwrap(), addr);
        // And through the unified parser.
        prop_assert_eq!(Address::parse(&s).unwrap(), Address::Btc(addr));
    }

    #[test]
    fn eth_addresses_round_trip(bytes in any::<[u8; 20]>()) {
        let addr = EthAddress(bytes);
        let s = addr.to_checksum_string();
        prop_assert_eq!(EthAddress::parse(&s).unwrap(), addr);
        // Lowercase form also accepted.
        prop_assert_eq!(EthAddress::parse(&s.to_ascii_lowercase()).unwrap(), addr);
    }

    #[test]
    fn xrp_addresses_round_trip(bytes in any::<[u8; 20]>()) {
        let addr = XrpAddress(bytes);
        let s = addr.to_classic_string();
        prop_assert!(s.starts_with('r'));
        prop_assert_eq!(XrpAddress::parse(&s).unwrap(), addr);
    }

    #[test]
    fn parse_never_panics_on_ascii_noise(s in "[ -~]{0,60}") {
        let _ = Address::parse(&s);
    }

    #[test]
    fn distinct_hashes_distinct_addresses(a in any::<[u8; 20]>(), b in any::<[u8; 20]>()) {
        prop_assume!(a != b);
        prop_assert_ne!(BtcAddress::P2pkh(a).encode(), BtcAddress::P2pkh(b).encode());
        prop_assert_ne!(EthAddress(a).to_checksum_string(), EthAddress(b).to_checksum_string());
        prop_assert_ne!(XrpAddress(a).to_classic_string(), XrpAddress(b).to_classic_string());
    }
}
