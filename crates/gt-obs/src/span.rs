//! Nestable wall-clock spans.
//!
//! A [`SpanGuard`] opens on creation and records itself into the
//! registry when dropped, so nesting follows Rust scopes: the guard for
//! an inner span always closes before its enclosing guard ("every enter
//! has an exit" by construction). Each OS thread gets a stable *lane*
//! number (the `tid` in Chrome-trace terms) and a depth counter, both
//! thread-local, so spans on one lane are properly nested intervals.

use crate::metrics::Inner;
use crate::snapshot::SpanSnap;
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Process-wide lane allocator: the first span on each thread claims
/// the next id.
static NEXT_LANE: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static LANE: Cell<Option<u32>> = const { Cell::new(None) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn current_lane() -> u32 {
    LANE.with(|l| match l.get() {
        Some(id) => id,
        None => {
            let id = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            l.set(Some(id));
            id
        }
    })
}

/// A closed span, as stored in the registry.
#[derive(Debug, Clone)]
pub(crate) struct SpanRecord {
    pub name: String,
    pub cat: &'static str,
    pub lane: u32,
    pub depth: u32,
    /// Microseconds since the registry epoch.
    pub start_us: u64,
    pub dur_us: u64,
    /// Sim-clock second the work models, when the caller knows it.
    pub sim_ts: Option<i64>,
}

impl SpanRecord {
    pub(crate) fn snap(&self) -> SpanSnap {
        SpanSnap {
            name: self.name.clone(),
            cat: self.cat.to_string(),
            lane: self.lane,
            depth: self.depth,
            start_us: self.start_us,
            dur_us: self.dur_us,
            sim_ts: self.sim_ts,
        }
    }
}

/// An open span; records itself on drop. Obtained from
/// [`MetricsRegistry::span`](crate::MetricsRegistry::span) or
/// [`StageSink::span`](crate::StageSink::span). Deliberately `!Send`:
/// the lane/depth bookkeeping is thread-local.
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    name: String,
    cat: &'static str,
    lane: u32,
    depth: u32,
    started: Instant,
    sim_ts: Option<i64>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    pub(crate) fn open(
        inner: Option<Arc<Inner>>,
        name: &str,
        cat: &'static str,
        sim_ts: Option<i64>,
    ) -> SpanGuard {
        let (lane, depth) = if inner.is_some() {
            let depth = DEPTH.with(|d| {
                let depth = d.get();
                d.set(depth + 1);
                depth
            });
            (current_lane(), depth)
        } else {
            (0, 0)
        };
        SpanGuard {
            inner,
            name: name.to_string(),
            cat,
            lane,
            depth,
            started: Instant::now(),
            sim_ts,
            _not_send: PhantomData,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let start_us = self
            .started
            .saturating_duration_since(inner.epoch)
            .as_micros() as u64;
        let dur_us = self.started.elapsed().as_micros() as u64;
        inner.spans.lock().push(SpanRecord {
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            lane: self.lane,
            depth: self.depth,
            start_us,
            dur_us,
            sim_ts: self.sim_ts,
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::metrics::MetricsRegistry;

    #[test]
    fn spans_nest_by_scope() {
        let reg = MetricsRegistry::new();
        {
            let _outer = reg.span("outer", "stage");
            let _inner = reg.span("inner", "substrate");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.wall.spans.len(), 2);
        let outer = snap.wall.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = snap.wall.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.lane, inner.lane);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
    }

    #[test]
    fn disabled_spans_cost_nothing_and_record_nothing() {
        let reg = MetricsRegistry::disabled();
        let _span = reg.span("ghost", "stage");
        assert!(reg.snapshot().wall.spans.is_empty());
    }
}
