//! The frozen, serializable view of a registry, plus Chrome-trace
//! export.

use crate::metrics::Histogram;
use serde::Serialize;

/// One metric cell, flattened for serialization. Rows arrive sorted by
/// `(stage, substrate, metric)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct MetricRow {
    pub stage: String,
    pub substrate: String,
    pub metric: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// Counter sum, gauge maximum, or histogram observation count.
    pub value: u64,
    /// Bucket detail for histogram rows.
    pub hist: Option<Histogram>,
}

/// One recorded span. Wall-clock; lives in [`WallBlock`] only.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SpanSnap {
    pub name: String,
    /// `"stage"` for executor stage spans, `"substrate"` for nested
    /// driver spans.
    pub cat: String,
    /// Worker-thread lane (`tid` in a Chrome trace).
    pub lane: u32,
    /// Nesting depth within the lane at open time.
    pub depth: u32,
    /// Microseconds since the run's registry epoch.
    pub start_us: u64,
    pub dur_us: u64,
    /// Sim-clock second the work models, when known.
    pub sim_ts: Option<i64>,
}

/// Wall-clock telemetry — **excluded from determinism checks**. Span
/// counts, lanes, and durations all legitimately vary with thread count
/// and machine load; nothing in here may feed back into `metrics`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct WallBlock {
    /// Registry lifetime in milliseconds at snapshot time.
    pub total_ms: f64,
    pub spans: Vec<SpanSnap>,
}

/// Everything a run's registry knew, split by determinism class:
/// `metrics` is byte-identical across thread counts, `wall` is not.
/// Embedded in `PaperRun` and the experiments JSON — never in
/// `PaperReport`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TelemetrySnapshot {
    pub enabled: bool,
    /// Sim-derived metric rows, sorted by `(stage, substrate, metric)`.
    pub metrics: Vec<MetricRow>,
    /// Wall-clock spans; excluded from determinism tests.
    pub wall: WallBlock,
}

#[derive(Serialize)]
struct TraceArgs {
    depth: u32,
    sim_ts: Option<i64>,
}

#[derive(Serialize)]
struct TraceEvent {
    name: String,
    cat: String,
    ph: String,
    ts: u64,
    dur: u64,
    pid: u32,
    tid: u32,
    args: TraceArgs,
}

#[allow(non_snake_case)]
#[derive(Serialize)]
struct TraceFile {
    traceEvents: Vec<TraceEvent>,
    displayTimeUnit: String,
}

impl TelemetrySnapshot {
    /// Counter value at `(stage, substrate, metric)`, if recorded.
    pub fn counter(&self, stage: &str, substrate: &str, metric: &str) -> Option<u64> {
        self.row(stage, substrate, metric).map(|r| r.value)
    }

    /// The row at `(stage, substrate, metric)`, if recorded.
    pub fn row(&self, stage: &str, substrate: &str, metric: &str) -> Option<&MetricRow> {
        self.metrics
            .iter()
            .find(|r| r.stage == stage && r.substrate == substrate && r.metric == metric)
    }

    /// Sum of `metric` across all stages for one substrate.
    pub fn substrate_total(&self, substrate: &str, metric: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|r| r.substrate == substrate && r.metric == metric && r.kind == "counter")
            .map(|r| r.value)
            .sum()
    }

    /// Render the span block as Chrome `trace_event` JSON (complete
    /// `"X"` events, microsecond timestamps) loadable in Perfetto or
    /// `about:tracing`. Zero-duration spans are widened to 1 µs so they
    /// stay visible.
    pub fn chrome_trace_json(&self) -> String {
        let events = self
            .wall
            .spans
            .iter()
            .map(|s| TraceEvent {
                name: s.name.clone(),
                cat: s.cat.clone(),
                ph: "X".to_string(),
                ts: s.start_us,
                dur: s.dur_us.max(1),
                pid: 1,
                tid: s.lane,
                args: TraceArgs {
                    depth: s.depth,
                    sim_ts: s.sim_ts,
                },
            })
            .collect();
        serde_json::to_string(&TraceFile {
            traceEvents: events,
            displayTimeUnit: "ms".to_string(),
        })
        .expect("trace serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn chrome_trace_has_complete_events() {
        let reg = MetricsRegistry::new();
        {
            let _s = reg.span("chain_analysis", "stage");
        }
        let json = reg.snapshot().chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"chain_analysis\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    }

    #[test]
    fn helpers_find_rows() {
        let reg = MetricsRegistry::new();
        reg.counter_add("a", "yt", "calls", 2);
        reg.counter_add("b", "yt", "calls", 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a", "yt", "calls"), Some(2));
        assert_eq!(snap.counter("a", "yt", "missing"), None);
        assert_eq!(snap.substrate_total("yt", "calls"), 5);
    }
}
