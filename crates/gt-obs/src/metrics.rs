//! Registry, per-stage sinks, and the lock-free local accumulator.

use crate::snapshot::{MetricRow, SpanSnap, TelemetrySnapshot, WallBlock};
use crate::span::{SpanGuard, SpanRecord};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Bucket edges (seconds) for backoff-sleep histograms. Powers of two
/// track the exponential retry schedule; the last bucket is overflow.
pub const BACKOFF_BUCKET_EDGES: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// Bucket edges (items) for per-call record-count histograms.
pub const RECORD_BUCKET_EDGES: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

/// A fixed-bucket histogram. `counts[i]` holds observations `<=
/// edges[i]`; the final slot counts overflow. Edges are fixed at
/// construction so merging is exact and the serialized form is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Histogram {
    /// Inclusive upper bucket bounds, ascending.
    pub edges: Vec<u64>,
    /// Per-bucket observation counts; `len == edges.len() + 1`.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl Histogram {
    pub fn new(edges: &[u64]) -> Self {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must ascend");
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    pub fn observe(&mut self, value: u64) {
        let slot = self
            .edges
            .iter()
            .position(|&e| value <= e)
            .unwrap_or(self.edges.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Fold `other` into `self`.
    ///
    /// # Panics
    /// If the bucket edges differ — merging across layouts would be
    /// silently lossy.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.edges, other.edges, "histogram bucket edges differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// One metric cell inside the registry.
#[derive(Debug, Clone)]
enum MetricCell {
    /// Monotonic sum.
    Counter(u64),
    /// Maximum observed value (max is order-free, so gauges stay
    /// deterministic under concurrent flushes).
    Gauge(u64),
    Hist(Histogram),
}

type MetricKey = (String, String, String); // (stage, substrate, metric)

/// A local, lock-free accumulator a driver fills during its run and
/// flushes to the registry once ([`StageSink::flush`]). Keys are
/// `(substrate, metric)`; the owning sink supplies the stage.
#[derive(Debug, Clone, Default)]
pub struct MetricSheet {
    counters: BTreeMap<(&'static str, &'static str), u64>,
    gauges: BTreeMap<(&'static str, &'static str), u64>,
    hists: BTreeMap<(&'static str, &'static str), Histogram>,
}

impl MetricSheet {
    pub fn new() -> Self {
        MetricSheet::default()
    }

    /// Add to a counter.
    pub fn add(&mut self, substrate: &'static str, metric: &'static str, value: u64) {
        *self.counters.entry((substrate, metric)).or_insert(0) += value;
    }

    /// Raise a max-gauge.
    pub fn gauge_max(&mut self, substrate: &'static str, metric: &'static str, value: u64) {
        let cell = self.gauges.entry((substrate, metric)).or_insert(0);
        *cell = (*cell).max(value);
    }

    /// Observe into a fixed-bucket histogram (created on first use).
    pub fn observe(
        &mut self,
        substrate: &'static str,
        metric: &'static str,
        value: u64,
        edges: &[u64],
    ) {
        self.hists
            .entry((substrate, metric))
            .or_insert_with(|| Histogram::new(edges))
            .observe(value);
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
    }
}

#[derive(Debug)]
pub(crate) struct Inner {
    /// Wall-clock zero for span timestamps.
    pub(crate) epoch: Instant,
    metrics: Mutex<BTreeMap<MetricKey, MetricCell>>,
    pub(crate) spans: Mutex<Vec<SpanRecord>>,
}

/// The shared metric/span store. Cloning is cheap (an `Arc`); a
/// disabled registry carries no storage and every operation on it is a
/// no-op, so instrumented code never needs an `if enabled` branch.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    inner: Option<Arc<Inner>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An enabled registry with its wall-clock epoch set to now.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                metrics: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A no-op registry: no storage, no locking, empty snapshots.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A sink bound to one pipeline stage. Sinks are cheap to clone and
    /// `Send + Sync`; hand one to each stage body / substrate driver.
    pub fn sink(&self, stage: &str) -> StageSink {
        StageSink {
            registry: self.clone(),
            stage: Arc::from(stage),
        }
    }

    /// Open a wall-clock span; it records itself when dropped.
    pub fn span(&self, name: &str, cat: &'static str) -> SpanGuard {
        SpanGuard::open(self.inner.clone(), name, cat, None)
    }

    /// Add to a counter keyed `(stage, substrate, metric)`.
    pub fn counter_add(&self, stage: &str, substrate: &str, metric: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        let mut map = inner.metrics.lock();
        match map
            .entry((stage.to_string(), substrate.to_string(), metric.to_string()))
            .or_insert(MetricCell::Counter(0))
        {
            MetricCell::Counter(c) => *c += value,
            other => {
                panic!("metric kind clash for counter {stage}/{substrate}/{metric}: {other:?}")
            }
        }
    }

    /// Drain a [`MetricSheet`] into the registry under a single lock.
    fn flush_sheet(&self, stage: &str, sheet: &mut MetricSheet) {
        let Some(inner) = &self.inner else {
            sheet.clear();
            return;
        };
        if sheet.is_empty() {
            return;
        }
        let mut map = inner.metrics.lock();
        for (&(substrate, metric), &value) in &sheet.counters {
            match map
                .entry(key(stage, substrate, metric))
                .or_insert(MetricCell::Counter(0))
            {
                MetricCell::Counter(c) => *c += value,
                other => panic!("metric kind clash for counter {substrate}/{metric}: {other:?}"),
            }
        }
        for (&(substrate, metric), &value) in &sheet.gauges {
            match map
                .entry(key(stage, substrate, metric))
                .or_insert(MetricCell::Gauge(0))
            {
                MetricCell::Gauge(g) => *g = (*g).max(value),
                other => panic!("metric kind clash for gauge {substrate}/{metric}: {other:?}"),
            }
        }
        for ((substrate, metric), hist) in &sheet.hists {
            match map
                .entry(key(stage, substrate, metric))
                .or_insert_with(|| MetricCell::Hist(Histogram::new(&hist.edges)))
            {
                MetricCell::Hist(h) => h.merge(hist),
                other => panic!("metric kind clash for histogram {substrate}/{metric}: {other:?}"),
            }
        }
        sheet.clear();
    }

    /// Freeze the registry contents into a serializable snapshot.
    /// Metric rows come out in `BTreeMap` key order — deterministic for
    /// deterministic inputs; spans sort by `(lane, start)`.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(inner) = &self.inner else {
            return TelemetrySnapshot {
                enabled: false,
                metrics: Vec::new(),
                wall: WallBlock::default(),
            };
        };
        let metrics = inner
            .metrics
            .lock()
            .iter()
            .map(|((stage, substrate, metric), cell)| {
                let (kind, value, hist) = match cell {
                    MetricCell::Counter(c) => ("counter", *c, None),
                    MetricCell::Gauge(g) => ("gauge", *g, None),
                    MetricCell::Hist(h) => ("histogram", h.count, Some(h.clone())),
                };
                MetricRow {
                    stage: stage.clone(),
                    substrate: substrate.clone(),
                    metric: metric.clone(),
                    kind: kind.to_string(),
                    value,
                    hist,
                }
            })
            .collect();
        let mut spans: Vec<SpanSnap> = inner.spans.lock().iter().map(SpanRecord::snap).collect();
        spans.sort_by_key(|a| (a.lane, a.start_us));
        TelemetrySnapshot {
            enabled: true,
            metrics,
            wall: WallBlock {
                total_ms: inner.epoch.elapsed().as_secs_f64() * 1_000.0,
                spans,
            },
        }
    }
}

fn key(stage: &str, substrate: &str, metric: &str) -> MetricKey {
    (stage.to_string(), substrate.to_string(), metric.to_string())
}

/// A registry handle bound to one pipeline stage. The stage string is
/// baked in so substrate drivers only name `(substrate, metric)`.
#[derive(Debug, Clone)]
pub struct StageSink {
    registry: MetricsRegistry,
    stage: Arc<str>,
}

impl StageSink {
    /// A sink over a disabled registry: every operation is a no-op.
    pub fn noop() -> Self {
        MetricsRegistry::disabled().sink("noop")
    }

    pub fn enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    pub fn stage(&self) -> &str {
        &self.stage
    }

    /// Open a nested wall-clock span under this stage.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard::open(self.registry.inner.clone(), name, "substrate", None)
    }

    /// [`StageSink::span`] annotated with the sim-clock second the
    /// spanned work models.
    pub fn span_sim(&self, name: &str, sim_ts: i64) -> SpanGuard {
        SpanGuard::open(self.registry.inner.clone(), name, "substrate", Some(sim_ts))
    }

    /// Add to a counter under this stage.
    pub fn counter_add(&self, substrate: &str, metric: &str, value: u64) {
        self.registry
            .counter_add(&self.stage, substrate, metric, value);
    }

    /// Drain `sheet` into the registry under a single lock.
    pub fn flush(&self, sheet: &mut MetricSheet) {
        self.registry.flush_sheet(&self.stage, sheet);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = MetricsRegistry::disabled();
        reg.counter_add("s", "sub", "m", 3);
        let sink = reg.sink("s");
        let mut sheet = MetricSheet::new();
        sheet.add("sub", "m", 1);
        sink.flush(&mut sheet);
        assert!(sheet.is_empty(), "flush drains even when disabled");
        let snap = reg.snapshot();
        assert!(!snap.enabled);
        assert!(snap.metrics.is_empty());
        assert!(snap.wall.spans.is_empty());
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let reg = MetricsRegistry::new();
        reg.counter_add("b", "x", "m", 1);
        reg.counter_add("a", "x", "m", 2);
        reg.counter_add("a", "x", "m", 3);
        let snap = reg.snapshot();
        let rows: Vec<(&str, u64)> = snap
            .metrics
            .iter()
            .map(|r| (r.stage.as_str(), r.value))
            .collect();
        assert_eq!(rows, [("a", 5), ("b", 1)]);
    }

    #[test]
    fn sheet_flush_merges_all_kinds() {
        let reg = MetricsRegistry::new();
        let sink = reg.sink("stage");
        for _ in 0..2 {
            let mut sheet = MetricSheet::new();
            sheet.add("yt", "calls", 4);
            sheet.gauge_max("yt", "tracked", 7);
            sheet.observe("yt", "backoff", 3, BACKOFF_BUCKET_EDGES);
            sink.flush(&mut sheet);
        }
        let snap = reg.snapshot();
        let calls = snap.counter("stage", "yt", "calls").unwrap();
        assert_eq!(calls, 8);
        let gauge = snap.metrics.iter().find(|r| r.metric == "tracked").unwrap();
        assert_eq!((gauge.kind.as_str(), gauge.value), ("gauge", 7));
        let hist = snap.metrics.iter().find(|r| r.metric == "backoff").unwrap();
        let h = hist.hist.as_ref().unwrap();
        assert_eq!((h.count, h.sum), (2, 6));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1, 4, 16]);
        for v in [0, 1, 2, 5, 100] {
            h.observe(v);
        }
        assert_eq!(h.counts, [2, 1, 1, 1]);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 108);
    }

    #[test]
    #[should_panic(expected = "bucket edges differ")]
    fn histogram_merge_rejects_mismatched_edges() {
        let mut a = Histogram::new(&[1, 2]);
        a.merge(&Histogram::new(&[1, 3]));
    }
}
