//! Deterministic observability for the givetake pipeline.
//!
//! The pipeline is a measurement instrument; this crate instruments the
//! instrument. It provides three pieces:
//!
//! - a lock-cheap [`MetricsRegistry`] holding counters, gauges, and
//!   fixed-bucket [`Histogram`]s keyed by `(stage, substrate, metric)`;
//! - a span API ([`MetricsRegistry::span`], [`StageSink::span`]) that
//!   records nestable wall-clock intervals, optionally annotated with a
//!   sim-clock timestamp, suitable for Chrome `trace_event` export;
//! - a serializable [`TelemetrySnapshot`] that splits the two worlds:
//!   the `metrics` block is derived purely from sim state and must be
//!   byte-identical across thread counts, while the `wall` block holds
//!   wall-clock spans and is explicitly excluded from determinism
//!   checks.
//!
//! # Determinism contract
//!
//! Every metric *value* (counter increments, gauge maxima, histogram
//! observations) must be computed from simulation state only: item
//! counts, sim-time backoff waits, fault-driver accounting. Wall-clock
//! readings never feed a metric — they live exclusively in span records
//! inside [`WallBlock`]. `tests/telemetry.rs` pins the metrics block
//! byte-identical across 1/2/4 worker threads.
//!
//! # Layering
//!
//! `gt-obs` is a leaf crate (no dependency on `gt-sim` or any other
//! workspace crate) so the fault layer in `gt-sim::faults` can report
//! into the registry without a cycle. Sim timestamps therefore cross
//! this API as raw `i64` seconds.
//!
//! A disabled registry ([`MetricsRegistry::disabled`]) is a true no-op:
//! every operation returns immediately without locking, so substrate
//! code can call sinks unconditionally. The `gt-bench` overhead guard
//! holds the enabled path to <5% of end-to-end wall time.

mod metrics;
mod snapshot;
mod span;

pub use metrics::{
    Histogram, MetricSheet, MetricsRegistry, StageSink, BACKOFF_BUCKET_EDGES, RECORD_BUCKET_EDGES,
};
pub use snapshot::{MetricRow, SpanSnap, TelemetrySnapshot, WallBlock};
pub use span::SpanGuard;
