//! Invariants of generated worlds, across several seeds and scales.

use gt_addr::Coin;
use gt_sim::SimDuration;
use gt_world::truth::Platform;
use gt_world::{World, WorldConfig};

fn worlds() -> Vec<World> {
    [1u64, 2, 3]
        .into_iter()
        .map(|seed| {
            let mut config = WorldConfig::scaled(0.02);
            config.seed = seed;
            World::generate(config)
        })
        .collect()
}

#[test]
fn all_landing_page_addresses_are_valid() {
    for world in worlds() {
        for domain in world.truth.all_domains() {
            for display in &domain.addresses {
                match &display.parsed {
                    Some(addr) => {
                        assert_eq!(
                            gt_addr::validate_any(&display.text),
                            Some(*addr),
                            "tracked address on {} must validate",
                            domain.domain
                        );
                    }
                    None => {
                        assert!(
                            gt_addr::validate_any(&display.text).is_none(),
                            "other-coin address on {} must NOT validate as BTC/ETH/XRP",
                            domain.domain
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn every_scam_domain_is_hosted() {
    for world in worlds() {
        for domain in world.truth.all_domains() {
            assert!(
                world.web.scam_site(&domain.domain).is_some(),
                "{} not hosted",
                domain.domain
            );
        }
    }
}

#[test]
fn co_occurring_payments_sit_inside_lure_windows() {
    for world in worlds() {
        // Twitter: within 7 days after some tweet of the domain's op.
        let tweet_times: Vec<Vec<gt_sim::SimTime>> = world
            .truth
            .twitter_domains
            .iter()
            .map(|d| {
                world
                    .twitter
                    .tweets_with_domain(&d.domain)
                    .iter()
                    .map(|t| t.time)
                    .collect()
            })
            .collect();
        for payment in world
            .truth
            .payments_for(Platform::Twitter)
            .filter(|p| p.co_occurring)
        {
            // Find the recipient's domain(s) and check a window matches.
            let ok = world
                .truth
                .twitter_domains
                .iter()
                .enumerate()
                .filter(|(_, d)| d.tracked_addresses().any(|a| a == payment.recipient))
                .any(|(i, _)| {
                    tweet_times[i]
                        .iter()
                        .any(|&t| payment.time >= t && payment.time <= t + SimDuration::days(7))
                });
            assert!(ok, "payment {:?} outside all windows", payment.tx);
        }
    }
}

#[test]
fn payments_exist_on_chain_with_matching_usd() {
    for world in worlds() {
        for payment in &world.truth.payments {
            let incoming = world.chains.incoming(payment.recipient);
            let transfer = incoming
                .iter()
                .find(|t| t.tx == payment.tx)
                .unwrap_or_else(|| panic!("payment {:?} missing on chain", payment.tx));
            let usd = world
                .prices
                .to_usd(transfer.tx.coin, transfer.amount.0, transfer.time);
            assert!(
                (usd - payment.usd).abs() < 0.01,
                "usd mismatch for {:?}: {} vs {}",
                payment.tx,
                usd,
                payment.usd
            );
        }
    }
}

#[test]
fn victims_use_one_stable_sender_per_coin() {
    for world in worlds() {
        use std::collections::HashMap;
        let mut senders: HashMap<(u64, Coin), gt_addr::Address> = HashMap::new();
        for payment in world.truth.payments.iter().filter(|p| p.co_occurring) {
            let incoming = world.chains.incoming(payment.recipient);
            let transfer = incoming.iter().find(|t| t.tx == payment.tx).unwrap();
            let sender = transfer.senders[0];
            let key = (payment.victim, sender.coin());
            let prev = senders.insert(key, sender);
            if let Some(prev) = prev {
                assert_eq!(prev, sender, "victim {} changed wallets", payment.victim);
            }
        }
    }
}

#[test]
fn background_payments_avoid_co_occurrence_windows() {
    for world in worlds() {
        for payment in world.truth.payments.iter().filter(|p| !p.co_occurring) {
            match payment.platform {
                Platform::Twitter => {
                    // Strictly after every tweet window of the domains
                    // holding that address.
                    for d in &world.truth.twitter_domains {
                        if d.tracked_addresses().any(|a| a == payment.recipient) {
                            for t in world.twitter.tweets_with_domain(&d.domain) {
                                assert!(
                                    payment.time > t.time + SimDuration::days(7)
                                        || payment.time < t.time,
                                    "background payment {:?} inside a window",
                                    payment.tx
                                );
                            }
                        }
                    }
                }
                Platform::YouTube => {
                    for (i, d) in world.truth.youtube_domains.iter().enumerate() {
                        let _ = i;
                        if d.tracked_addresses().any(|a| a == payment.recipient) {
                            for &sid in &world.truth.scam_streams {
                                let s = world.youtube.stream(sid);
                                // Only streams promoting this domain matter;
                                // approximate by checking the QR URL.
                                let promotes = match &s.video {
                                    gt_social::StreamVideo::ScamLoop { qr_url, .. } => {
                                        qr_url.contains(&d.domain)
                                    }
                                    _ => s.chat.iter().any(|m| m.text.contains(&d.domain)),
                                };
                                if promotes {
                                    assert!(
                                        payment.time > s.end + SimDuration::hours(8)
                                            || payment.time < s.start,
                                        "background payment {:?} inside stream window",
                                        payment.tx
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn scam_streams_lead_to_their_domain() {
    for world in worlds() {
        for &sid in &world.truth.scam_streams {
            let s = world.youtube.stream(sid);
            let lead = match &s.video {
                gt_social::StreamVideo::ScamLoop { qr_url, .. } => Some(qr_url.clone()),
                gt_social::StreamVideo::Benign => s
                    .chat
                    .iter()
                    .find(|m| m.text.contains("https://"))
                    .map(|m| m.text.clone()),
            };
            let lead = lead.expect("every scam stream has a lead");
            let matches_some_domain = world
                .truth
                .youtube_domains
                .iter()
                .any(|d| lead.contains(&d.domain));
            assert!(matches_some_domain, "lead {lead} matches no domain");
        }
    }
}

#[test]
fn different_seeds_differ() {
    let w = worlds();
    assert_ne!(
        w[0].truth.twitter_domains[0].domain,
        w[1].truth.twitter_domains[0].domain
    );
    assert_ne!(
        w[0].truth.payments.first().map(|p| p.usd),
        w[1].truth.payments.first().map(|p| p.usd)
    );
}
