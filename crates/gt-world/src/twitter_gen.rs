//! Twitter-side generation: scam operations, domains, and the tweet
//! campaign (Figure 3's weekly profile, Section 4.2's discoverability
//! mix, Section 4.3's coin targeting).

use crate::config::WorldConfig;
use crate::sites::{
    other_coin_address, random_cloaking, DisplayAddress, DomainFactory, ScamDbEntry, ScamDomain,
    ScamDomainDb, PERSONAE,
};
use gt_addr::{Address, AddressGenerator, Coin};
use gt_sim::dist::{sample_weighted, Zipf};
use gt_sim::{RngFactory, SimDuration, SimTime};
use gt_social::{TweetId, TwitterAccountId, TwitterSnapshot};
use rand::rngs::StdRng;
use rand::Rng;

/// A scam operation: owns domains and a small per-coin address pool
/// shared across its domains (the paper observed 361 domains sharing
/// only 186 addresses).
#[derive(Debug)]
pub struct ScamOp {
    pub index: usize,
    pub persona: String,
    /// Per-coin address pool (1–2 addresses per coin).
    pub btc: Vec<Address>,
    pub eth: Vec<Address>,
    pub xrp: Vec<Address>,
    /// Other-coin address strings (label, text).
    pub other: Vec<(String, String)>,
}

impl ScamOp {
    pub fn pool_for(&self, coin: Coin) -> &[Address] {
        match coin {
            Coin::Btc => &self.btc,
            Coin::Eth => &self.eth,
            Coin::Xrp => &self.xrp,
        }
    }
}

/// Normalised weekly weight profile for Figure 3 (27 weeks from
/// 2022-01-01; the March spike carries ~19.9% of all scam tweets, which
/// reproduces the 90,984-tweet peak at full scale).
pub const TWITTER_WEEKLY_PROFILE: [f64; 27] = [
    0.016, 0.019, 0.023, 0.027, 0.031, 0.036, 0.042, 0.049, 0.057, 0.199, 0.075, 0.058, 0.048,
    0.041, 0.035, 0.030, 0.026, 0.023, 0.020, 0.018, 0.016, 0.014, 0.013, 0.012, 0.011, 0.031,
    0.030,
];

/// Coin-combination distribution for scam tweets. Marginals reproduce
/// Section 4.3: XRP 91%, ETH 12%, BTC 7%.
const COIN_COMBOS: [(&[Coin], f64); 7] = [
    (&[Coin::Xrp], 0.80),
    (&[Coin::Xrp, Coin::Eth], 0.07),
    (&[Coin::Xrp, Coin::Btc], 0.04),
    (&[Coin::Eth], 0.04),
    (&[Coin::Eth, Coin::Btc], 0.01),
    (&[Coin::Btc], 0.02),
    (&[], 0.02),
];

/// Everything the Twitter generator produces.
pub struct TwitterWorld {
    pub ops: Vec<ScamOp>,
    pub domains: Vec<ScamDomain>,
    /// The CryptoScamTracker-style corpus (superset of the promoted
    /// domains, plus never-promoted ones).
    pub scam_db: ScamDomainDb,
    /// Tweet ids of every scam tweet.
    pub scam_tweets: Vec<TweetId>,
    /// Times of the tweets promoting each domain (index-aligned with
    /// `domains`), sorted ascending. Drives co-occurrence windows.
    pub lure_times: Vec<Vec<SimTime>>,
}

/// Generate the scam operations and their address pools.
pub fn generate_ops(config: &WorldConfig, factory: &RngFactory) -> Vec<ScamOp> {
    let mut rng = factory.rng("twitter-ops");
    let mut gen = AddressGenerator::new(factory.rng("twitter-op-addresses"));
    (0..config.twitter_ops)
        .map(|index| {
            let persona = PERSONAE[rng.gen_range(0..PERSONAE.len())].to_string();
            let per_coin = |rng: &mut StdRng, gen: &mut AddressGenerator<StdRng>, coin: Coin| {
                let n = if rng.gen_bool(0.35) { 1 } else { 2 };
                (0..n).map(|_| gen.generate(coin)).collect::<Vec<_>>()
            };
            let btc = per_coin(&mut rng, &mut gen, Coin::Btc);
            let eth = per_coin(&mut rng, &mut gen, Coin::Eth);
            let xrp = per_coin(&mut rng, &mut gen, Coin::Xrp);
            let other = (0..rng.gen_range(0..=2))
                .map(|_| other_coin_address(&mut rng))
                .collect();
            ScamOp {
                index,
                persona,
                btc,
                eth,
                xrp,
                other,
            }
        })
        .collect()
}

/// Generate the Twitter-promoted scam domains (and the wider corpus).
pub fn generate_domains(
    config: &WorldConfig,
    factory: &RngFactory,
    ops: &[ScamOp],
    domain_factory: &mut DomainFactory,
) -> (Vec<ScamDomain>, ScamDomainDb) {
    let mut rng = factory.rng("twitter-domains");
    let mut gen = AddressGenerator::new(factory.rng("scamdb-extra-addresses"));

    // Fraction of promoted domains that display *only* other-coin
    // addresses (paper: 103 of 361).
    // Conditioned on the op owning other-coin addresses (about two
    // thirds do), so the unconditional rate lands at the paper's
    // 103/361.
    let other_only_rate = (103.0 / 361.0) / 0.66;

    let mut domains = Vec::with_capacity(config.twitter_domains);
    for i in 0..config.twitter_domains {
        let op = &ops[i % ops.len()];
        let other_only = rng.gen_bool(other_only_rate) && !op.other.is_empty();
        let mut addresses = Vec::new();
        if other_only {
            for (label, text) in &op.other {
                addresses.push(DisplayAddress {
                    label: label.clone(),
                    text: text.clone(),
                    parsed: None,
                });
            }
        } else {
            // Display 1–3 tracked coins from the op's pool, XRP-leaning.
            let mut coins = vec![Coin::Xrp];
            if rng.gen_bool(0.45) {
                coins.push(Coin::Btc);
            }
            if rng.gen_bool(0.40) {
                coins.push(Coin::Eth);
            }
            // Occasionally swap XRP out entirely.
            if rng.gen_bool(0.15) {
                coins.remove(0);
                if coins.is_empty() {
                    coins.push(Coin::Btc);
                }
            }
            for coin in coins {
                let pool = op.pool_for(coin);
                let addr = pool[rng.gen_range(0..pool.len())];
                addresses.push(DisplayAddress::tracked(coin, addr));
            }
            // Sometimes also list an other-coin address.
            if rng.gen_bool(0.2) {
                if let Some((label, text)) = op.other.first() {
                    addresses.push(DisplayAddress {
                        label: label.clone(),
                        text: text.clone(),
                        parsed: None,
                    });
                }
            }
        }
        let online_from = config.twitter_start - SimDuration::days(rng.gen_range(5..40));
        // Most sites die within months; some persist past the window.
        let offline_from = if rng.gen_bool(0.8) {
            Some(online_from + SimDuration::days(rng.gen_range(30..400)))
        } else {
            None
        };
        domains.push(ScamDomain {
            domain: domain_factory.mint(&mut rng),
            op: op.index,
            persona: op.persona.clone(),
            addresses,
            cloaking: random_cloaking(&mut rng),
            online_from,
            offline_from,
        });
    }

    // The wider corpus: the promoted domains plus never-promoted ones
    // with their own throwaway addresses.
    let mut entries: Vec<ScamDbEntry> = domains
        .iter()
        .map(|d| ScamDbEntry {
            domain: d.domain.clone(),
            addresses: d
                .addresses
                .iter()
                .map(|a| (a.label.clone(), a.text.clone()))
                .collect(),
        })
        .collect();
    for _ in domains.len()..config.scamdb_domains {
        let coin = [Coin::Btc, Coin::Eth, Coin::Xrp][rng.gen_range(0..3)];
        let addr = gen.generate(coin);
        entries.push(ScamDbEntry {
            domain: domain_factory.mint(&mut rng),
            addresses: vec![(coin.to_string(), addr.encode())],
        });
    }
    // The paper notes missing/inaccurate annotations: drop the address
    // list from a few percent of entries.
    for entry in entries.iter_mut() {
        if rng.gen_bool(0.03) {
            entry.addresses.clear();
        }
    }

    (domains, ScamDomainDb { entries })
}

/// Generate the scam tweet campaign into `snapshot`.
pub fn generate_tweets(
    config: &WorldConfig,
    factory: &RngFactory,
    domains: &[ScamDomain],
    snapshot: &mut TwitterSnapshot,
) -> (Vec<TweetId>, Vec<Vec<SimTime>>) {
    let mut rng = factory.rng("twitter-tweets");
    let account_zipf = Zipf::new(config.tweet_accounts, 0.75);
    let domain_zipf = Zipf::new(domains.len(), 0.8);

    // Per-tweet coin-combo weights.
    let combo_weights: Vec<f64> = COIN_COMBOS.iter().map(|&(_, w)| w).collect();

    // Group domains by whether they're XRP-ish for theme matching.
    let mut lure_times: Vec<Vec<SimTime>> = vec![Vec::new(); domains.len()];
    let mut scam_tweets = Vec::with_capacity(config.scam_tweets);

    // Distribute tweets over the weekly profile.
    let weeks = TWITTER_WEEKLY_PROFILE.len();
    let mut per_week: Vec<usize> = TWITTER_WEEKLY_PROFILE
        .iter()
        .map(|w| (w * config.scam_tweets as f64).round() as usize)
        .collect();
    // Fix rounding drift on the largest bucket.
    let drift = config.scam_tweets as isize - per_week.iter().sum::<usize>() as isize;
    per_week[9] = (per_week[9] as isize + drift).max(0) as usize;

    // A couple of benign tweets so reply targets exist.
    let benign_target = snapshot.insert(
        TwitterAccountId(u64::MAX),
        config.twitter_start,
        "gm crypto fam, market looking interesting today".into(),
        vec!["crypto".into()],
        vec![],
        None,
    );

    for (week, &week_tweets) in per_week.iter().enumerate().take(weeks) {
        let week_start = config.twitter_start + SimDuration::weeks(week as i64);
        for _ in 0..week_tweets {
            let time = week_start + SimDuration::seconds(rng.gen_range(0..7 * 86_400));
            let combo_idx = sample_weighted(&mut rng, &combo_weights);
            let coins = COIN_COMBOS[combo_idx].0;

            // Pick a domain; bias toward ones displaying the lead coin.
            let mut domain_idx = domain_zipf.sample(&mut rng) - 1;
            if let Some(&lead) = coins.first() {
                for _ in 0..4 {
                    if domains[domain_idx].address_for(lead).is_some() {
                        break;
                    }
                    domain_idx = domain_zipf.sample(&mut rng) - 1;
                }
            }
            let domain = &domains[domain_idx];

            let author = TwitterAccountId(account_zipf.sample(&mut rng) as u64 - 1);
            let mut hashtags = Vec::new();
            if rng.gen_bool(0.96) {
                for &coin in coins {
                    hashtags.push(format!("#{}", coin.ticker()));
                    if rng.gen_bool(0.5) {
                        hashtags.push(format!("#{}", coin.name()));
                    }
                }
                if hashtags.is_empty() || rng.gen_bool(0.3) {
                    hashtags.push("#crypto".into());
                }
            }
            let mentions = if rng.gen_bool(0.001) {
                vec![TwitterAccountId(
                    rng.gen_range(0..config.tweet_accounts as u64),
                )]
            } else {
                vec![]
            };
            let reply_to = rng.gen_bool(0.003).then_some(benign_target);

            let coin_blurb = coins
                .first()
                .map(|c| c.name().to_uppercase())
                .unwrap_or_else(|| "CRYPTO".into());
            let text = format!(
                "{persona} is giving away 5000 {coin_blurb}! Send now, get DOUBLE back \
                 https://{domain} {tags}",
                persona = domain.persona,
                coin_blurb = coin_blurb,
                domain = domain.domain,
                tags = hashtags.join(" "),
            );
            let hashtags_clean: Vec<String> = hashtags
                .iter()
                .map(|h| h.trim_start_matches('#').to_string())
                .collect();
            let id = snapshot.insert(author, time, text, hashtags_clean, mentions, reply_to);
            scam_tweets.push(id);
            lure_times[domain_idx].push(time);
        }
    }

    for times in &mut lure_times {
        times.sort();
    }
    (scam_tweets, lure_times)
}

/// Run the full Twitter-side generation.
pub fn generate(
    config: &WorldConfig,
    factory: &RngFactory,
    domain_factory: &mut DomainFactory,
    snapshot: &mut TwitterSnapshot,
) -> TwitterWorld {
    let ops = generate_ops(config, factory);
    let (domains, scam_db) = generate_domains(config, factory, &ops, domain_factory);
    let (scam_tweets, lure_times) = generate_tweets(config, factory, &domains, snapshot);
    TwitterWorld {
        ops,
        domains,
        scam_db,
        scam_tweets,
        lure_times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> (WorldConfig, TwitterWorld, TwitterSnapshot) {
        let config = WorldConfig::test_small();
        let factory = RngFactory::new(config.seed);
        let mut snapshot = TwitterSnapshot::new();
        let mut df = DomainFactory::new();
        let world = generate(&config, &factory, &mut df, &mut snapshot);
        (config, world, snapshot)
    }

    #[test]
    fn profile_is_normalised_with_dominant_peak() {
        let sum: f64 = TWITTER_WEEKLY_PROFILE.iter().sum();
        assert!((sum - 1.0).abs() < 0.005, "profile sums to {sum}");
        let peak = TWITTER_WEEKLY_PROFILE
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        assert!((peak - 0.199).abs() < 1e-9);
        assert_eq!(TWITTER_WEEKLY_PROFILE[9], peak, "peak in March (week 10)");
    }

    #[test]
    fn generates_configured_counts() {
        let (config, world, snapshot) = small_world();
        assert_eq!(world.domains.len(), config.twitter_domains);
        assert_eq!(world.scam_db.len(), config.scamdb_domains);
        assert_eq!(world.scam_tweets.len(), snapshot.len() - 1); // minus benign
        let total: usize = world.lure_times.iter().map(Vec::len).sum();
        assert_eq!(total, world.scam_tweets.len());
        // Within rounding of the configured volume.
        let drift = (total as isize - config.scam_tweets as isize).abs();
        assert!(drift < 30, "tweet volume drift {drift}");
    }

    #[test]
    fn tweets_embed_their_domain() {
        let (_, world, snapshot) = small_world();
        // Every promoted domain with lures is findable via the index.
        let mut promoted = 0;
        for (i, d) in world.domains.iter().enumerate() {
            let found = snapshot.tweets_with_domain(&d.domain);
            assert_eq!(
                found.len(),
                world.lure_times[i].len(),
                "domain {}",
                d.domain
            );
            if !found.is_empty() {
                promoted += 1;
            }
        }
        assert!(promoted > 0);
    }

    #[test]
    fn hashtag_and_reply_rates_roughly_match() {
        let config = WorldConfig::scaled(0.05);
        let factory = RngFactory::new(1);
        let mut snapshot = TwitterSnapshot::new();
        let mut df = DomainFactory::new();
        let world = generate(&config, &factory, &mut df, &mut snapshot);
        let tweets: Vec<_> = world
            .scam_tweets
            .iter()
            .map(|&id| snapshot.tweet(id).unwrap())
            .collect();
        let n = tweets.len() as f64;
        let hashtagged = tweets.iter().filter(|t| !t.hashtags.is_empty()).count() as f64;
        assert!((hashtagged / n - 0.96).abs() < 0.02, "{}", hashtagged / n);
        let replies = tweets.iter().filter(|t| t.reply_to.is_some()).count() as f64;
        assert!(replies / n < 0.01, "{}", replies / n);
    }

    #[test]
    fn coin_rates_match_section_4_3() {
        let config = WorldConfig::scaled(0.05);
        let factory = RngFactory::new(2);
        let mut snapshot = TwitterSnapshot::new();
        let mut df = DomainFactory::new();
        let world = generate(&config, &factory, &mut df, &mut snapshot);
        let n = world.scam_tweets.len() as f64;
        let mut xrp = 0.0;
        let mut eth = 0.0;
        let mut btc = 0.0;
        for &id in &world.scam_tweets {
            let t = snapshot.tweet(id).unwrap();
            if t.hashtags.iter().any(|h| h == "xrp" || h == "ripple") {
                xrp += 1.0;
            }
            if t.hashtags.iter().any(|h| h == "eth" || h == "ethereum") {
                eth += 1.0;
            }
            if t.hashtags.iter().any(|h| h == "btc" || h == "bitcoin") {
                btc += 1.0;
            }
        }
        // Hashtags appear on 96% of tweets, so rates are slightly below
        // the text-level combo rates.
        assert!((xrp / n - 0.91 * 0.96).abs() < 0.03, "xrp {}", xrp / n);
        assert!((eth / n - 0.12 * 0.96).abs() < 0.02, "eth {}", eth / n);
        assert!((btc / n - 0.07 * 0.96).abs() < 0.02, "btc {}", btc / n);
    }

    #[test]
    fn ops_share_addresses_across_domains() {
        let (_, world, _) = small_world();
        // Address reuse: distinct tracked addresses must be well below
        // domains × coins.
        let mut addrs = std::collections::HashSet::new();
        for d in &world.domains {
            for a in d.tracked_addresses() {
                addrs.insert(a);
            }
        }
        let displayed: usize = world
            .domains
            .iter()
            .map(|d| d.tracked_addresses().count())
            .sum();
        assert!(
            addrs.len() < displayed || displayed <= 1,
            "no sharing happened: {} distinct of {displayed}",
            addrs.len()
        );
    }

    #[test]
    fn some_domains_are_other_coin_only() {
        let config = WorldConfig::scaled(0.3);
        let factory = RngFactory::new(3);
        let mut snapshot = TwitterSnapshot::new();
        let mut df = DomainFactory::new();
        let world = generate(&config, &factory, &mut df, &mut snapshot);
        let other_only = world
            .domains
            .iter()
            .filter(|d| d.tracked_addresses().count() == 0)
            .count();
        let frac = other_only as f64 / world.domains.len() as f64;
        // Paper: 103/361 ≈ 0.285 (our rate is conditioned on pool
        // availability so it lands a little lower).
        assert!((0.1..0.4).contains(&frac), "other-only fraction {frac}");
    }

    #[test]
    fn deterministic() {
        let (_, w1, s1) = small_world();
        let (_, w2, s2) = small_world();
        assert_eq!(w1.domains, w2.domains);
        assert_eq!(s1.len(), s2.len());
        assert_eq!(w1.scam_tweets, w2.scam_tweets);
    }
}
