//! Every number the paper reports, as constants.
//!
//! These drive (a) the world generator's targets and (b) the
//! paper-vs-measured comparison in EXPERIMENTS.md. Section references
//! are to the IMC 2024 paper.

/// Table 1 + Section 3.
pub mod datasets {
    /// Domains in the CryptoScamTracker corpus (Li et al.).
    pub const SCAMDB_DOMAINS: usize = 3_863;
    /// Of those, promoted on Twitter.
    pub const TWITTER_DOMAINS: usize = 361;
    /// Scam tweets containing a known scam domain.
    pub const TWITTER_ARTIFACTS: usize = 457_248;
    /// Distinct accounts posting them.
    pub const TWITTER_ACCOUNTS: usize = 33_841;
    /// Scam livestream domains found on YouTube.
    pub const YOUTUBE_DOMAINS: usize = 343;
    /// Scam livestreams.
    pub const YOUTUBE_ARTIFACTS: usize = 2_069;
    /// Distinct channels hosting them.
    pub const YOUTUBE_ACCOUNTS: usize = 1_632;
}

/// Section 4 (lures).
pub mod lures {
    /// Peak scam tweets in a single week (March 2022).
    pub const TWITTER_PEAK_WEEK: usize = 90_984;
    /// Peak scam streams in a single week.
    pub const YOUTUBE_PEAK_STREAMS: usize = 289;
    /// Peak weekly stream views.
    pub const YOUTUBE_PEAK_VIEWS: u64 = 1_869_399;
    /// Fraction of scam tweets carrying a hashtag.
    pub const HASHTAG_RATE: f64 = 0.96;
    /// Fraction of scam tweets mentioning a user.
    pub const MENTION_RATE: f64 = 0.001;
    /// Fraction of scam tweets replying to another tweet.
    pub const REPLY_RATE: f64 = 0.003;
    /// Median subscribers of scam-hosting channels.
    pub const CHANNEL_SUBSCRIBERS_MEDIAN: u64 = 16_800;
    /// Largest channel (likely compromised).
    pub const CHANNEL_SUBSCRIBERS_MAX: u64 = 19_000_000;
    /// Fraction of streams with a crypto keyword in metadata.
    pub const STREAM_KEYWORD_RATE: f64 = 0.93;
    /// Coin reference rates among scam tweets (Section 4.3).
    pub const TWITTER_COIN_RATES: [(&str, f64); 3] =
        [("ripple", 0.91), ("ethereum", 0.12), ("bitcoin", 0.07)];
    /// Coin reference rates among scam streams.
    pub const YOUTUBE_COIN_RATES: [(&str, f64); 3] =
        [("bitcoin", 0.65), ("ethereum", 0.49), ("ripple", 0.40)];
}

/// Section 5 (payments). All USD figures from Table 2.
pub mod payments {
    /// Twitter domains carrying any BTC/ETH/XRP address.
    pub const TWITTER_DOMAINS_WITH_COIN: usize = 258;
    /// Of those, domains whose addresses received any transaction.
    pub const TWITTER_DOMAINS_PAID: usize = 121;
    /// Distinct addresses across the Twitter domains.
    pub const TWITTER_ADDRESSES: usize = 186;
    /// All incoming payments to Twitter scam addresses.
    pub const TWITTER_PAYMENTS_ANY: usize = 1_633;
    /// Payments within one week of a promoting tweet (before the
    /// known-scam-sender filter).
    pub const TWITTER_PAYMENTS_COOCCURRING_RAW: usize = 695;
    /// Removed because the sender was a known scam address.
    pub const TWITTER_CONSOLIDATIONS: usize = 24;
    /// Final co-occurring victim payments.
    pub const TWITTER_PAYMENTS: usize = 671;
    /// Distinct senders behind them.
    pub const TWITTER_SENDERS: usize = 528;
    /// Distinct recipient addresses.
    pub const TWITTER_RECIPIENTS: usize = 68;

    pub const YOUTUBE_DOMAINS_WITH_COIN: usize = 342;
    pub const YOUTUBE_DOMAINS_PAID: usize = 231;
    pub const YOUTUBE_PAYMENTS_ANY: usize = 2_074;
    pub const YOUTUBE_PAYMENTS_COOCCURRING_RAW: usize = 695;
    pub const YOUTUBE_CONSOLIDATIONS: usize = 57;
    pub const YOUTUBE_PAYMENTS: usize = 638;
    pub const YOUTUBE_SENDERS: usize = 399;
    pub const YOUTUBE_RECIPIENTS: usize = 271;

    /// Table 2 — co-occurring revenue, USD.
    pub const TWITTER_REVENUE: f64 = 2_693_009.0;
    pub const TWITTER_REVENUE_BTC: f64 = 1_269_579.0;
    pub const TWITTER_REVENUE_ETH: f64 = 442_583.0;
    pub const TWITTER_REVENUE_XRP: f64 = 980_847.0;
    pub const TWITTER_REVENUE_ANY: f64 = 6_598_691.0;

    pub const YOUTUBE_REVENUE: f64 = 1_932_654.0;
    pub const YOUTUBE_REVENUE_BTC: f64 = 1_422_065.0;
    pub const YOUTUBE_REVENUE_ETH: f64 = 266_693.0;
    pub const YOUTUBE_REVENUE_XRP: f64 = 243_896.0;
    pub const YOUTUBE_REVENUE_ANY: f64 = 4_705_978.0;

    /// Conversion rates (Section 5.4).
    pub const TWITTER_CONVERSION: f64 = 0.0012; // 0.12% per tweet
    pub const YOUTUBE_CONVERSION: f64 = 0.000039; // 0.0039% per view

    /// Payment origins: fraction of payments from centralized
    /// exchanges (combined platforms).
    pub const EXCHANGE_ORIGIN_RATE: f64 = 0.58;
    pub const EXCHANGE_ORIGIN_COUNT: usize = 755;

    /// Whale structure: top-k payments capturing value shares.
    pub const TWITTER_TOP_FOR_HALF: usize = 24;
    pub const TWITTER_TOP_FOR_90PCT: usize = 164;
    pub const YOUTUBE_TOP_FOR_HALF: usize = 20;
    pub const YOUTUBE_TOP_FOR_90PCT: usize = 147;
}

/// Section 5.5 (scammer behaviour).
pub mod scammers {
    /// Distinct recipients across the 1,309 payments.
    pub const DISTINCT_RECIPIENTS: usize = 339;
    /// BTC recipient addresses among them.
    pub const BTC_RECIPIENTS: usize = 166;
    /// BTC recipients in a multi-input cluster of size one.
    pub const BTC_SINGLETON_RECIPIENTS: usize = 145;
    /// Distinct recipients of outgoing transactions from scam addresses.
    pub const OUTGOING_RECIPIENTS: usize = 1_363;
    pub const OUTGOING_EXCHANGE: usize = 57;
    pub const OUTGOING_TOKEN_CONTRACT: usize = 13;
    pub const OUTGOING_MIXING: usize = 4;
    pub const OUTGOING_SCAM: usize = 22;
    pub const OUTGOING_SANCTIONED: usize = 13;
}

/// Appendix B (pilot study).
pub mod pilot {
    /// Scam streams identified during the 14-day pilot.
    pub const STREAMS: usize = 276;
    /// Unique giveaway sites they promoted.
    pub const SITES: usize = 59;
    /// Streams whose QR persistence was tracked.
    pub const QR_TRACKED: usize = 41;
    /// QR persistence (seconds).
    pub const QR_MEAN_SECONDS: f64 = 7_200.0;
    pub const QR_MEDIAN_SECONDS: f64 = 3_140.0;
    /// One outlier showed the QR ~15 s at a time, periodically.
    pub const QR_PERIODIC_SECONDS: i64 = 15;
    /// Candidate Twitch streams after filtering.
    pub const TWITCH_CANDIDATES: usize = 250;
}

/// Appendix B.2 / Figure 5 (keywords).
pub mod keywords_fig5 {
    /// Fraction of returned streams containing >= 1 search keyword.
    pub const STREAMS_WITH_KEYWORD: f64 = 0.55;
    /// Fraction of keyword-streams covered by the top 20 keywords.
    pub const TOP20_SHARE: f64 = 0.90;
    /// Among keyword-less streams, fraction not in English.
    pub const NON_ENGLISH_AMONG_KEYWORDLESS: f64 = 0.50;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funnels_are_internally_consistent() {
        // raw co-occurring − consolidations = final payments.
        assert_eq!(
            payments::TWITTER_PAYMENTS_COOCCURRING_RAW - payments::TWITTER_CONSOLIDATIONS,
            payments::TWITTER_PAYMENTS
        );
        assert_eq!(
            payments::YOUTUBE_PAYMENTS_COOCCURRING_RAW - payments::YOUTUBE_CONSOLIDATIONS,
            payments::YOUTUBE_PAYMENTS
        );
        // Per-coin revenue sums to the platform total (±rounding).
        let t = payments::TWITTER_REVENUE_BTC
            + payments::TWITTER_REVENUE_ETH
            + payments::TWITTER_REVENUE_XRP;
        assert!((t - payments::TWITTER_REVENUE).abs() < 1.0);
        let y = payments::YOUTUBE_REVENUE_BTC
            + payments::YOUTUBE_REVENUE_ETH
            + payments::YOUTUBE_REVENUE_XRP;
        assert!((y - payments::YOUTUBE_REVENUE).abs() < 1.0);
        // Recipient split.
        assert_eq!(
            payments::TWITTER_RECIPIENTS + payments::YOUTUBE_RECIPIENTS,
            scammers::DISTINCT_RECIPIENTS
        );
    }

    #[test]
    fn conversion_rates_match_reported_ratios() {
        // 528 senders / 457,248 tweets ≈ 0.12%.
        let t = payments::TWITTER_SENDERS as f64 / datasets::TWITTER_ARTIFACTS as f64;
        assert!((t - payments::TWITTER_CONVERSION).abs() < 0.0002, "{t}");
    }

    #[test]
    fn exchange_origin_rate_matches_count() {
        let total = payments::TWITTER_PAYMENTS + payments::YOUTUBE_PAYMENTS;
        let rate = payments::EXCHANGE_ORIGIN_COUNT as f64 / total as f64;
        assert!((rate - payments::EXCHANGE_ORIGIN_RATE).abs() < 0.01);
    }
}
