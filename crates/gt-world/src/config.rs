//! World generation configuration.

use crate::calibration::{datasets, payments, pilot};
use gt_sim::SimTime;
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};

/// Everything the generator needs to build a world.
///
/// The default configuration targets the paper's full scale. For fast
/// tests use [`WorldConfig::scaled`], which shrinks volumes while
/// preserving ratios (conversion rates, revenue shares, funnel
/// fractions).
#[derive(Debug, Clone, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct WorldConfig {
    /// Master seed: everything derives from it.
    pub seed: u64,

    // ---- Twitter window (retrospective) ----
    /// Start of the Twitter lure window (paper: 2022-01-01).
    pub twitter_start: SimTime,
    /// End of the Twitter lure window (paper: 2022-07-07).
    pub twitter_end: SimTime,
    /// Scam tweets to generate.
    pub scam_tweets: usize,
    /// Distinct accounts posting them.
    pub tweet_accounts: usize,
    /// Scam domains promoted on Twitter.
    pub twitter_domains: usize,
    /// Domains in the CryptoScamTracker-style corpus (superset).
    pub scamdb_domains: usize,
    /// Scam operations running the Twitter campaigns.
    pub twitter_ops: usize,

    // ---- YouTube window (prospective) ----
    /// Start of the pilot study (paper: 2023-07-01).
    pub pilot_start: SimTime,
    /// End of the pilot study (paper: 2023-07-14).
    pub pilot_end: SimTime,
    /// Start of the main YouTube window (paper: 2023-07-24).
    pub youtube_start: SimTime,
    /// End of the main window (paper: 2024-01-21, 26 weeks).
    pub youtube_end: SimTime,
    /// Scam livestreams in the main window.
    pub scam_streams: usize,
    /// Channels hosting them.
    pub stream_channels: usize,
    /// Scam domains promoted via streams in the main window.
    pub youtube_domains: usize,
    /// Benign (non-scam) streams the keyword search also returns.
    pub benign_streams: usize,
    /// Scam streams during the pilot.
    pub pilot_streams: usize,
    /// Distinct sites promoted during the pilot.
    pub pilot_sites: usize,
    /// Total views across scam streams in the main window.
    pub total_scam_views: u64,

    // ---- Payments ----
    /// Final co-occurring victim payments (Twitter).
    pub twitter_payments: usize,
    /// Distinct victims behind them.
    pub twitter_victims: usize,
    /// Consolidations landing inside co-occurrence windows (Twitter).
    pub twitter_consolidations: usize,
    /// Additional non-co-occurring payments (Twitter).
    pub twitter_background_payments: usize,
    pub youtube_payments: usize,
    pub youtube_victims: usize,
    pub youtube_consolidations: usize,
    pub youtube_background_payments: usize,
    /// Fraction of victim payments originating at exchanges.
    pub exchange_origin_rate: f64,
    /// Co-occurring USD revenue targets per platform per coin
    /// (BTC, ETH, XRP).
    pub twitter_revenue_usd: [f64; 3],
    pub youtube_revenue_usd: [f64; 3],
    /// Non-co-occurring ("any" minus co-occurring) revenue targets.
    pub twitter_background_revenue_usd: f64,
    pub youtube_background_revenue_usd: f64,
    /// Log-normal sigma of individual payment sizes (the whale knob).
    pub payment_sigma: f64,

    // ---- Twitch ----
    /// Streams live on Twitch during the pilot (none of them scams).
    pub twitch_streams: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0x61BE_5CA1,
            twitter_start: SimTime::from_ymd(2022, 1, 1),
            twitter_end: SimTime::from_ymd(2022, 7, 7),
            scam_tweets: datasets::TWITTER_ARTIFACTS,
            tweet_accounts: datasets::TWITTER_ACCOUNTS,
            twitter_domains: datasets::TWITTER_DOMAINS,
            scamdb_domains: datasets::SCAMDB_DOMAINS,
            twitter_ops: 40,
            pilot_start: SimTime::from_ymd(2023, 7, 1),
            pilot_end: SimTime::from_ymd(2023, 7, 14),
            youtube_start: SimTime::from_ymd(2023, 7, 24),
            // Paper: "July 24, 2023 to January 21, 2024 (26 weeks)" —
            // the end bound is exclusive, so the window closes at the
            // end of Jan 21.
            youtube_end: SimTime::from_ymd(2024, 1, 22),
            // The paper's Table 1 counts are what the pipeline
            // *detected*; the world's true population is larger by the
            // detection loss (short streams missed between search
            // polls, dead domains that never validate). The ~9%
            // headroom below makes the measured counts land on the
            // paper's.
            scam_streams: (datasets::YOUTUBE_ARTIFACTS as f64 * 1.09) as usize,
            stream_channels: (datasets::YOUTUBE_ACCOUNTS as f64 * 1.09) as usize,
            youtube_domains: datasets::YOUTUBE_DOMAINS + 11,
            benign_streams: 8_400,
            pilot_streams: (pilot::STREAMS as f64 * 1.08) as usize,
            pilot_sites: pilot::SITES + 3,
            total_scam_views: 11_150_000,
            twitter_payments: payments::TWITTER_PAYMENTS,
            twitter_victims: payments::TWITTER_SENDERS,
            twitter_consolidations: payments::TWITTER_CONSOLIDATIONS,
            twitter_background_payments: payments::TWITTER_PAYMENTS_ANY
                - payments::TWITTER_PAYMENTS_COOCCURRING_RAW,
            youtube_payments: payments::YOUTUBE_PAYMENTS,
            youtube_victims: payments::YOUTUBE_SENDERS,
            youtube_consolidations: payments::YOUTUBE_CONSOLIDATIONS,
            youtube_background_payments: payments::YOUTUBE_PAYMENTS_ANY
                - payments::YOUTUBE_PAYMENTS_COOCCURRING_RAW,
            exchange_origin_rate: payments::EXCHANGE_ORIGIN_RATE,
            twitter_revenue_usd: [
                payments::TWITTER_REVENUE_BTC,
                payments::TWITTER_REVENUE_ETH,
                payments::TWITTER_REVENUE_XRP,
            ],
            youtube_revenue_usd: [
                payments::YOUTUBE_REVENUE_BTC,
                payments::YOUTUBE_REVENUE_ETH,
                payments::YOUTUBE_REVENUE_XRP,
            ],
            twitter_background_revenue_usd: payments::TWITTER_REVENUE_ANY
                - payments::TWITTER_REVENUE,
            youtube_background_revenue_usd: payments::YOUTUBE_REVENUE_ANY
                - payments::YOUTUBE_REVENUE,
            payment_sigma: 1.8,
            twitch_streams: 2_000,
        }
    }
}

impl WorldConfig {
    /// A configuration with all volumes multiplied by `factor`
    /// (rounding up so nothing degenerates to zero), preserving rates
    /// and revenue *per payment*. Revenue totals scale with the factor.
    pub fn scaled(factor: f64) -> WorldConfig {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        let f = |n: usize| ((n as f64 * factor).ceil() as usize).max(1);
        let base = WorldConfig::default();
        WorldConfig {
            scam_tweets: f(base.scam_tweets),
            tweet_accounts: f(base.tweet_accounts),
            twitter_domains: f(base.twitter_domains),
            scamdb_domains: f(base.scamdb_domains),
            twitter_ops: f(base.twitter_ops).min(f(base.twitter_domains)),
            scam_streams: f(base.scam_streams),
            stream_channels: f(base.stream_channels),
            youtube_domains: f(base.youtube_domains),
            benign_streams: f(base.benign_streams),
            pilot_streams: f(base.pilot_streams),
            pilot_sites: f(base.pilot_sites).min(f(base.pilot_streams)),
            total_scam_views: ((base.total_scam_views as f64 * factor) as u64).max(1_000),
            twitter_payments: f(base.twitter_payments),
            twitter_victims: f(base.twitter_victims).min(f(base.twitter_payments)),
            twitter_consolidations: f(base.twitter_consolidations),
            twitter_background_payments: f(base.twitter_background_payments),
            youtube_payments: f(base.youtube_payments),
            youtube_victims: f(base.youtube_victims).min(f(base.youtube_payments)),
            youtube_consolidations: f(base.youtube_consolidations),
            youtube_background_payments: f(base.youtube_background_payments),
            twitter_revenue_usd: base.twitter_revenue_usd.map(|v| v * factor),
            youtube_revenue_usd: base.youtube_revenue_usd.map(|v| v * factor),
            twitter_background_revenue_usd: base.twitter_background_revenue_usd * factor,
            youtube_background_revenue_usd: base.youtube_background_revenue_usd * factor,
            twitch_streams: f(base.twitch_streams),
            ..base
        }
    }

    /// A small configuration for fast unit/integration tests.
    pub fn test_small() -> WorldConfig {
        let mut c = WorldConfig::scaled(0.02);
        c.seed = 0x7E57;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_scale() {
        let c = WorldConfig::default();
        assert_eq!(c.scam_tweets, 457_248);
        assert_eq!(c.scam_streams, 2_255); // 2,069 detected + detection headroom
        assert_eq!(c.twitter_payments, 671);
        assert_eq!(c.youtube_payments, 638);
        // Windows: 26 weeks of YouTube monitoring.
        assert_eq!((c.youtube_end - c.youtube_start).as_days(), 26 * 7);
    }

    #[test]
    fn scaled_preserves_ratios() {
        let c = WorldConfig::scaled(0.1);
        let base = WorldConfig::default();
        let ratio = c.scam_tweets as f64 / base.scam_tweets as f64;
        assert!((ratio - 0.1).abs() < 0.01);
        assert!(c.twitter_victims <= c.twitter_payments);
        assert!(c.pilot_sites <= c.pilot_streams);
        // Revenue per payment stays in the same ballpark.
        let rev_per_pay_base =
            base.twitter_revenue_usd.iter().sum::<f64>() / base.twitter_payments as f64;
        let rev_per_pay = c.twitter_revenue_usd.iter().sum::<f64>() / c.twitter_payments as f64;
        assert!((rev_per_pay / rev_per_pay_base - 1.0).abs() < 0.2);
    }

    #[test]
    fn tiny_scale_never_degenerates() {
        let c = WorldConfig::scaled(0.001);
        assert!(c.twitter_payments >= 1);
        assert!(c.twitter_domains >= 1);
        assert!(c.scam_streams >= 1);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_zero_factor() {
        let _ = WorldConfig::scaled(0.0);
    }
}
