//! Known cryptocurrency services: the entities Chainalysis-style tagging
//! knows about.
//!
//! Victims overwhelmingly pay *from* centralized exchanges; scammers
//! cash out *to* exchanges, mixers, token contracts, other scams and
//! sanctioned entities. The directory creates those entities with
//! addresses on all three chains, funds them so they can move money,
//! and registers their addresses with the tag service.

use gt_addr::{Address, AddressGenerator, BtcAddress, Coin, EthAddress, XrpAddress};
use gt_chain::{Amount, ChainView};
use gt_cluster::{Category, TagService};
use gt_sim::{RngFactory, SimTime};
use gt_store::{StoreDecode, StoreEncode};
use rand::rngs::StdRng;
use rand::Rng;

/// One known service (e.g. an exchange) and its addresses.
#[derive(Debug, StoreEncode, StoreDecode)]
pub struct Service {
    pub name: String,
    pub category: Category,
    pub btc: Vec<BtcAddress>,
    pub eth: Vec<EthAddress>,
    pub xrp: Vec<XrpAddress>,
}

impl Service {
    /// A deterministic "hot wallet" address for a coin, by index.
    pub fn address(&self, coin: Coin, idx: usize) -> Address {
        match coin {
            Coin::Btc => Address::Btc(self.btc[idx % self.btc.len()]),
            Coin::Eth => Address::Eth(self.eth[idx % self.eth.len()]),
            Coin::Xrp => Address::Xrp(self.xrp[idx % self.xrp.len()]),
        }
    }
}

/// The directory of all known services.
#[derive(Debug, StoreEncode, StoreDecode)]
pub struct ServiceDirectory {
    pub exchanges: Vec<Service>,
    pub mixers: Vec<Service>,
    pub token_contracts: Vec<Service>,
    pub sanctioned: Vec<Service>,
    /// Unrelated scam operations (the "larger illicit ecosystem").
    pub other_scams: Vec<Service>,
}

/// Funding given to each service address so it can send payments.
const EXCHANGE_FLOAT_USD_EQUIV: u64 = 50; // in whole coins, per address — ample

impl ServiceDirectory {
    /// Build the directory: mint addresses, fund them on-chain, tag
    /// them, and (for BTC exchanges) co-spend once so each exchange
    /// forms a visible multi-input cluster.
    pub fn generate(
        rng_factory: &RngFactory,
        chains: &mut ChainView,
        tags: &mut TagService,
        genesis: SimTime,
    ) -> ServiceDirectory {
        let mut rng = rng_factory.rng("services");
        let mut gen = AddressGenerator::new(rng_factory.rng("service-addresses"));

        let make = |name: &str,
                    category: Category,
                    addrs_per_coin: usize,
                    gen: &mut AddressGenerator<StdRng>| {
            let mut svc = Service {
                name: name.to_string(),
                category,
                btc: Vec::new(),
                eth: Vec::new(),
                xrp: Vec::new(),
            };
            for _ in 0..addrs_per_coin {
                match gen.generate(Coin::Btc) {
                    Address::Btc(a) => svc.btc.push(a),
                    _ => unreachable!(),
                }
                match gen.generate(Coin::Eth) {
                    Address::Eth(a) => svc.eth.push(a),
                    _ => unreachable!(),
                }
                match gen.generate(Coin::Xrp) {
                    Address::Xrp(a) => svc.xrp.push(a),
                    _ => unreachable!(),
                }
            }
            svc
        };

        let exchange_names = [
            "Meridian Exchange",
            "HarborTrade",
            "Kestrel Markets",
            "AtlasCoin",
            "PolarisX",
            "Nimbus Digital",
        ];
        let exchanges: Vec<Service> = exchange_names
            .iter()
            .map(|n| make(n, Category::Exchange, 24, &mut gen))
            .collect();
        let mixers: Vec<Service> = ["TumbleWorks", "FogRelay"]
            .iter()
            .map(|n| make(n, Category::Mixing, 6, &mut gen))
            .collect();
        let token_contracts: Vec<Service> = ["WrappedFoo Token", "BazSwap LP", "QuuxDAO Token"]
            .iter()
            .map(|n| make(n, Category::TokenSmartContract, 4, &mut gen))
            .collect();
        let sanctioned: Vec<Service> = ["Blacklisted Broker Ltd", "Embargoed Desk"]
            .iter()
            .map(|n| make(n, Category::SanctionedEntity, 5, &mut gen))
            .collect();
        let other_scams: Vec<Service> = ["Ponzi Garden", "Rug Central", "HYIP Express"]
            .iter()
            .map(|n| make(n, Category::Scam, 8, &mut gen))
            .collect();

        let dir = ServiceDirectory {
            exchanges,
            mixers,
            token_contracts,
            sanctioned,
            other_scams,
        };

        // Tag every address.
        for svc in dir.all() {
            for &a in &svc.btc {
                tags.tag(Address::Btc(a), svc.category);
            }
            for &a in &svc.eth {
                tags.tag(Address::Eth(a), svc.category);
            }
            for &a in &svc.xrp {
                tags.tag(Address::Xrp(a), svc.category);
            }
        }

        // Fund the senders-to-be generously (exchanges pay victims'
        // withdrawals; scam ops consolidate).
        for svc in dir.all() {
            for &a in &svc.btc {
                chains
                    .btc
                    .coinbase(a, Amount(EXCHANGE_FLOAT_USD_EQUIV * 100_000_000), genesis)
                    .expect("genesis funding");
            }
            for &a in &svc.eth {
                chains
                    .eth
                    .mint(
                        a,
                        Amount(EXCHANGE_FLOAT_USD_EQUIV * 1_000 * 1_000_000_000),
                        genesis,
                    )
                    .expect("genesis funding");
            }
            for &a in &svc.xrp {
                chains
                    .xrp
                    .fund(
                        a,
                        Amount(EXCHANGE_FLOAT_USD_EQUIV * 1_000_000 * 1_000_000),
                        genesis,
                    )
                    .expect("genesis funding");
            }
        }

        // Exchanges visibly co-spend their BTC hot wallets once, so the
        // whole exchange becomes one multi-input cluster (how the real
        // tagging generalises from a few observed deposits). Spend one
        // UTXO from *every* hot address in a single transaction.
        for svc in &dir.exchanges {
            let mut inputs = Vec::new();
            let mut total = Amount::ZERO;
            for &a in &svc.btc {
                if let Some((op, txo)) = chains.btc.utxos_of(a).first().copied() {
                    inputs.push(op);
                    total = total.checked_add(txo.value).expect("bounded supply");
                }
            }
            let fee = Amount(10_000);
            let keep = rng.gen_range(1..5) * 100_000_000;
            let outputs = vec![
                gt_chain::TxOut {
                    address: svc.btc[1],
                    value: Amount(keep),
                },
                gt_chain::TxOut {
                    address: svc.btc[0],
                    value: total.saturating_sub(Amount(keep)).saturating_sub(fee),
                },
            ];
            chains
                .btc
                .submit(&inputs, &outputs, genesis)
                .expect("exchange consolidation");
        }

        dir
    }

    /// All services, every category.
    pub fn all(&self) -> impl Iterator<Item = &Service> {
        self.exchanges
            .iter()
            .chain(&self.mixers)
            .chain(&self.token_contracts)
            .chain(&self.sanctioned)
            .chain(&self.other_scams)
    }

    /// A random exchange hot-wallet address for `coin`.
    pub fn random_exchange_address(&self, coin: Coin, rng: &mut StdRng) -> Address {
        let svc = &self.exchanges[rng.gen_range(0..self.exchanges.len())];
        let idx = rng.gen_range(0..1000);
        svc.address(coin, idx)
    }

    /// A random address of a given category (used by cash-out flows).
    pub fn random_of_category(
        &self,
        category: Category,
        coin: Coin,
        rng: &mut StdRng,
    ) -> Option<Address> {
        let pool: &[Service] = match category {
            Category::Exchange => &self.exchanges,
            Category::Mixing => &self.mixers,
            Category::TokenSmartContract => &self.token_contracts,
            Category::SanctionedEntity => &self.sanctioned,
            Category::Scam => &self.other_scams,
            _ => return None,
        };
        let svc = &pool[rng.gen_range(0..pool.len())];
        Some(svc.address(coin, rng.gen_range(0..1000)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_cluster::Clustering;

    fn build() -> (ServiceDirectory, ChainView, TagService) {
        let factory = RngFactory::new(11);
        let mut chains = ChainView::new();
        let mut tags = TagService::new();
        let dir = ServiceDirectory::generate(
            &factory,
            &mut chains,
            &mut tags,
            SimTime::from_ymd(2020, 1, 1),
        );
        (dir, chains, tags)
    }

    #[test]
    fn services_are_tagged() {
        let (dir, _, tags) = build();
        let ex = &dir.exchanges[0];
        assert_eq!(
            tags.category_direct(Address::Btc(ex.btc[0])),
            Some(Category::Exchange)
        );
        assert_eq!(
            tags.category_direct(Address::Eth(dir.mixers[0].eth[0])),
            Some(Category::Mixing)
        );
        assert_eq!(
            tags.category_direct(Address::Xrp(dir.sanctioned[0].xrp[0])),
            Some(Category::SanctionedEntity)
        );
    }

    #[test]
    fn exchange_btc_addresses_form_one_cluster() {
        let (dir, chains, _) = build();
        let mut clustering = Clustering::build(&chains.btc);
        let ex = &dir.exchanges[0];
        assert!(clustering.same_cluster(ex.btc[0], ex.btc[5]));
        assert!(clustering.same_cluster(ex.btc[0], ex.btc[23]));
        // Different exchanges stay separate.
        assert!(!clustering.same_cluster(ex.btc[0], dir.exchanges[1].btc[0]));
    }

    #[test]
    fn services_are_funded() {
        let (dir, chains, _) = build();
        // Exchange BTC balance exists somewhere in the cluster (a
        // consolidation moved coins around, so check the sum).
        let total: u64 = dir.exchanges[0]
            .btc
            .iter()
            .map(|&a| chains.btc.balance(a).0)
            .sum();
        assert!(total > 0);
        assert!(chains.eth.balance(dir.exchanges[0].eth[0]).0 > 0);
        assert!(chains.xrp.balance(dir.exchanges[0].xrp[0]).0 > 0);
    }

    #[test]
    fn random_category_lookup_matches_tags() {
        let (dir, _, tags) = build();
        let mut rng = RngFactory::new(5).rng("test");
        for category in [
            Category::Exchange,
            Category::Mixing,
            Category::TokenSmartContract,
            Category::SanctionedEntity,
            Category::Scam,
        ] {
            let addr = dir
                .random_of_category(category, Coin::Eth, &mut rng)
                .unwrap();
            assert_eq!(tags.category_direct(addr), Some(category));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _, _) = build();
        let (b, _, _) = build();
        assert_eq!(a.exchanges[0].btc, b.exchanges[0].btc);
    }
}
