//! Ground-truth world generation.
//!
//! The paper measured a world that no longer exists: Twitter in early
//! 2022, YouTube livestreams in late 2023, and the payments those lures
//! drove on three blockchains. This crate regenerates that world
//! synthetically — scam operations, their domains and landing pages,
//! the lure campaigns on each platform, the victims and their payments,
//! and the scammers' cash-out flows — calibrated against every number
//! the paper reports (see [`calibration`]).
//!
//! The generated [`World`] holds the same observable surfaces the
//! paper's pipeline consumed: a Twitter snapshot, YouTube/Twitch
//! platforms, a web host serving the landing pages (with cloaking), the
//! three chain ledgers, a category-tag service, and the price oracle.
//! Ground truth (which domains/addresses/payments are actually scams) is
//! kept separately in [`truth::GroundTruth`] so measurements can be
//! scored against it.

pub mod calibration;
pub mod cashout;
pub mod config;
pub mod services;
pub mod sites;
pub mod truth;
pub mod twitch_gen;
pub mod twitter_gen;
pub mod victims;
pub mod world;
pub mod youtube_gen;

pub use config::WorldConfig;
pub use truth::GroundTruth;
pub use world::World;
