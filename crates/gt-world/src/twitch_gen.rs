//! Twitch-side generation (Appendix B.1): thousands of live streams,
//! none of them giveaway scams — the null result the pilot study found.

use crate::config::WorldConfig;
use gt_sim::{RngFactory, SimDuration};
use gt_social::{ChatMessage, StreamVideo, Twitch, TwitchStream, TwitchStreamId, ViewerCurve};
use rand::Rng;

const GAME_CATEGORIES: &[&str] = &[
    "Fortnite",
    "League of Legends",
    "Minecraft",
    "Grand Theft Auto V",
    "Valorant",
    "Counter-Strike",
];
const NON_GAME_CATEGORIES: &[&str] = &["Just Chatting", "Music", "Sports", "Crypto", "Talk Shows"];

/// Generate the Twitch population for the pilot window.
pub fn generate(
    config: &WorldConfig,
    factory: &RngFactory,
    twitch: &mut Twitch,
) -> Vec<TwitchStreamId> {
    let mut rng = factory.rng("twitch");
    let window = (config.pilot_end - config.pilot_start).as_seconds();
    let mut ids = Vec::with_capacity(config.twitch_streams);
    for i in 0..config.twitch_streams {
        let start = config.pilot_start + SimDuration::seconds(rng.gen_range(0..window.max(1)));
        let duration = SimDuration::seconds(rng.gen_range(1_800..21_600));
        let is_gaming = rng.gen_bool(0.7);
        let category = if is_gaming {
            GAME_CATEGORIES[rng.gen_range(0..GAME_CATEGORIES.len())]
        } else {
            NON_GAME_CATEGORIES[rng.gen_range(0..NON_GAME_CATEGORIES.len())]
        };
        // Some streams (both kinds) carry crypto keywords in title/tags
        // — they become filter candidates but are never scams.
        let cryptoish = rng.gen_bool(if is_gaming { 0.02 } else { 0.35 });
        let (title, tags) = if cryptoish {
            (
                [
                    "bitcoin talk while we queue",
                    "crypto market reactions live",
                    "eth merge anniversary chat",
                    "xrp news and chill",
                ][rng.gen_range(0..4)]
                .to_string(),
                vec!["crypto".to_string(), "bitcoin".to_string()],
            )
        } else if is_gaming {
            (
                format!("{category} ranked grind day {i}"),
                vec!["gaming".to_string()],
            )
        } else {
            ("morning hangout".to_string(), vec!["chatting".to_string()])
        };

        let mut chat = Vec::new();
        for _ in 0..rng.gen_range(5..40) {
            chat.push(ChatMessage {
                time: start + SimDuration::seconds(rng.gen_range(0..duration.as_seconds())),
                author: format!("chatter{}", rng.gen_range(0..100_000)),
                text: ["pog", "gg", "nice", "what rank?", "hi from brazil"][rng.gen_range(0..5)]
                    .to_string(),
            });
        }
        chat.sort_by_key(|m| m.time);

        ids.push(twitch.add_stream(TwitchStream {
            id: TwitchStreamId(0),
            channel_name: format!("streamer_{i}"),
            title,
            tags,
            category: category.to_string(),
            start,
            end: start + duration,
            video: StreamVideo::Benign,
            viewers: ViewerCurve {
                peak_concurrent: rng.gen_range(5..5_000),
                total_views: rng.gen_range(100..50_000),
            },
            chat,
        }));
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_population_without_scams() {
        let config = WorldConfig::test_small();
        let factory = RngFactory::new(4);
        let mut twitch = Twitch::new();
        let ids = generate(&config, &factory, &mut twitch);
        assert_eq!(ids.len(), config.twitch_streams);
        for &id in &ids {
            assert!(matches!(twitch.stream(id).video, StreamVideo::Benign));
        }
    }

    #[test]
    fn mix_of_gaming_and_crypto_candidates() {
        let mut config = WorldConfig::test_small();
        config.twitch_streams = 500;
        let factory = RngFactory::new(4);
        let mut twitch = Twitch::new();
        let ids = generate(&config, &factory, &mut twitch);
        let gaming = ids
            .iter()
            .filter(|&&id| GAME_CATEGORIES.contains(&twitch.stream(id).category.as_str()))
            .count();
        assert!(gaming > 250 && gaming < 450, "gaming count {gaming}");
        let cryptoish = ids
            .iter()
            .filter(|&&id| {
                let s = twitch.stream(id);
                s.title.contains("crypto")
                    || s.title.contains("bitcoin")
                    || s.tags.iter().any(|t| t == "crypto")
            })
            .count();
        assert!(cryptoish > 10, "need candidate streams: {cryptoish}");
    }
}
