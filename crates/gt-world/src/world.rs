//! World orchestration: build every surface in dependency order.

use crate::cashout::{self, CashoutSummary};
use crate::config::WorldConfig;
use crate::services::ServiceDirectory;
use crate::sites::{DomainFactory, ScamDomainDb};
use crate::truth::GroundTruth;
use crate::twitch_gen;
use crate::twitter_gen;
use crate::victims::{self, LureSchedule, PaymentTargets};
use crate::youtube_gen;
use gt_addr::Address;
use gt_chain::ChainView;
use gt_cluster::TagService;
use gt_price::PriceOracle;
use gt_sim::{RngFactory, SimDuration, SimTime};
use gt_social::{Twitch, TwitterSnapshot, YouTube};
use gt_store::{StoreDecode, StoreEncode};
use gt_web::host::BenignSiteSpec;
use gt_web::WebHost;

/// The complete generated world: every observable surface the paper's
/// pipeline consumed, plus ground truth for scoring.
#[derive(StoreEncode, StoreDecode)]
pub struct World {
    pub config: WorldConfig,
    pub twitter: TwitterSnapshot,
    pub youtube: YouTube,
    pub twitch: Twitch,
    pub web: WebHost,
    pub chains: ChainView,
    pub tags: TagService,
    pub prices: PriceOracle,
    pub services: ServiceDirectory,
    /// The CryptoScamTracker-style corpus handed to the Twitter side.
    pub scam_db: ScamDomainDb,
    pub truth: GroundTruth,
    /// Cash-out statistics per platform.
    pub twitter_cashout: CashoutSummary,
    pub youtube_cashout: CashoutSummary,
}

impl World {
    /// Content fingerprint of a config — the address a generated
    /// world's snapshot is stored under. Generation is deterministic in
    /// the config, so the config digest identifies the world.
    pub fn fingerprint(config: &WorldConfig) -> gt_store::Digest {
        let mut kb = gt_store::KeyBuilder::new("world");
        kb.push_encoded(config);
        kb.finish()
    }

    /// This world's canonical snapshot bytes (a pure function of the
    /// world's logical state; lazily built acceleration structures are
    /// excluded and rebuilt on restore).
    pub fn snapshot(&self) -> Vec<u8> {
        gt_store::encode_to_vec(self)
    }

    /// Restore a world from snapshot bytes. `None` on any decode
    /// failure — callers fall back to regeneration.
    pub fn from_snapshot(bytes: &[u8]) -> Option<World> {
        gt_store::decode_from_slice(bytes).ok()
    }

    /// Generate a world. Deterministic in `config.seed`.
    pub fn generate(config: WorldConfig) -> World {
        let factory = RngFactory::new(config.seed);
        let prices = PriceOracle::new(&factory);
        let mut chains = ChainView::new();
        let mut tags = TagService::new();
        let genesis = SimTime::from_ymd(2020, 1, 1);
        let services = ServiceDirectory::generate(&factory, &mut chains, &mut tags, genesis);
        let mut domain_factory = DomainFactory::new();

        // ---- Twitter side ----
        let mut twitter = TwitterSnapshot::new();
        let tw = twitter_gen::generate(&config, &factory, &mut domain_factory, &mut twitter);

        // ---- YouTube + Twitch side ----
        let mut youtube = YouTube::new();
        let yt = youtube_gen::generate(&config, &factory, &mut domain_factory, &mut youtube);
        let mut twitch = Twitch::new();
        let twitch_streams = twitch_gen::generate(&config, &factory, &mut twitch);

        // ---- web hosting ----
        let mut web = WebHost::new();
        for d in tw
            .domains
            .iter()
            .chain(&yt.domains)
            .chain(&yt.pilot_domains)
        {
            web.add_scam_site(d.site_spec());
        }
        // The benign tracker site linked from benign stream chats.
        web.add_benign_site(BenignSiteSpec {
            domain: "chart-tools.example-tracker.com".into(),
            html: "<html><body><h1>Portfolio charts</h1><p>Track your holdings.</p></body></html>"
                .into(),
        });

        // ---- payments: Twitter first (2022), then YouTube (2023) ----
        let scam_addresses: Vec<Address> = tw
            .domains
            .iter()
            .chain(&yt.domains)
            .chain(&yt.pilot_domains)
            .flat_map(|d| d.tracked_addresses().collect::<Vec<_>>())
            .collect();
        let other_scam_pool: Vec<Address> = services
            .other_scams
            .iter()
            .flat_map(|s| {
                s.btc
                    .iter()
                    .map(|&a| Address::Btc(a))
                    .chain(s.eth.iter().map(|&a| Address::Eth(a)))
                    .chain(s.xrp.iter().map(|&a| Address::Xrp(a)))
                    .collect::<Vec<_>>()
            })
            .collect();

        // Consolidation senders come from the tagged scam services: the
        // known-scam-sender filter must be able to recognise them even
        // when a landing page was never crawled (so its addresses never
        // entered the identified set).
        let consolidation_pool: Vec<Address> = other_scam_pool.clone();

        let twitter_outcome = victims::generate(
            &PaymentTargets::twitter(&config),
            &config,
            &factory,
            &tw.domains,
            &LureSchedule::Tweets(&tw.lure_times),
            &mut chains,
            &mut tags,
            &prices,
            &consolidation_pool,
            0,
        );

        // Twitter cash-out, after the last Twitter-side movement.
        let twitter_addresses: Vec<Address> = tw
            .domains
            .iter()
            .flat_map(|d| d.tracked_addresses().collect::<Vec<_>>())
            .collect();
        let twitter_cashout_start = twitter_outcome
            .payments
            .iter()
            .map(|p| p.time)
            .max()
            .unwrap_or(config.twitter_end)
            + SimDuration::days(3);
        let twitter_cashout = cashout::run(
            &factory,
            "twitter",
            &mut chains,
            &services,
            &twitter_addresses,
            twitter_cashout_start,
        );

        let youtube_outcome = victims::generate(
            &PaymentTargets::youtube(&config),
            &config,
            &factory,
            &yt.domains,
            &LureSchedule::Streams(&yt.lure_spans),
            &mut chains,
            &mut tags,
            &prices,
            &consolidation_pool,
            10_000_000,
        );

        let youtube_addresses: Vec<Address> = yt
            .domains
            .iter()
            .chain(&yt.pilot_domains)
            .flat_map(|d| d.tracked_addresses().collect::<Vec<_>>())
            .collect();
        let youtube_cashout_start = youtube_outcome
            .payments
            .iter()
            .map(|p| p.time)
            .max()
            .unwrap_or(config.youtube_end)
            + SimDuration::days(3);
        let youtube_cashout = cashout::run(
            &factory,
            "youtube",
            &mut chains,
            &services,
            &youtube_addresses,
            youtube_cashout_start,
        );

        // ---- assemble ground truth ----
        let mut truth = GroundTruth {
            twitter_domains: tw.domains,
            youtube_domains: yt.domains,
            pilot_domains: yt.pilot_domains,
            scam_addresses: scam_addresses.iter().copied().collect(),
            scam_tweets: tw.scam_tweets,
            scam_streams: yt.scam_streams,
            pilot_streams: yt.pilot_streams,
            twitch_streams,
            payments: Vec::new(),
            consolidations: Vec::new(),
            total_scam_views: yt.total_scam_views,
        };
        truth.payments.extend(twitter_outcome.payments);
        truth.payments.extend(youtube_outcome.payments);
        truth.consolidations.extend(twitter_outcome.consolidations);
        truth.consolidations.extend(youtube_outcome.consolidations);

        World {
            config,
            twitter,
            youtube,
            twitch,
            web,
            chains,
            tags,
            prices,
            services,
            scam_db: tw.scam_db,
            truth,
            twitter_cashout,
            youtube_cashout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::Platform;

    fn world() -> World {
        World::generate(WorldConfig::test_small())
    }

    #[test]
    fn generates_complete_world() {
        let w = world();
        let c = &w.config;
        assert!(w.twitter.len() >= c.scam_tweets);
        assert_eq!(w.truth.scam_streams.len(), c.scam_streams);
        assert!(w.web.site_count() > c.twitter_domains);
        assert!(!w.truth.scam_addresses.is_empty());
        assert!(w.chains.total_tx_count() > 0);
    }

    #[test]
    fn payments_match_targets() {
        let w = world();
        let c = &w.config;
        let tw_co: Vec<_> = w
            .truth
            .payments_for(Platform::Twitter)
            .filter(|p| p.co_occurring)
            .collect();
        // Allow slight shortfall from fallback skips.
        assert!(
            (tw_co.len() as i64 - c.twitter_payments as i64).abs() <= 2,
            "twitter co-occurring: {} vs {}",
            tw_co.len(),
            c.twitter_payments
        );
        let yt_co = w
            .truth
            .payments_for(Platform::YouTube)
            .filter(|p| p.co_occurring)
            .count();
        assert!((yt_co as i64 - c.youtube_payments as i64).abs() <= 2);
    }

    #[test]
    fn revenue_lands_near_targets() {
        let w = world();
        let c = &w.config;
        let target: f64 = c.twitter_revenue_usd.iter().sum();
        let measured = w.truth.revenue_usd(Platform::Twitter);
        assert!(
            (measured / target - 1.0).abs() < 0.05,
            "twitter revenue {measured} vs {target}"
        );
        let target_y: f64 = c.youtube_revenue_usd.iter().sum();
        let measured_y = w.truth.revenue_usd(Platform::YouTube);
        assert!(
            (measured_y / target_y - 1.0).abs() < 0.05,
            "youtube revenue {measured_y} vs {target_y}"
        );
    }

    #[test]
    fn payments_are_observable_on_chain() {
        let w = world();
        for p in w.truth.payments.iter().take(50) {
            let incoming = w.chains.incoming(p.recipient);
            assert!(
                incoming.iter().any(|t| t.tx == p.tx),
                "payment {:?} not found on chain",
                p.tx
            );
        }
    }

    #[test]
    fn consolidations_come_from_known_scam_addresses() {
        let w = world();
        for c in &w.truth.consolidations {
            let incoming = w.chains.incoming(c.recipient);
            let transfer = incoming
                .iter()
                .find(|t| t.tx == c.tx)
                .expect("consolidation on chain");
            let sender_known = transfer.senders.iter().any(|s| {
                w.truth.scam_addresses.contains(s)
                    || w.tags.category_direct(*s) == Some(gt_cluster::Category::Scam)
            });
            assert!(
                sender_known,
                "consolidation sender must be a known scam address"
            );
        }
    }

    #[test]
    fn exchange_origin_rate_close() {
        let w = world();
        let co: Vec<_> = w.truth.payments.iter().filter(|p| p.co_occurring).collect();
        let ex = co.iter().filter(|p| p.from_exchange).count();
        let rate = ex as f64 / co.len() as f64;
        // test_small has only a couple dozen co-occurring payments, so
        // the binomial noise band is wide.
        assert!((rate - 0.58).abs() < 0.25, "exchange rate {rate}");
    }

    #[test]
    fn victims_repeat_but_unique_count_matches() {
        let w = world();
        let c = &w.config;
        let tw_victims = w.truth.victim_count(Platform::Twitter);
        assert!(
            (tw_victims as i64 - c.twitter_victims as i64).abs() <= 3,
            "{tw_victims} vs {}",
            c.twitter_victims
        );
    }

    #[test]
    fn cashout_happened() {
        let w = world();
        assert!(w.twitter_cashout.recipients > 0);
        assert!(w.youtube_cashout.recipients > 0);
        // Mostly unlabeled destinations.
        let labeled: usize = w.youtube_cashout.by_category.values().sum();
        assert!(labeled < w.youtube_cashout.recipients / 2);
    }

    #[test]
    fn snapshot_round_trips() {
        let w = world();
        let bytes = w.snapshot();
        let restored = World::from_snapshot(&bytes).expect("snapshot decodes");
        assert_eq!(restored.chains.total_tx_count(), w.chains.total_tx_count());
        assert_eq!(restored.truth.payments.len(), w.truth.payments.len());
        assert_eq!(restored.config.seed, w.config.seed);
        // Canonical: re-encoding the restored world reproduces the bytes.
        assert_eq!(restored.snapshot(), bytes);
        // Garbage is a decode failure, not a panic.
        assert!(World::from_snapshot(&bytes[..bytes.len() / 2]).is_none());
    }

    #[test]
    fn fingerprint_tracks_the_config() {
        let a = WorldConfig::test_small();
        let mut b = WorldConfig::test_small();
        assert_eq!(World::fingerprint(&a), World::fingerprint(&a));
        b.seed ^= 1;
        assert_ne!(World::fingerprint(&a), World::fingerprint(&b));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = world();
        let b = world();
        assert_eq!(a.truth.payments.len(), b.truth.payments.len());
        assert_eq!(
            a.truth.payments.first().map(|p| p.tx),
            b.truth.payments.first().map(|p| p.tx)
        );
        assert_eq!(a.chains.total_tx_count(), b.chains.total_tx_count());
    }
}
