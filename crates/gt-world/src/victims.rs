//! Victim payment generation.
//!
//! Reproduces the structure of Section 5: heavy-tailed ("whale")
//! payment sizes, co-occurrence with lures, repeat victims, exchange
//! origins, in-window scam-to-scam consolidations, and background
//! payments outside any co-occurrence window (the gap between the
//! "co-occurring" and "any" rows of Table 2).

use crate::config::WorldConfig;
use crate::sites::ScamDomain;
use crate::truth::{Platform, TruthConsolidation, TruthPayment};
use gt_addr::{Address, AddressGenerator, Coin};
use gt_chain::{Amount, ChainView};
use gt_cluster::{Category, TagService};
use gt_price::PriceOracle;
use gt_sim::dist::{sample_weighted, LogNormal, Zipf};
use gt_sim::{RngFactory, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// Payment-count mix per coin [BTC, ETH, XRP], chosen so the per-coin
/// revenue split of Table 2 emerges with realistic per-payment sizes.
pub const TWITTER_PAYMENT_MIX: [f64; 3] = [0.27, 0.21, 0.52];
pub const YOUTUBE_PAYMENT_MIX: [f64; 3] = [0.47, 0.28, 0.25];

/// Fraction of lure-carrying, coin-carrying domains that ever receive a
/// payment (Twitter: 121/258; YouTube: 231/342).
pub const TWITTER_PRODUCTIVE_FRACTION: f64 = 121.0 / 258.0;
pub const YOUTUBE_PRODUCTIVE_FRACTION: f64 = 231.0 / 342.0;

/// When the lure fired, per platform.
pub enum LureSchedule<'a> {
    /// Tweet times per domain.
    Tweets(&'a [Vec<SimTime>]),
    /// Stream (start, end) spans per domain.
    Streams(&'a [Vec<(SimTime, SimTime)>]),
}

impl LureSchedule<'_> {
    fn has_lure(&self, domain_idx: usize) -> bool {
        match self {
            LureSchedule::Tweets(t) => !t[domain_idx].is_empty(),
            LureSchedule::Streams(s) => !s[domain_idx].is_empty(),
        }
    }

    /// A payment time inside a co-occurrence window of this domain.
    fn co_occurring_time(&self, domain_idx: usize, rng: &mut StdRng) -> SimTime {
        match self {
            LureSchedule::Tweets(t) => {
                let lures = &t[domain_idx];
                let lure = lures[rng.gen_range(0..lures.len())];
                // Within one week of the tweet (the paper's window),
                // with a margin so boundary jitter can't spill out.
                lure + SimDuration::seconds(rng.gen_range(600..6 * 86_400))
            }
            LureSchedule::Streams(s) => {
                let spans = &s[domain_idx];
                let (start, end) = spans[rng.gen_range(0..spans.len())];
                // During the stream or within 8 hours after it. Start
                // ~32 minutes in so the payment always lands inside the
                // *observed* span too (the monitor discovers a stream up
                // to one 30-minute search poll after it starts).
                let span = (end - start).as_seconds() + 7 * 3600;
                start + SimDuration::seconds(rng.gen_range(1_900..span.max(1_960)))
            }
        }
    }

    /// A time strictly outside every co-occurrence window of the domain
    /// (after the last window closes).
    fn background_time(&self, domain_idx: usize, rng: &mut StdRng) -> SimTime {
        let after = match self {
            LureSchedule::Tweets(t) => {
                *t[domain_idx].last().expect("domain has lures") + SimDuration::days(8)
            }
            LureSchedule::Streams(s) => {
                s[domain_idx].last().expect("domain has lures").1 + SimDuration::hours(9)
            }
        };
        after + SimDuration::seconds(rng.gen_range(0..90 * 86_400))
    }
}

/// A planned money movement, before chain execution.
struct Intent {
    time: SimTime,
    coin: Coin,
    usd: f64,
    recipient: Address,
    kind: IntentKind,
}

enum IntentKind {
    Victim {
        victim: u64,
        from_exchange: bool,
        co_occurring: bool,
    },
    Consolidation {
        /// Sender is another scam-controlled address.
        sender: Address,
    },
}

/// Per-victim wallet state (one sender address per victim).
struct VictimWallet {
    address: Address,
    from_exchange: bool,
}

/// Output of the generator.
pub struct PaymentOutcome {
    pub payments: Vec<TruthPayment>,
    pub consolidations: Vec<TruthConsolidation>,
    /// Productive domain indexes (received at least one payment).
    pub productive_domains: Vec<usize>,
}

/// All knobs for one platform's payment generation.
pub struct PaymentTargets {
    pub platform: Platform,
    pub payments: usize,
    pub victims: usize,
    pub consolidations: usize,
    pub background_payments: usize,
    pub revenue_usd: [f64; 3],
    pub background_revenue_usd: f64,
    pub mix: [f64; 3],
    pub productive_fraction: f64,
    /// Log-normal sigma of payment sizes. Twitter's is lighter: its
    /// whale structure (top 24 of 671 for half the value) is less
    /// extreme than a shared sigma would produce once per-coin pools
    /// are rescaled independently.
    pub sigma: f64,
}

impl PaymentTargets {
    pub fn twitter(config: &WorldConfig) -> Self {
        PaymentTargets {
            platform: Platform::Twitter,
            payments: config.twitter_payments,
            victims: config.twitter_victims,
            consolidations: config.twitter_consolidations,
            background_payments: config.twitter_background_payments,
            revenue_usd: config.twitter_revenue_usd,
            background_revenue_usd: config.twitter_background_revenue_usd,
            mix: TWITTER_PAYMENT_MIX,
            productive_fraction: TWITTER_PRODUCTIVE_FRACTION,
            sigma: config.payment_sigma * 0.86,
        }
    }

    pub fn youtube(config: &WorldConfig) -> Self {
        PaymentTargets {
            platform: Platform::YouTube,
            payments: config.youtube_payments,
            victims: config.youtube_victims,
            consolidations: config.youtube_consolidations,
            background_payments: config.youtube_background_payments,
            revenue_usd: config.youtube_revenue_usd,
            background_revenue_usd: config.youtube_background_revenue_usd,
            mix: YOUTUBE_PAYMENT_MIX,
            productive_fraction: YOUTUBE_PRODUCTIVE_FRACTION,
            sigma: config.payment_sigma,
        }
    }
}

/// Draw `n` heavy-tailed USD amounts rescaled to sum to `total`.
fn draw_amounts(n: usize, total: f64, sigma: f64, rng: &mut StdRng) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let dist = LogNormal::new(0.0, sigma);
    let mut raw: Vec<f64> = (0..n).map(|_| dist.sample(rng)).collect();
    let sum: f64 = raw.iter().sum();
    let scale = total / sum.max(f64::MIN_POSITIVE);
    for v in &mut raw {
        *v = (*v * scale).max(1.0);
    }
    raw
}

/// Generate and execute all payments for one platform.
#[allow(clippy::too_many_arguments)]
pub fn generate(
    targets: &PaymentTargets,
    config: &WorldConfig,
    factory: &RngFactory,
    domains: &[ScamDomain],
    lures: &LureSchedule<'_>,
    chains: &mut ChainView,
    tags: &mut TagService,
    prices: &PriceOracle,
    scam_sender_pool: &[Address],
    victim_id_base: u64,
) -> PaymentOutcome {
    let label = match targets.platform {
        Platform::Twitter => "victims-twitter",
        Platform::YouTube => "victims-youtube",
    };
    let mut rng = factory.rng(label);
    let mut addr_gen = AddressGenerator::new(factory.rng(&format!("{label}-wallets")));

    // ---- pick the productive domains ----
    let eligible: Vec<usize> = (0..domains.len())
        .filter(|&i| domains[i].tracked_addresses().count() > 0 && lures.has_lure(i))
        .collect();
    assert!(
        !eligible.is_empty(),
        "no domain has both a tracked address and a lure"
    );
    let n_productive = ((eligible.len() as f64 * targets.productive_fraction).round() as usize)
        .clamp(1, eligible.len());
    let lure_count = |i: usize| match lures {
        LureSchedule::Tweets(t) => t[i].len(),
        LureSchedule::Streams(s) => s[i].len(),
    };
    // Productive domains cluster by operation: the paper's 671 Twitter
    // payments hit only 68 recipient addresses because a handful of
    // address-sharing ops ran the productive campaigns. Rank ops by
    // total lure volume and take whole op groups until the productive
    // budget is spent. (YouTube domains carry op == MAX, so each is its
    // own group and this degenerates to per-domain ranking.)
    let mut op_lures: HashMap<usize, usize> = HashMap::new();
    let op_key = |i: usize| {
        if domains[i].op == usize::MAX {
            usize::MAX - i
        } else {
            domains[i].op
        }
    };
    for &i in &eligible {
        *op_lures.entry(op_key(i)).or_insert(0) += lure_count(i);
    }
    let mut op_rank: Vec<(usize, usize)> = op_lures.into_iter().collect();
    op_rank.sort_by_key(|&(op, total)| (std::cmp::Reverse(total), op));
    let mut productive: Vec<usize> = Vec::with_capacity(n_productive);
    'fill: for (op, _) in op_rank {
        let mut members: Vec<usize> = eligible
            .iter()
            .copied()
            .filter(|&i| op_key(i) == op)
            .collect();
        members.sort_by_key(|&i| std::cmp::Reverse(lure_count(i)));
        for m in members {
            productive.push(m);
            if productive.len() == n_productive {
                break 'fill;
            }
        }
    }
    let productive_zipf = Zipf::new(productive.len(), 0.9);

    // ---- plan co-occurring victim payments ----
    let mut intents: Vec<Intent> = Vec::new();
    let coins = [Coin::Btc, Coin::Eth, Coin::Xrp];

    // A coin no productive domain displays can never be paid; at small
    // scales this happens routinely. Fold such a coin's mix weight and
    // revenue target into the covered coins so the payment count and
    // total revenue still land on target.
    let covered: Vec<bool> = coins
        .iter()
        .map(|&c| {
            productive
                .iter()
                .any(|&d| domains[d].address_for(c).is_some())
        })
        .collect();
    let mut mix = targets.mix;
    let mut revenue_usd = targets.revenue_usd;
    if covered.iter().any(|&c| !c) {
        let lost_revenue: f64 = (0..3)
            .filter(|&i| !covered[i])
            .map(|i| revenue_usd[i])
            .sum();
        for i in 0..3 {
            if !covered[i] {
                mix[i] = 0.0;
                revenue_usd[i] = 0.0;
            }
        }
        let kept_revenue: f64 = revenue_usd.iter().sum();
        let n_covered = covered.iter().filter(|&&c| c).count().max(1);
        for i in 0..3 {
            if covered[i] {
                revenue_usd[i] += if kept_revenue > 0.0 {
                    lost_revenue * revenue_usd[i] / kept_revenue
                } else {
                    lost_revenue / n_covered as f64
                };
            }
        }
    }

    let mut coin_counts = [0usize; 3];
    for _ in 0..targets.payments {
        coin_counts[sample_weighted(&mut rng, &mix)] += 1;
    }

    // Per-coin amount queues: each coin's amounts already sum to that
    // coin's Table 2 revenue target, so a payment must only ever be
    // spent on a domain displaying that coin.
    let mut amount_queues: Vec<Vec<f64>> = coins
        .iter()
        .enumerate()
        .map(|(ci, _)| draw_amounts(coin_counts[ci], revenue_usd[ci], targets.sigma, &mut rng))
        .collect();

    // Victim wallets: first `victims` payments get fresh victims, the
    // remainder are repeat payers.
    let mut wallets: Vec<VictimWallet> = Vec::new();
    let mut wallet_of: HashMap<u64, usize> = HashMap::new();
    let mut victims_by_coin: HashMap<Coin, Vec<u64>> = HashMap::new();

    let mut payment_no = 0usize;
    let mut rr_cursor = 0usize;
    let total_payments: usize = coin_counts.iter().sum();
    for _ in 0..total_payments {
        // First pass round-robins over the productive set so every
        // productive domain receives at least one payment (the paper's
        // "domains paid" count is exact); afterwards pick zipf-weighted.
        // The coin is then chosen among the coins the domain displays,
        // weighted by the remaining per-coin budgets.
        let round_robin = rr_cursor < productive.len();
        let mut domain_idx = if round_robin {
            let d = productive[rr_cursor];
            rr_cursor += 1;
            d
        } else {
            productive[productive_zipf.sample(&mut rng) - 1]
        };
        let pick_coin = |domain_idx: usize, queues: &[Vec<f64>], rng: &mut StdRng| {
            let weights: Vec<f64> = coins
                .iter()
                .enumerate()
                .map(|(ci, &coin)| {
                    if domains[domain_idx].address_for(coin).is_some() {
                        queues[ci].len() as f64
                    } else {
                        0.0
                    }
                })
                .collect();
            if weights.iter().sum::<f64>() <= 0.0 {
                None
            } else {
                Some(coins[sample_weighted(rng, &weights)])
            }
        };
        let mut coin = pick_coin(domain_idx, &amount_queues, &mut rng);
        if !round_robin {
            // Resample the domain if it cannot take any remaining coin.
            for _ in 0..20 {
                if coin.is_some() {
                    break;
                }
                domain_idx = productive[productive_zipf.sample(&mut rng) - 1];
                coin = pick_coin(domain_idx, &amount_queues, &mut rng);
            }
        }
        // Last resort: any domain displaying a coin with budget left.
        if coin.is_none() {
            for &d in &productive {
                coin = pick_coin(d, &amount_queues, &mut rng);
                if coin.is_some() {
                    domain_idx = d;
                    break;
                }
            }
        }
        let Some(coin) = coin else { continue };
        let ci = coins.iter().position(|&c| c == coin).expect("known coin");
        let usd = amount_queues[ci].pop().expect("queue non-empty");
        let recipient = domains[domain_idx]
            .address_for(coin)
            .expect("coin chosen from displayed set");

        // Victim: new until the victim budget is spent, then repeat.
        let new_victim = |rng: &mut StdRng,
                          addr_gen: &mut AddressGenerator<StdRng>,
                          wallets: &mut Vec<VictimWallet>,
                          wallet_of: &mut HashMap<u64, usize>,
                          victims_by_coin: &mut HashMap<Coin, Vec<u64>>,
                          tags: &mut TagService,
                          id: u64| {
            let from_exchange = rng.gen_bool(config.exchange_origin_rate);
            let address = addr_gen.generate(coin);
            if from_exchange {
                tags.tag(address, Category::Exchange);
            }
            wallet_of.insert(id, wallets.len());
            wallets.push(VictimWallet {
                address,
                from_exchange,
            });
            victims_by_coin.entry(coin).or_default().push(id);
            id
        };
        let victim = if payment_no < targets.victims {
            new_victim(
                &mut rng,
                &mut addr_gen,
                &mut wallets,
                &mut wallet_of,
                &mut victims_by_coin,
                tags,
                victim_id_base + payment_no as u64,
            )
        } else {
            // A repeat payer with a wallet for this coin, if any.
            match victims_by_coin.get(&coin).filter(|v| !v.is_empty()) {
                Some(pool) => pool[rng.gen_range(0..pool.len())],
                None => new_victim(
                    &mut rng,
                    &mut addr_gen,
                    &mut wallets,
                    &mut wallet_of,
                    &mut victims_by_coin,
                    tags,
                    victim_id_base + payment_no as u64,
                ),
            }
        };
        let wallet = &wallets[wallet_of[&victim]];
        intents.push(Intent {
            time: lures.co_occurring_time(domain_idx, &mut rng),
            coin,
            usd,
            recipient,
            kind: IntentKind::Victim {
                victim,
                from_exchange: wallet.from_exchange,
                co_occurring: true,
            },
        });
        payment_no += 1;
    }

    // ---- background ("any" minus co-occurring) payments ----
    let background_amounts = draw_amounts(
        targets.background_payments,
        targets.background_revenue_usd * 0.98,
        targets.sigma,
        &mut rng,
    );
    for usd in background_amounts {
        let domain_idx = productive[productive_zipf.sample(&mut rng) - 1];
        let Some(recipient) = domains[domain_idx].tracked_addresses().next() else {
            continue;
        };
        let coin = recipient.coin();
        let victim = victim_id_base + 1_000_000 + intents.len() as u64;
        let address = addr_gen.generate(coin);
        let from_exchange = rng.gen_bool(config.exchange_origin_rate);
        if from_exchange {
            tags.tag(address, Category::Exchange);
        }
        wallet_of.insert(victim, wallets.len());
        wallets.push(VictimWallet {
            address,
            from_exchange,
        });
        intents.push(Intent {
            time: lures.background_time(domain_idx, &mut rng),
            coin,
            usd,
            recipient,
            kind: IntentKind::Victim {
                victim,
                from_exchange,
                co_occurring: false,
            },
        });
    }

    // ---- in-window consolidations (known-scam senders) ----
    let consolidation_amounts = draw_amounts(
        targets.consolidations,
        targets.background_revenue_usd * 0.02,
        1.0,
        &mut rng,
    );
    for usd in consolidation_amounts {
        let domain_idx = productive[productive_zipf.sample(&mut rng) - 1];
        let Some(recipient) = domains[domain_idx].tracked_addresses().next() else {
            continue;
        };
        let coin = recipient.coin();
        // Sender: a known scam address of the right coin.
        let candidates: Vec<Address> = scam_sender_pool
            .iter()
            .copied()
            .filter(|a| a.coin() == coin && *a != recipient)
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let sender = candidates[rng.gen_range(0..candidates.len())];
        intents.push(Intent {
            time: lures.co_occurring_time(domain_idx, &mut rng),
            coin,
            usd,
            recipient,
            kind: IntentKind::Consolidation { sender },
        });
    }

    // ---- execute in time order ----
    intents.sort_by_key(|i| i.time);
    let mut payments = Vec::new();
    let mut consolidations = Vec::new();
    for intent in intents {
        let units = prices.from_usd(intent.coin, intent.usd, intent.time).max(1);
        let usd_exact = prices.to_usd(intent.coin, units, intent.time);
        match intent.kind {
            IntentKind::Victim {
                victim,
                from_exchange,
                co_occurring,
            } => {
                let sender = wallets[wallet_of[&victim]].address;
                fund_if_needed(chains, sender, units, intent.time);
                let tx = execute_transfer(chains, sender, intent.recipient, units, intent.time);
                payments.push(TruthPayment {
                    platform: targets.platform,
                    tx,
                    recipient: intent.recipient,
                    victim,
                    time: intent.time,
                    usd: usd_exact,
                    from_exchange,
                    co_occurring,
                });
            }
            IntentKind::Consolidation { sender } => {
                // Give the scam sender the balance it is consolidating
                // (it received these funds off-observation earlier).
                top_up(chains, sender, units, intent.time);
                let tx = execute_transfer(chains, sender, intent.recipient, units, intent.time);
                consolidations.push(TruthConsolidation {
                    platform: targets.platform,
                    tx,
                    recipient: intent.recipient,
                    time: intent.time,
                });
            }
        }
    }

    PaymentOutcome {
        payments,
        consolidations,
        productive_domains: productive,
    }
}

fn fund_if_needed(chains: &mut ChainView, sender: Address, units: u64, time: SimTime) {
    // Fund enough for this payment plus fees; repeat payers get topped
    // up every time (their exchange keeps custodying).
    let buffer = units + units / 10 + 100_000;
    match sender {
        Address::Btc(a) => {
            chains
                .btc
                .coinbase(a, Amount(buffer), time)
                .expect("victim funding");
        }
        Address::Eth(a) => {
            chains
                .eth
                .mint(a, Amount(buffer), time)
                .expect("victim funding");
        }
        Address::Xrp(a) => {
            chains
                .xrp
                .fund(a, Amount(buffer), time)
                .expect("victim funding");
        }
    }
}

fn top_up(chains: &mut ChainView, address: Address, units: u64, time: SimTime) {
    let buffer = units + units / 10 + 100_000;
    match address {
        Address::Btc(a) => {
            chains
                .btc
                .coinbase(a, Amount(buffer), time)
                .expect("top up");
        }
        Address::Eth(a) => {
            chains.eth.mint(a, Amount(buffer), time).expect("top up");
        }
        Address::Xrp(a) => {
            chains.xrp.fund(a, Amount(buffer), time).expect("top up");
        }
    }
}

fn execute_transfer(
    chains: &mut ChainView,
    sender: Address,
    recipient: Address,
    units: u64,
    time: SimTime,
) -> gt_chain::TxRef {
    match (sender, recipient) {
        (Address::Btc(from), Address::Btc(to)) => {
            let idx = chains
                .btc
                .pay(&[from], to, Amount(units), from, Amount(1_000), time)
                .expect("btc payment");
            gt_chain::TxRef {
                coin: Coin::Btc,
                index: idx,
            }
        }
        (Address::Eth(from), Address::Eth(to)) => {
            let idx = chains
                .eth
                .transfer(from, to, Amount(units), time)
                .expect("eth payment");
            gt_chain::TxRef {
                coin: Coin::Eth,
                index: idx,
            }
        }
        (Address::Xrp(from), Address::Xrp(to)) => {
            let idx = chains
                .xrp
                .send(from, to, Amount(units), Some(700_000), time)
                .expect("xrp payment");
            gt_chain::TxRef {
                coin: Coin::Xrp,
                index: idx,
            }
        }
        _ => panic!("sender and recipient must share a chain"),
    }
}
