//! Scammer cash-out flows (Section 5.5).
//!
//! After the campaigns, funds leave the scam addresses: mostly to fresh
//! unlabeled addresses (peeling / self-custody), a few percent directly
//! to exchanges, and occasional hops to token contracts, mixers, other
//! scams and sanctioned entities. BTC addresses are spent with
//! single-input transactions ~87% of the time (keeping their
//! multi-input clusters at size one); the rest co-spend a sibling scam
//! address, producing the paper's minority of larger clusters.

use crate::services::ServiceDirectory;
use gt_addr::{Address, AddressGenerator, Coin};
use gt_chain::{Amount, ChainView, TxOut};
use gt_cluster::Category;
use gt_sim::dist::sample_weighted;
use gt_sim::{RngFactory, SimDuration, SimTime};
use gt_store::{StoreDecode, StoreEncode};
use rand::Rng;
use std::collections::HashMap;

/// Outcome counters for tests / EXPERIMENTS.md.
#[derive(Debug, Default, Clone, PartialEq, Eq, StoreEncode, StoreDecode)]
pub struct CashoutSummary {
    /// Distinct recipients of outgoing transfers.
    pub recipients: usize,
    /// Recipients by category (unlabeled recipients are absent).
    pub by_category: HashMap<Category, usize>,
    /// BTC scam addresses spent via a co-spend (cluster > 1).
    pub btc_cospent: usize,
    /// BTC scam addresses spent single-input.
    pub btc_single: usize,
}

/// Destination category mix per out-edge. Fractions follow Section 5.5
/// (57 exchange, 13 token contract, 4 mixing, 22 scam, 13 sanctioned of
/// 1,363 recipients; the rest fresh unlabeled addresses).
const DEST_MIX: [(Option<Category>, f64); 6] = [
    (None, 0.9200),
    (Some(Category::Exchange), 0.0418),
    (Some(Category::Scam), 0.0161),
    (Some(Category::TokenSmartContract), 0.0095),
    (Some(Category::SanctionedEntity), 0.0095),
    (Some(Category::Mixing), 0.0031),
];

/// Fraction of BTC scam addresses that get co-spent with a sibling.
const BTC_COSPEND_RATE: f64 = 0.05;

/// Run cash-out for every scam address that holds a balance.
///
/// `label` scopes the RNG stream; `start` must be later than every
/// incoming payment.
pub fn run(
    factory: &RngFactory,
    label: &str,
    chains: &mut ChainView,
    services: &ServiceDirectory,
    scam_addresses: &[Address],
    start: SimTime,
) -> CashoutSummary {
    let mut rng = factory.rng(&format!("cashout-{label}"));
    let mut fresh = AddressGenerator::new(factory.rng(&format!("cashout-fresh-{label}")));
    let mut summary = CashoutSummary::default();
    let mut seen_recipients = std::collections::HashSet::new();
    let mut intermediaries: Vec<Address> = Vec::new();
    let weights: Vec<f64> = DEST_MIX.iter().map(|&(_, w)| w).collect();

    let pick_dest = |coin: Coin,
                     rng: &mut rand::rngs::StdRng,
                     fresh: &mut AddressGenerator<rand::rngs::StdRng>| {
        let (category, _) = DEST_MIX[sample_weighted(rng, &weights)];
        match category {
            Some(c) => (
                services
                    .random_of_category(c, coin, rng)
                    .expect("directory covers every category"),
                Some(c),
            ),
            None => (fresh.generate(coin), None),
        }
    };

    let mut now = start;

    // ---- BTC: explicit UTXO spends, mostly single-input ----
    let btc_addrs: Vec<gt_addr::BtcAddress> = scam_addresses
        .iter()
        .filter_map(|a| match a {
            Address::Btc(b) if chains.btc.balance(*b) > Amount::ZERO => Some(*b),
            _ => None,
        })
        .collect();
    let mut i = 0;
    while i < btc_addrs.len() {
        now += SimDuration::minutes(30);
        let cospend = rng.gen_bool(BTC_COSPEND_RATE) && i + 1 < btc_addrs.len();
        let group: Vec<gt_addr::BtcAddress> = if cospend {
            summary.btc_cospent += 2;
            let g = vec![btc_addrs[i], btc_addrs[i + 1]];
            i += 2;
            g
        } else {
            summary.btc_single += 1;
            let g = vec![btc_addrs[i]];
            i += 1;
            g
        };
        let mut inputs = Vec::new();
        let mut total = 0u64;
        for a in &group {
            for (op, txo) in chains.btc.utxos_of(*a) {
                inputs.push(op);
                total += txo.value.0;
            }
        }
        if inputs.is_empty() || total < 10_000 {
            continue;
        }
        let fee = 2_000u64.min(total / 10);
        let spendable = total - fee;
        let n_out = rng.gen_range(4..=6usize);
        let mut outputs = Vec::new();
        let mut remaining = spendable;
        for k in 0..n_out {
            let value = if k + 1 == n_out {
                remaining
            } else {
                let v = remaining / (n_out - k) as u64;
                let v = rng.gen_range(v / 2..=v.max(1));
                remaining -= v;
                v
            };
            if value == 0 {
                continue;
            }
            let (dest, category) = pick_dest(Coin::Btc, &mut rng, &mut fresh);
            let Address::Btc(dest_btc) = dest else {
                unreachable!()
            };
            outputs.push(TxOut {
                address: dest_btc,
                value: Amount(value),
            });
            if seen_recipients.insert(dest) {
                summary.recipients += 1;
                match category {
                    Some(c) => {
                        *summary.by_category.entry(c).or_insert(0) += 1;
                    }
                    None => intermediaries.push(dest),
                }
            }
        }
        if outputs.is_empty() {
            continue;
        }
        chains
            .btc
            .submit(&inputs, &outputs, now)
            .expect("cash-out spend");
    }

    // ---- ETH / XRP: account transfers ----
    for &addr in scam_addresses {
        match addr {
            Address::Eth(a) => {
                let balance = chains.eth.balance(a).0;
                if balance < 10_000 {
                    continue;
                }
                now += SimDuration::minutes(17);
                let hops = rng.gen_range(3..=5usize);
                let mut remaining = balance - balance / 100; // leave dust
                for k in 0..hops {
                    let value = if k + 1 == hops {
                        remaining
                    } else {
                        let v = remaining / (hops - k) as u64;
                        remaining -= v;
                        v
                    };
                    if value == 0 {
                        continue;
                    }
                    let (dest, category) = pick_dest(Coin::Eth, &mut rng, &mut fresh);
                    let Address::Eth(dest_eth) = dest else {
                        unreachable!()
                    };
                    chains
                        .eth
                        .transfer(a, dest_eth, Amount(value), now)
                        .expect("eth cash-out");
                    if seen_recipients.insert(dest) {
                        summary.recipients += 1;
                        match category {
                            Some(c) => {
                                *summary.by_category.entry(c).or_insert(0) += 1;
                            }
                            None => intermediaries.push(dest),
                        }
                    }
                }
            }
            Address::Xrp(a) => {
                let balance = chains.xrp.balance(a).0;
                if balance < 10_000 {
                    continue;
                }
                now += SimDuration::minutes(13);
                let hops = rng.gen_range(1..=3usize);
                let mut remaining = balance - 1_000 * hops as u64; // fee buffer
                for k in 0..hops {
                    let value = if k + 1 == hops {
                        remaining
                    } else {
                        let v = remaining / (hops - k) as u64;
                        remaining -= v;
                        v
                    };
                    if value == 0 {
                        continue;
                    }
                    let (dest, category) = pick_dest(Coin::Xrp, &mut rng, &mut fresh);
                    let Address::Xrp(dest_xrp) = dest else {
                        unreachable!()
                    };
                    chains
                        .xrp
                        .send(a, dest_xrp, Amount(value), None, now)
                        .expect("xrp cash-out");
                    if seen_recipients.insert(dest) {
                        summary.recipients += 1;
                        match category {
                            Some(c) => {
                                *summary.by_category.entry(c).or_insert(0) += 1;
                            }
                            None => intermediaries.push(dest),
                        }
                    }
                }
            }
            Address::Btc(_) => {} // handled above
        }
    }

    // ---- second hop: intermediaries move on ----
    // Direct recipients are 87% unlabeled, but the money does not stop
    // there: most intermediaries forward to an exchange within days
    // (the Phillips & Wilder observation the paper cites — indirect
    // exchange exposure far exceeds the 4% of direct edges). Multi-hop
    // tracing (`gt_cluster::flows`) recovers this structure.
    now += SimDuration::days(2);
    for addr in intermediaries {
        now += SimDuration::minutes(11);
        // 60%: deposit at an exchange; 15%: another labeled service;
        // 25%: hold (trace dead-ends).
        let roll: f64 = rng.gen();
        let category = if roll < 0.60 {
            Some(Category::Exchange)
        } else if roll < 0.70 {
            Some(Category::Mixing)
        } else if roll < 0.75 {
            Some(Category::Scam)
        } else {
            None
        };
        let Some(category) = category else { continue };
        match addr {
            Address::Btc(a) => {
                let balance = chains.btc.balance(a);
                if balance.0 < 20_000 {
                    continue;
                }
                let dest = services
                    .random_of_category(category, Coin::Btc, &mut rng)
                    .expect("directory covers category");
                let Address::Btc(dest_btc) = dest else {
                    unreachable!()
                };
                let _ = chains.btc.pay(
                    &[a],
                    dest_btc,
                    Amount(balance.0 - 10_000),
                    a,
                    Amount(2_000),
                    now,
                );
            }
            Address::Eth(a) => {
                let balance = chains.eth.balance(a);
                if balance.0 < 20_000 {
                    continue;
                }
                let dest = services
                    .random_of_category(category, Coin::Eth, &mut rng)
                    .expect("directory covers category");
                let Address::Eth(dest_eth) = dest else {
                    unreachable!()
                };
                let _ = chains
                    .eth
                    .transfer(a, dest_eth, Amount(balance.0 - 1_000), now);
            }
            Address::Xrp(a) => {
                let balance = chains.xrp.balance(a);
                if balance.0 < 20_000 {
                    continue;
                }
                let dest = services
                    .random_of_category(category, Coin::Xrp, &mut rng)
                    .expect("directory covers category");
                let Address::Xrp(dest_xrp) = dest else {
                    unreachable!()
                };
                let _ = chains
                    .xrp
                    .send(a, dest_xrp, Amount(balance.0 - 1_000), None, now);
            }
        }
    }

    summary
}
