//! Ground truth: what actually happened in the generated world.
//!
//! The measurement pipeline never sees this — it works from the same
//! observables the paper had. Ground truth exists so tests and
//! EXPERIMENTS.md can score the pipeline's recall and compare measured
//! values against generated ones.

use crate::sites::ScamDomain;
use gt_addr::Address;
use gt_chain::TxRef;
use gt_sim::SimTime;
use gt_social::{LiveStreamId, TweetId, TwitchStreamId};
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Which platform a lure or payment belongs to.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub enum Platform {
    Twitter,
    YouTube,
}

/// One victim payment as generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct TruthPayment {
    pub platform: Platform,
    pub tx: TxRef,
    pub recipient: Address,
    /// Stable victim identifier (for unique-sender accounting).
    pub victim: u64,
    pub time: SimTime,
    /// USD value at generation time.
    pub usd: f64,
    /// Whether the sender was an exchange-custodied address.
    pub from_exchange: bool,
    /// Whether this payment was generated inside a co-occurrence window.
    pub co_occurring: bool,
}

/// A consolidation transfer between scam-controlled addresses that lands
/// inside a co-occurrence window (what the known-scam-sender filter must
/// remove).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct TruthConsolidation {
    pub platform: Platform,
    pub tx: TxRef,
    pub recipient: Address,
    pub time: SimTime,
}

/// Everything the generator decided.
#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct GroundTruth {
    /// Scam domains promoted on Twitter (the paper's 361).
    pub twitter_domains: Vec<ScamDomain>,
    /// Scam domains promoted via YouTube streams in the main window.
    pub youtube_domains: Vec<ScamDomain>,
    /// Scam domains promoted during the pilot study.
    pub pilot_domains: Vec<ScamDomain>,
    /// All tracked scam addresses across all scam domains.
    pub scam_addresses: HashSet<Address>,
    /// Every scam tweet generated.
    pub scam_tweets: Vec<TweetId>,
    /// Every scam livestream in the main window.
    pub scam_streams: Vec<LiveStreamId>,
    /// Scam streams in the pilot window.
    pub pilot_streams: Vec<LiveStreamId>,
    /// Twitch streams (all benign — the paper found none).
    pub twitch_streams: Vec<TwitchStreamId>,
    /// Victim payments.
    pub payments: Vec<TruthPayment>,
    /// In-window scam-to-scam consolidations.
    pub consolidations: Vec<TruthConsolidation>,
    /// Total views across scam streams (denominator of the YouTube
    /// conversion rate).
    pub total_scam_views: u64,
}

impl GroundTruth {
    /// Payments for one platform.
    pub fn payments_for(&self, platform: Platform) -> impl Iterator<Item = &TruthPayment> {
        self.payments.iter().filter(move |p| p.platform == platform)
    }

    /// Distinct victims that paid on a platform (co-occurring only).
    pub fn victim_count(&self, platform: Platform) -> usize {
        self.payments_for(platform)
            .filter(|p| p.co_occurring)
            .map(|p| p.victim)
            .collect::<HashSet<_>>()
            .len()
    }

    /// Co-occurring USD revenue for a platform.
    pub fn revenue_usd(&self, platform: Platform) -> f64 {
        self.payments_for(platform)
            .filter(|p| p.co_occurring)
            .map(|p| p.usd)
            .sum()
    }

    /// All domains (Twitter + YouTube + pilot).
    pub fn all_domains(&self) -> impl Iterator<Item = &ScamDomain> {
        self.twitter_domains
            .iter()
            .chain(&self.youtube_domains)
            .chain(&self.pilot_domains)
    }
}
