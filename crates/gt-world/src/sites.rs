//! Scam domains, landing pages, and the CryptoScamTracker-style corpus.

use gt_addr::{Address, Coin};
use gt_hash::sha256d;
use gt_sim::SimTime;
use gt_store::{StoreDecode, StoreEncode};
use gt_web::{CloakingProfile, ScamSiteSpec};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A cryptocurrency address as displayed on a landing page: either one
/// of the three coins the analysis tracks, or some other coin (DOGE,
/// LTC, ...) the paper filters out.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct DisplayAddress {
    /// Human label shown next to the address ("BTC", "DOGE", ...).
    pub label: String,
    /// The address string as printed on the page.
    pub text: String,
    /// Parsed form when the coin is BTC/ETH/XRP.
    pub parsed: Option<Address>,
}

impl DisplayAddress {
    pub fn tracked(coin: Coin, address: Address) -> DisplayAddress {
        DisplayAddress {
            label: coin.to_string(),
            text: address.encode(),
            parsed: Some(address),
        }
    }
}

/// A scam domain with everything needed to host and promote it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct ScamDomain {
    pub domain: String,
    /// Index of the operation running it.
    pub op: usize,
    /// The public figure or brand impersonated.
    pub persona: String,
    /// Addresses printed on the landing page.
    pub addresses: Vec<DisplayAddress>,
    pub cloaking: CloakingProfile,
    pub online_from: SimTime,
    pub offline_from: Option<SimTime>,
}

impl ScamDomain {
    /// The tracked (BTC/ETH/XRP) addresses on the page.
    pub fn tracked_addresses(&self) -> impl Iterator<Item = Address> + '_ {
        self.addresses.iter().filter_map(|d| d.parsed)
    }

    /// The tracked address for a specific coin, if displayed.
    pub fn address_for(&self, coin: Coin) -> Option<Address> {
        self.tracked_addresses().find(|a| a.coin() == coin)
    }

    /// Render this domain's web-host spec.
    pub fn site_spec(&self) -> ScamSiteSpec {
        ScamSiteSpec {
            domain: self.domain.clone(),
            landing_html: landing_html(&self.persona, &self.addresses),
            front_html: front_html(&self.persona),
            cloaking: self.cloaking,
            online_from: self.online_from,
            offline_from: self.offline_from,
        }
    }
}

/// Personae that giveaway scams impersonate.
pub const PERSONAE: &[&str] = &[
    "Elon Musk",
    "Brad Garlinghouse",
    "Vitalik Buterin",
    "Michael Saylor",
    "Charles Hoskinson",
    "Changpeng Zhao",
    "MicroStrategy",
    "Ripple Labs",
    "Tesla Official",
    "Ark Invest",
];

const NAME_PARTS: &[&str] = &[
    "elon",
    "musk",
    "tesla",
    "ripple",
    "xrp",
    "garling",
    "vitalik",
    "eth",
    "btc",
    "saylor",
    "hoskinson",
    "ada",
    "binance",
    "crypto",
    "coin",
    "official",
];
const ACTION_PARTS: &[&str] = &[
    "giveaway", "give", "drop", "airdrop", "2x", "x2", "double", "event", "promo", "claim",
    "bonus", "gift",
];
const TLDS: &[&str] = &[
    "com", "net", "org", "live", "xyz", "site", "online", "top", "fund", "gift", "cash", "pro",
    "info", "club", "vip",
];

/// Mints unique scam domain names.
#[derive(Debug, Default)]
pub struct DomainFactory {
    used: std::collections::HashSet<String>,
}

impl DomainFactory {
    pub fn new() -> Self {
        DomainFactory::default()
    }

    /// A fresh, never-before-returned domain name.
    pub fn mint(&mut self, rng: &mut StdRng) -> String {
        loop {
            let name = NAME_PARTS[rng.gen_range(0..NAME_PARTS.len())];
            let action = ACTION_PARTS[rng.gen_range(0..ACTION_PARTS.len())];
            let tld = TLDS[rng.gen_range(0..TLDS.len())];
            let candidate = if rng.gen_bool(0.3) {
                format!("{name}-{action}{}.{tld}", rng.gen_range(2..100))
            } else {
                format!("{name}-{action}.{tld}")
            };
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
}

/// Landing-page HTML: impersonation banner, urgency copy containing the
/// CryptoScamTracker HTML keywords, and the payment addresses.
pub fn landing_html(persona: &str, addresses: &[DisplayAddress]) -> String {
    let mut rows = String::new();
    for a in addresses {
        rows.push_str(&format!(
            "      <div class=\"coin\"><span class=\"label\">{}</span> \
             <code class=\"addr\">{}</code></div>\n",
            a.label, a.text
        ));
    }
    format!(
        r#"<!doctype html>
<html lang="en">
<head><title>{persona} Official 5,000 Crypto Giveaway</title></head>
<body>
  <h1>{persona} — Biggest crypto giveaway of the year!</h1>
  <p>To participate in the giveaway, immediately send any amount of crypto
     to the address below and we will send back <b>DOUBLE</b> as a bonus.
     Hurry — the event ends soon! Read the rules and send now.</p>
  <section id="addresses">
{rows}  </section>
  <p class="fine">One transaction per participant. Rules apply.</p>
</body>
</html>"#
    )
}

/// Interactive front page (click-through cloaking).
pub fn front_html(persona: &str) -> String {
    format!(
        r#"<!doctype html>
<html lang="en">
<head><title>{persona} Event</title></head>
<body>
  <h1>{persona} Event</h1>
  <p>Select your cryptocurrency to continue.</p>
  <button data-action="continue">BTC</button>
  <button data-action="continue">ETH</button>
  <button data-action="continue">XRP</button>
</body>
</html>"#
    )
}

/// Draw a cloaking profile with the pilot-study behaviour mix: most
/// sites deploy nothing, each behaviour appears on a minority of sites.
pub fn random_cloaking(rng: &mut StdRng) -> CloakingProfile {
    CloakingProfile {
        ip_cloaking: rng.gen_bool(0.18),
        ua_cloaking: rng.gen_bool(0.15),
        front_page: rng.gen_bool(0.22),
        cloudflare: rng.gen_bool(0.12),
    }
}

/// A base58check string for a coin we do *not* track (DOGE 'D…' or
/// LTC 'L…'): syntactically a real address, but never valid as
/// BTC/ETH/XRP.
pub fn other_coin_address(rng: &mut StdRng) -> (String, String) {
    let (label, version) = if rng.gen_bool(0.5) {
        ("DOGE", 0x1eu8)
    } else {
        ("LTC", 0x30u8)
    };
    let mut payload = vec![version];
    let mut hash = [0u8; 20];
    rng.fill(&mut hash);
    payload.extend_from_slice(&hash);
    let checksum = sha256d(&payload);
    payload.extend_from_slice(&checksum[..4]);
    (
        label.to_string(),
        gt_addr::base58::encode(&payload, gt_addr::base58::BTC_ALPHABET),
    )
}

/// One entry of the CryptoScamTracker-style corpus: a domain with the
/// addresses annotated when it was crawled (possibly incomplete — the
/// paper notes missing/inaccurate addresses as a limitation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct ScamDbEntry {
    pub domain: String,
    /// Annotated address strings with coin labels.
    pub addresses: Vec<(String, String)>,
}

/// The corpus handed to the Twitter pipeline.
#[derive(
    Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub struct ScamDomainDb {
    pub entries: Vec<ScamDbEntry>,
}

impl ScamDomainDb {
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn domains(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.domain.as_str())
    }

    pub fn entry(&self, domain: &str) -> Option<&ScamDbEntry> {
        self.entries.iter().find(|e| e.domain == domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_addr::AddressGenerator;
    use gt_text::scan_address_candidates;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn domain_factory_is_unique_and_plausible() {
        let mut f = DomainFactory::new();
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let d = f.mint(&mut r);
            assert!(seen.insert(d.clone()), "duplicate {d}");
            assert!(d.contains('.'), "{d}");
            assert!(d.contains('-'), "{d}");
        }
    }

    #[test]
    fn landing_html_contains_addresses_and_keywords() {
        let mut gen = AddressGenerator::new(rng());
        let a1 = gen.generate(Coin::Btc);
        let a2 = gen.generate(Coin::Xrp);
        let html = landing_html(
            "Elon Musk",
            &[
                DisplayAddress::tracked(Coin::Btc, a1),
                DisplayAddress::tracked(Coin::Xrp, a2),
            ],
        );
        assert!(html.contains(&a1.encode()));
        assert!(html.contains(&a2.encode()));
        // CryptoScamTracker HTML keywords the validator relies on.
        for kw in [
            "participate",
            "send",
            "hurry",
            "bonus",
            "immediately",
            "rules",
            "giveaway",
        ] {
            assert!(html.to_lowercase().contains(kw), "missing keyword {kw}");
        }
        // The address scanner finds the embedded addresses.
        let candidates = scan_address_candidates(&html);
        assert_eq!(candidates.len(), 2);
    }

    #[test]
    fn front_html_has_clickthrough_marker() {
        let html = front_html("Ripple Labs");
        assert!(html.contains(gt_web::host::FRONT_PAGE_MARKER));
        assert!(!html.contains("addr"), "front page shows no address");
    }

    #[test]
    fn other_coin_addresses_do_not_validate_as_tracked() {
        let mut r = rng();
        for _ in 0..50 {
            let (label, text) = other_coin_address(&mut r);
            assert!(label == "DOGE" || label == "LTC");
            assert!(
                gt_addr::validate_any(&text).is_none(),
                "{label} address {text} must not validate as BTC/ETH/XRP"
            );
        }
    }

    #[test]
    fn site_spec_round_trip() {
        let mut gen = AddressGenerator::new(rng());
        let addr = gen.generate(Coin::Eth);
        let d = ScamDomain {
            domain: "elon-2x.live".into(),
            op: 0,
            persona: "Elon Musk".into(),
            addresses: vec![DisplayAddress::tracked(Coin::Eth, addr)],
            cloaking: CloakingProfile::default(),
            online_from: SimTime::from_ymd(2022, 1, 1),
            offline_from: None,
        };
        let spec = d.site_spec();
        assert_eq!(spec.domain, "elon-2x.live");
        assert!(spec.landing_html.contains(&addr.encode()));
        assert_eq!(d.address_for(Coin::Eth), Some(addr));
        assert_eq!(d.address_for(Coin::Btc), None);
    }

    #[test]
    fn cloaking_mix_is_mostly_plain() {
        let mut r = rng();
        let profiles: Vec<CloakingProfile> = (0..1000).map(|_| random_cloaking(&mut r)).collect();
        let plain = profiles
            .iter()
            .filter(|c| !c.ip_cloaking && !c.ua_cloaking && !c.front_page && !c.cloudflare)
            .count();
        assert!(plain > 400, "plain sites should dominate: {plain}");
        assert!(profiles.iter().any(|c| c.cloudflare));
        assert!(profiles.iter().any(|c| c.front_page));
    }
}
