//! YouTube-side generation: channels, scam and benign livestreams, the
//! pilot study, and the Figure 4 weekly profile.

use crate::config::WorldConfig;
use crate::sites::{random_cloaking, DisplayAddress, DomainFactory, ScamDomain, PERSONAE};
use gt_addr::{AddressGenerator, Coin};
use gt_sim::dist::{sample_weighted, LogNormal, Zipf};
use gt_sim::{RngFactory, SimDuration, SimTime};
use gt_social::{
    ChannelId, ChatMessage, LiveStream, LiveStreamId, StreamVideo, ViewerCurve, YouTube,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Normalised weekly stream-count profile for Figure 4 (26 weeks from
/// 2023-07-24): a burst in September (week 6) and a second surge over
/// the December–January holidays, peaking at ~14% of all streams in one
/// week (289 of 2,069 at full scale).
pub const YOUTUBE_WEEKLY_PROFILE: [f64; 26] = [
    0.020, 0.024, 0.028, 0.032, 0.040, 0.070, 0.140, 0.075, 0.045, 0.035, 0.030, 0.026, 0.024,
    0.022, 0.022, 0.024, 0.026, 0.030, 0.036, 0.046, 0.060, 0.075, 0.035, 0.015, 0.012, 0.008,
];

/// Coin-combination distribution for scam streams. Marginals reproduce
/// Section 4.3: BTC 65%, ETH 49%, XRP 40%.
const COIN_COMBOS: [(&[Coin], f64); 8] = [
    (&[Coin::Btc], 0.25),
    (&[Coin::Eth], 0.10),
    (&[Coin::Xrp], 0.09),
    (&[Coin::Btc, Coin::Eth], 0.20),
    (&[Coin::Btc, Coin::Xrp], 0.12),
    (&[Coin::Eth, Coin::Xrp], 0.11),
    (&[Coin::Btc, Coin::Eth, Coin::Xrp], 0.08),
    (&[], 0.05),
];

/// Everything the YouTube generator produces.
pub struct YouTubeWorld {
    /// Scam domains promoted in the main window.
    pub domains: Vec<ScamDomain>,
    /// Scam domains promoted during the pilot.
    pub pilot_domains: Vec<ScamDomain>,
    /// Scam stream ids in the main window.
    pub scam_streams: Vec<LiveStreamId>,
    /// Scam stream ids in the pilot window.
    pub pilot_streams: Vec<LiveStreamId>,
    /// (start, end) of every stream promoting each main-window domain,
    /// index-aligned with `domains`. Drives co-occurrence windows.
    pub lure_spans: Vec<Vec<(SimTime, SimTime)>>,
    /// Total views across main-window scam streams.
    pub total_scam_views: u64,
}

/// Stream durations: log-normal with the pilot study's QR-persistence
/// statistics (median 3,140 s, mean 7,200 s ⇒ σ ≈ 1.29), clamped to
/// [35 min, 12 h] — the floor keeps streams alive across at least one
/// 30-minute search poll, which is also why the paper's dataset
/// contains no shorter streams.
fn sample_duration(rng: &mut StdRng) -> SimDuration {
    // Parameters are inflated above the pilot's *observed* persistence
    // (median 3,140 s, mean 7,200 s) because the monitor only starts
    // measuring after its first search poll finds the stream (~20 min
    // average latency): raw ≈ observed + latency.
    let d = LogNormal::new(4_490f64.ln(), 1.135);
    let secs = d.sample(rng).clamp(2_100.0, 43_200.0);
    SimDuration::seconds(secs as i64)
}

/// Channel subscriber counts: log-normal with median 16.8K.
fn sample_subscribers(rng: &mut StdRng) -> u64 {
    let d = LogNormal::new(16_800f64.ln(), 1.6);
    d.sample(rng).clamp(10.0, 5_000_000.0) as u64
}

/// Generate the scam domains promoted via streams. YouTube scammers
/// cycle addresses: every domain gets fresh addresses (no op pooling).
fn generate_domains(
    n: usize,
    window_start: SimTime,
    rng: &mut StdRng,
    gen: &mut AddressGenerator<StdRng>,
    domain_factory: &mut DomainFactory,
) -> Vec<ScamDomain> {
    (0..n)
        .map(|i| {
            let persona = PERSONAE[rng.gen_range(0..PERSONAE.len())].to_string();
            // Exactly one domain in the paper lacked a tracked address.
            let mut addresses = Vec::new();
            if i == 0 && n > 1 {
                let (label, text) = crate::sites::other_coin_address(rng);
                addresses.push(DisplayAddress {
                    label,
                    text,
                    parsed: None,
                });
            } else {
                let mut coins = vec![Coin::Btc];
                if rng.gen_bool(0.5) {
                    coins.push(Coin::Eth);
                }
                if rng.gen_bool(0.4) {
                    coins.push(Coin::Xrp);
                }
                if rng.gen_bool(0.25) {
                    coins.remove(0); // some domains are ETH/XRP-first
                    if coins.is_empty() {
                        coins.push(Coin::Eth);
                    }
                }
                for coin in coins {
                    addresses.push(DisplayAddress::tracked(coin, gen.generate(coin)));
                }
            }
            let online_from = window_start - SimDuration::days(rng.gen_range(1..30));
            // Most sites stay reachable while their campaign runs; a
            // minority die mid-window (their later streams then lead to
            // dead pages, as the daily-crawl retirement rule expects).
            let offline_from = if rng.gen_bool(0.75) {
                Some(online_from + SimDuration::days(rng.gen_range(150..400)))
            } else {
                None
            };
            ScamDomain {
                domain: domain_factory.mint(rng),
                op: usize::MAX, // YouTube ops are per-domain
                persona,
                addresses,
                cloaking: random_cloaking(rng),
                online_from,
                offline_from,
            }
        })
        .collect()
}

fn scam_stream_title(persona: &str, coins: &[Coin], rng: &mut StdRng) -> String {
    let amount = [500, 1_000, 5_000, 10_000, 50_000][rng.gen_range(0..5)];
    match coins {
        [] => format!("{persona} LIVE giveaway event — claim your bonus now!"),
        [c] => format!(
            "{persona} LIVE: {amount} {} giveaway event — double your crypto!",
            c.name().to_uppercase()
        ),
        [a, b, ..] => format!(
            "{persona} LIVE: {amount} {} & {} giveaway — double your crypto!",
            a.name().to_uppercase(),
            b.name().to_uppercase()
        ),
    }
}

/// Build one scam stream record.
#[allow(clippy::too_many_arguments)]
fn make_scam_stream(
    channel: ChannelId,
    channel_name: &str,
    domain: &ScamDomain,
    start: SimTime,
    rng: &mut StdRng,
    views: u64,
    periodic_qr: bool,
) -> LiveStream {
    let _ = channel_name;
    let duration = sample_duration(rng);
    let end = start + duration;
    let combo_weights: Vec<f64> = COIN_COMBOS.iter().map(|&(_, w)| w).collect();
    let coins = COIN_COMBOS[sample_weighted(rng, &combo_weights)].0;
    let title = scam_stream_title(&domain.persona, coins, rng);
    let url = format!("https://{}", domain.domain);

    // Lead channels: QR in video (85%), URL in chat (60%); at least one.
    let mut qr = rng.gen_bool(0.85);
    let mut chat_link = rng.gen_bool(0.60);
    if !qr && !chat_link {
        if rng.gen_bool(0.5) {
            qr = true;
        } else {
            chat_link = true;
        }
    }

    let video = if qr {
        StreamVideo::ScamLoop {
            qr_url: url.clone(),
            qr_duty_cycle: periodic_qr.then_some((15, 285)),
            qr_scale: 2,
        }
    } else {
        StreamVideo::Benign
    };

    // Scam streams have few chat messages and no user interaction.
    let mut chat = Vec::new();
    let n_msgs = rng.gen_range(0..10u32);
    for m in 0..n_msgs {
        let offset = SimDuration::seconds(
            (duration.as_seconds() * i64::from(m + 1)) / i64::from(n_msgs + 1),
        );
        let text = if chat_link && (m == 0 || rng.gen_bool(0.4)) {
            format!("participate now: {url}")
        } else {
            "the giveaway is live, don't miss out!".to_string()
        };
        chat.push(ChatMessage {
            time: start + offset,
            author: "event-mod".into(),
            text,
        });
    }
    if chat_link && chat.is_empty() {
        chat.push(ChatMessage {
            time: start + SimDuration::seconds(30),
            author: "event-mod".into(),
            text: format!("participate now: {url}"),
        });
    }

    let description = if rng.gen_bool(0.93) {
        let coin_words: Vec<&str> = coins.iter().map(|c| c.name()).collect();
        format!(
            "Official {} giveaway. {} Send and receive double back!",
            coin_words.join(" and "),
            title
        )
    } else {
        "The biggest event of the year — watch till the end.".to_string()
    };

    LiveStream {
        id: LiveStreamId(0),
        channel,
        title,
        description,
        language: "en".into(),
        fuzzy_topics: vec!["crypto giveaway".into()],
        start,
        end,
        video,
        viewers: ViewerCurve {
            peak_concurrent: (views / 20).max(1),
            total_views: views,
        },
        chat,
    }
}

/// Build one benign stream record.
fn make_benign_stream(
    channel: ChannelId,
    start: SimTime,
    rng: &mut StdRng,
    textual_keyword: bool,
    english: bool,
) -> LiveStream {
    let duration = SimDuration::seconds(rng.gen_range(1_800..14_400));
    let (title, description, language) = if textual_keyword {
        (
            [
                "bitcoin price analysis — where next?",
                "ethereum gas watch live",
                "crypto market open: btc eth xrp levels",
                "dogecoin community hangout",
                "tether depeg watch and usdc news",
                "solana ecosystem roundup",
                "cardano stake pool q&a with charles fans",
                "bnb and binance listings chat",
                "litecoin halving countdown",
                "polkadot and polygon layer talk",
                "shiba inu burn tracker live",
                "avalanche subnet demo day",
                "toncoin airdrop rumor check",
                "tron network stats live",
                "algorand dev office hours",
            ][rng.gen_range(0..15)]
            .to_string(),
            "daily technical analysis, not financial advice".to_string(),
            "en".to_string(),
        )
    } else if english {
        (
            [
                "day trading futures live",
                "markets and coffee",
                "street cam: downtown live",
                "lofi beats to chart to",
            ][rng.gen_range(0..4)]
            .to_string(),
            "chill stream".to_string(),
            "en".to_string(),
        )
    } else {
        (
            [
                "análisis del mercado en vivo",
                "ao vivo: mercado de moedas",
                "실시간 시장 분석",
                "прямой эфир: обзор рынка",
            ][rng.gen_range(0..4)]
            .to_string(),
            "transmisión en vivo".to_string(),
            ["es", "pt", "ko", "ru"][rng.gen_range(0..4)].to_string(),
        )
    };

    // Busy chat with user interaction; occasionally a benign URL (a
    // false lead the crawler must reject at validation).
    let mut chat = Vec::new();
    for m in 0..rng.gen_range(10..60u32) {
        let offset = SimDuration::seconds(rng.gen_range(0..duration.as_seconds().max(2)));
        let _ = m;
        let text = if rng.gen_bool(0.05) {
            "check my portfolio tracker https://chart-tools.example-tracker.com".to_string()
        } else {
            [
                "nice move",
                "what about eth?",
                "lol",
                "to the moon",
                "thanks for the stream",
            ][rng.gen_range(0..5)]
            .to_string()
        };
        chat.push(ChatMessage {
            time: start + offset,
            author: format!("viewer{}", rng.gen_range(0..10_000)),
            text,
        });
    }
    chat.sort_by_key(|m| m.time);

    LiveStream {
        id: LiveStreamId(0),
        channel,
        title,
        description,
        language,
        fuzzy_topics: vec!["cryptocurrency".into()],
        start,
        end: start + duration,
        video: StreamVideo::Benign,
        viewers: ViewerCurve {
            peak_concurrent: rng.gen_range(5..2_000),
            total_views: rng.gen_range(50..20_000),
        },
        chat,
    }
}

/// Run the full YouTube-side generation.
pub fn generate(
    config: &WorldConfig,
    factory: &RngFactory,
    domain_factory: &mut DomainFactory,
    youtube: &mut YouTube,
) -> YouTubeWorld {
    let mut rng = factory.rng("youtube");
    let mut gen = AddressGenerator::new(factory.rng("youtube-addresses"));

    // ---- channels ----
    let mut channels = Vec::with_capacity(config.stream_channels);
    for i in 0..config.stream_channels {
        let subs = if i == 0 {
            19_000_000 // the compromised mega-channel
        } else {
            sample_subscribers(&mut rng)
        };
        let name = if rng.gen_bool(0.5) {
            format!("Crypto Daily {i}")
        } else {
            format!("Stream Hub {i}")
        };
        channels.push(youtube.add_channel(name, subs));
    }
    // Benign channels are separate.
    let benign_channels: Vec<ChannelId> = (0..(config.benign_streams / 4).max(1))
        .map(|i| youtube.add_channel(format!("Creator {i}"), sample_subscribers(&mut rng)))
        .collect();

    // ---- scam domains ----
    let domains = generate_domains(
        config.youtube_domains,
        config.youtube_start,
        &mut rng,
        &mut gen,
        domain_factory,
    );
    let pilot_domains = generate_domains(
        config.pilot_sites,
        config.pilot_start,
        &mut rng,
        &mut gen,
        domain_factory,
    );

    // ---- per-stream view counts, rescaled to the configured total ----
    let view_dist = LogNormal::new(1_500f64.ln(), 1.8);
    let mut views: Vec<f64> = (0..config.scam_streams)
        .map(|_| view_dist.sample(&mut rng))
        .collect();
    let raw_total: f64 = views.iter().sum();
    let scale = config.total_scam_views as f64 / raw_total.max(1.0);
    for v in &mut views {
        *v *= scale;
    }

    // ---- main-window scam streams over the weekly profile ----
    let mut per_week: Vec<usize> = YOUTUBE_WEEKLY_PROFILE
        .iter()
        .map(|w| (w * config.scam_streams as f64).round() as usize)
        .collect();
    let drift = config.scam_streams as isize - per_week.iter().sum::<usize>() as isize;
    per_week[6] = (per_week[6] as isize + drift).max(0) as usize;

    // Viewership correlates with campaign bursts: streams in heavy
    // weeks draw disproportionately more viewers (Figure 4's view peak
    // is sharper than its stream-count peak). Normalise so the global
    // view total stays on target.
    let mean_weight = 1.0 / YOUTUBE_WEEKLY_PROFILE.len() as f64;
    let raw_mult: Vec<f64> = YOUTUBE_WEEKLY_PROFILE
        .iter()
        .map(|w| (w / mean_weight).powf(0.33))
        .collect();
    let expected_factor: f64 = YOUTUBE_WEEKLY_PROFILE
        .iter()
        .zip(&raw_mult)
        .map(|(w, m)| w * m)
        .sum();
    let week_mult: Vec<f64> = raw_mult.iter().map(|m| m / expected_factor).collect();

    // The multiplier normalisation above only holds in expectation; with
    // a heavy-tailed view distribution the realised total can drift well
    // past the tolerance when a large draw lands in a boosted week. Apply
    // the multipliers up front and rescale exactly.
    let week_of: Vec<usize> = per_week
        .iter()
        .enumerate()
        .flat_map(|(week, &count)| std::iter::repeat_n(week, count))
        .collect();
    let mut weighted_views: Vec<f64> = views
        .iter()
        .zip(&week_of)
        .map(|(v, &w)| v * week_mult[w])
        .collect();
    let weighted_total: f64 = weighted_views.iter().sum();
    let exact_scale = config.total_scam_views as f64 / weighted_total.max(1.0);
    for v in &mut weighted_views {
        *v *= exact_scale;
    }

    let domain_zipf = Zipf::new(domains.len(), 0.55);
    let channel_zipf = Zipf::new(channels.len(), 0.4);
    let mut scam_streams = Vec::new();
    let mut lure_spans: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); domains.len()];
    let mut total_views = 0u64;
    let mut stream_no = 0usize;
    for (week, &count) in per_week.iter().enumerate() {
        let week_start = config.youtube_start + SimDuration::weeks(week as i64);
        for _ in 0..count {
            let start = week_start + SimDuration::seconds(rng.gen_range(0..7 * 86_400));
            let domain_idx = domain_zipf.sample(&mut rng) - 1;
            // Streams slightly outnumber channels (paper: 2,069 over
            // 1,632): every channel hosts one stream before any channel
            // is reused (compromised channels are burned quickly).
            let channel = if stream_no < channels.len() {
                channels[stream_no]
            } else {
                channels[channel_zipf.sample(&mut rng) - 1]
            };
            let v = weighted_views.get(stream_no).copied().unwrap_or(500.0) as u64;
            let stream = make_scam_stream(
                channel,
                "",
                &domains[domain_idx],
                start,
                &mut rng,
                v.max(1),
                false,
            );
            let span = (stream.start, stream.end);
            let id = youtube.add_stream(stream);
            scam_streams.push(id);
            lure_spans[domain_idx].push(span);
            total_views += v.max(1);
            stream_no += 1;
        }
    }
    for spans in &mut lure_spans {
        spans.sort();
    }

    // ---- pilot scam streams (one with the periodic QR outlier) ----
    let mut pilot_streams = Vec::new();
    let pilot_days = (config.pilot_end - config.pilot_start).as_days().max(1);
    for i in 0..config.pilot_streams {
        let start =
            config.pilot_start + SimDuration::seconds(rng.gen_range(0..pilot_days * 86_400));
        let domain = &pilot_domains[i % pilot_domains.len()];
        let channel = channels[channel_zipf.sample(&mut rng) - 1];
        let pilot_views = rng.gen_range(100..20_000);
        let stream = make_scam_stream(
            channel,
            "",
            domain,
            start,
            &mut rng,
            pilot_views,
            i == 0, // the single periodic-QR case
        );
        pilot_streams.push(youtube.add_stream(stream));
    }

    // ---- benign streams across both windows ----
    // Calibrated so that ~55% of *returned* streams contain a search
    // keyword verbatim (scam streams nearly always do).
    let window_secs = (config.youtube_end - config.pilot_start).as_seconds();
    for i in 0..config.benign_streams {
        let start = config.pilot_start + SimDuration::seconds(rng.gen_range(0..window_secs));
        let textual = rng.gen_bool(0.33);
        let english = textual || rng.gen_bool(0.5);
        let channel = benign_channels[i % benign_channels.len()];
        youtube.add_stream(make_benign_stream(
            channel, start, &mut rng, textual, english,
        ));
    }

    YouTubeWorld {
        domains,
        pilot_domains,
        scam_streams,
        pilot_streams,
        lure_spans,
        total_scam_views: total_views,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (WorldConfig, YouTubeWorld, YouTube) {
        let config = WorldConfig::test_small();
        let factory = RngFactory::new(config.seed);
        let mut youtube = YouTube::new();
        let mut df = DomainFactory::new();
        let world = generate(&config, &factory, &mut df, &mut youtube);
        (config, world, youtube)
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the profile is a const table
    fn profile_is_normalised_with_peak() {
        let sum: f64 = YOUTUBE_WEEKLY_PROFILE.iter().sum();
        assert!((sum - 1.0).abs() < 0.01, "sums to {sum}");
        let peak = YOUTUBE_WEEKLY_PROFILE
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        assert_eq!(YOUTUBE_WEEKLY_PROFILE[6], peak, "peak in September");
        assert!((peak - 289.0 / 2_069.0).abs() < 0.01);
        // A holiday surge exists late in the window.
        assert!(YOUTUBE_WEEKLY_PROFILE[21] > YOUTUBE_WEEKLY_PROFILE[17]);
    }

    #[test]
    fn generates_configured_counts() {
        let (config, world, youtube) = small();
        assert_eq!(world.scam_streams.len(), config.scam_streams);
        assert_eq!(world.pilot_streams.len(), config.pilot_streams);
        assert_eq!(world.domains.len(), config.youtube_domains);
        assert_eq!(
            youtube.stream_count(),
            config.scam_streams + config.pilot_streams + config.benign_streams
        );
        let spans: usize = world.lure_spans.iter().map(Vec::len).sum();
        assert_eq!(spans, config.scam_streams);
    }

    #[test]
    fn views_rescale_to_target() {
        let (config, world, _) = small();
        let drift = (world.total_scam_views as f64 / config.total_scam_views as f64 - 1.0).abs();
        assert!(drift < 0.05, "views drift {drift}");
    }

    #[test]
    fn scam_streams_are_in_window_and_lead_somewhere() {
        let (config, world, youtube) = small();
        for &id in &world.scam_streams {
            let s = youtube.stream(id);
            assert!(s.start >= config.youtube_start);
            assert!(s.start < config.youtube_end);
            let has_qr = matches!(s.video, StreamVideo::ScamLoop { .. });
            let has_chat_link = s.chat.iter().any(|m| m.text.contains("https://"));
            assert!(has_qr || has_chat_link, "stream {id:?} has no lead channel");
            assert!(s.chat.len() < 10, "scam streams have few chat messages");
        }
    }

    #[test]
    fn pilot_contains_the_periodic_qr_outlier() {
        let (_, world, youtube) = small();
        let periodic = world
            .pilot_streams
            .iter()
            .filter(|&&id| {
                matches!(
                    youtube.stream(id).video,
                    StreamVideo::ScamLoop {
                        qr_duty_cycle: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(periodic, 1);
    }

    #[test]
    fn one_domain_lacks_tracked_addresses() {
        let config = WorldConfig::scaled(0.2);
        let factory = RngFactory::new(9);
        let mut youtube = YouTube::new();
        let mut df = DomainFactory::new();
        let world = generate(&config, &factory, &mut df, &mut youtube);
        let untracked = world
            .domains
            .iter()
            .filter(|d| d.tracked_addresses().count() == 0)
            .count();
        assert_eq!(untracked, 1);
    }

    #[test]
    fn youtube_domains_do_not_share_addresses() {
        let (_, world, _) = small();
        let mut seen = std::collections::HashSet::new();
        for d in &world.domains {
            for a in d.tracked_addresses() {
                assert!(seen.insert(a), "YouTube domains must cycle addresses");
            }
        }
    }

    #[test]
    fn mega_channel_exists() {
        let (_, _, youtube) = small();
        let max = (0..youtube.channel_count() as u64)
            .map(|i| youtube.channel_details(ChannelId(i)).unwrap().subscribers)
            .max()
            .unwrap();
        assert_eq!(max, 19_000_000);
    }

    #[test]
    fn benign_streams_have_busy_chats() {
        let (config, world, youtube) = small();
        let scam: std::collections::HashSet<_> = world
            .scam_streams
            .iter()
            .chain(&world.pilot_streams)
            .collect();
        let benign: Vec<_> = (0..youtube.stream_count() as u64)
            .map(LiveStreamId)
            .filter(|id| !scam.contains(id))
            .collect();
        assert_eq!(benign.len(), config.benign_streams);
        let avg_chat: f64 = benign
            .iter()
            .map(|&id| youtube.stream(id).chat.len() as f64)
            .sum::<f64>()
            / benign.len() as f64;
        assert!(avg_chat > 10.0, "benign chats are busy: {avg_chat}");
    }
}
