//! Property tests for the price oracle.

use gt_addr::Coin;
use gt_price::PriceOracle;
use gt_sim::{RngFactory, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn prices_always_positive_and_bounded(
        seed in any::<u64>(),
        day in 18_200i64..19_900, // 2020..2024-ish
    ) {
        let oracle = PriceOracle::new(&RngFactory::new(seed));
        let t = SimTime(day * 86_400);
        for coin in Coin::ALL {
            let p = oracle.price_at(coin, t);
            prop_assert!(p > 0.0);
            prop_assert!(p < 200_000.0, "{coin} at {p}");
        }
        // Ordering of magnitudes is stable: BTC > ETH > XRP always in
        // this period.
        prop_assert!(oracle.price_at(Coin::Btc, t) > oracle.price_at(Coin::Eth, t));
        prop_assert!(oracle.price_at(Coin::Eth, t) > oracle.price_at(Coin::Xrp, t));
    }

    #[test]
    fn usd_round_trip_is_tight(
        usd in 1.0f64..1_000_000.0,
        day in 18_300i64..19_800,
        seed in any::<u64>(),
    ) {
        let oracle = PriceOracle::new(&RngFactory::new(seed));
        let t = SimTime(day * 86_400);
        for coin in Coin::ALL {
            let units = oracle.from_usd(coin, usd, t);
            let back = oracle.to_usd(coin, units, t);
            // Unit rounding: one base unit of slack.
            let unit_usd = oracle.price_at(coin, t) / coin.base_units_per_coin() as f64;
            prop_assert!((back - usd).abs() <= unit_usd + 1e-6, "{coin}: {usd} -> {back}");
        }
    }

    #[test]
    fn daily_moves_are_bounded(seed in any::<u64>(), day in 18_300i64..19_790) {
        let oracle = PriceOracle::new(&RngFactory::new(seed));
        let a = oracle.price_at(Coin::Btc, SimTime(day * 86_400));
        let b = oracle.price_at(Coin::Btc, SimTime((day + 1) * 86_400));
        let log_move = (a / b).ln().abs();
        // Interpolation plus jitter never produces a >35% daily move.
        prop_assert!(log_move < 0.30, "move {log_move}");
    }
}
