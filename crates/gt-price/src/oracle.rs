//! Daily price lookup with deterministic jitter.

use crate::anchors::anchors_for;
use gt_addr::Coin;
use gt_sim::{CivilDate, RngFactory, SimTime};
use gt_store::{StoreDecode, StoreEncode};
use std::collections::HashMap;

/// Deterministic daily USD prices for the supported coins.
///
/// Prices are log-interpolated between monthly anchors, then perturbed by
/// a seeded ±few-percent daily factor so two consecutive days never share
/// an identical price (matching the day-resolution normalisation the
/// paper performs).
#[derive(Debug, StoreEncode, StoreDecode)]
pub struct PriceOracle {
    /// coin → (first day number, daily prices).
    series: HashMap<Coin, (i64, Vec<f64>)>,
}

/// Daily jitter magnitude (standard deviation of the log factor).
const DAILY_JITTER_SIGMA: f64 = 0.018;

impl PriceOracle {
    /// Build the oracle with jitter drawn from `rng_factory`.
    pub fn new(rng_factory: &RngFactory) -> Self {
        let mut series = HashMap::new();
        for coin in Coin::ALL {
            let anchors = anchors_for(coin);
            let first_day = anchors.first().unwrap().date.at_midnight().day_number();
            let last_day = anchors.last().unwrap().date.at_midnight().day_number();
            let mut rng = rng_factory.rng(&format!("price-{}", coin.ticker()));
            let mut prices = Vec::with_capacity((last_day - first_day + 1) as usize);
            let mut anchor_idx = 0usize;
            for day in first_day..=last_day {
                while anchor_idx + 1 < anchors.len()
                    && anchors[anchor_idx + 1].date.at_midnight().day_number() <= day
                {
                    anchor_idx += 1;
                }
                let base = if anchor_idx + 1 == anchors.len() {
                    anchors[anchor_idx].usd
                } else {
                    let a = &anchors[anchor_idx];
                    let b = &anchors[anchor_idx + 1];
                    let a_day = a.date.at_midnight().day_number();
                    let b_day = b.date.at_midnight().day_number();
                    let t = (day - a_day) as f64 / (b_day - a_day) as f64;
                    (a.usd.ln() * (1.0 - t) + b.usd.ln() * t).exp()
                };
                let z = gt_sim::dist::sample_standard_normal(&mut rng);
                prices.push(base * (DAILY_JITTER_SIGMA * z).exp());
            }
            series.insert(coin, (first_day, prices));
        }
        PriceOracle { series }
    }

    /// The average USD price of `coin` on `date`.
    ///
    /// Dates outside the anchored range clamp to the nearest endpoint.
    pub fn price_on(&self, coin: Coin, date: CivilDate) -> f64 {
        let (first_day, prices) = &self.series[&coin];
        let day = date.at_midnight().day_number();
        let idx = (day - first_day).clamp(0, prices.len() as i64 - 1) as usize;
        prices[idx]
    }

    /// The price of `coin` on the day containing `at`.
    pub fn price_at(&self, coin: Coin, at: SimTime) -> f64 {
        self.price_on(coin, at.date())
    }

    /// Convert an amount in base units to USD at the price of the day.
    pub fn to_usd(&self, coin: Coin, base_units: u64, at: SimTime) -> f64 {
        let coins = base_units as f64 / coin.base_units_per_coin() as f64;
        coins * self.price_at(coin, at)
    }

    /// Convert a USD amount into base units at the price of the day.
    pub fn from_usd(&self, coin: Coin, usd: f64, at: SimTime) -> u64 {
        let coins = usd / self.price_at(coin, at);
        (coins * coin.base_units_per_coin() as f64).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::SimDuration;

    fn oracle() -> PriceOracle {
        PriceOracle::new(&RngFactory::new(7))
    }

    #[test]
    fn prices_are_near_anchor_levels() {
        let o = oracle();
        let p = o.price_on(Coin::Btc, CivilDate::new(2022, 1, 1));
        assert!((40_000.0..53_000.0).contains(&p), "BTC Jan 2022: {p}");
        let p = o.price_on(Coin::Eth, CivilDate::new(2022, 7, 1));
        assert!((900.0..1_300.0).contains(&p), "ETH Jul 2022: {p}");
        let p = o.price_on(Coin::Xrp, CivilDate::new(2023, 8, 1));
        assert!((0.55..0.85).contains(&p), "XRP Aug 2023: {p}");
    }

    #[test]
    fn interpolation_is_monotone_in_trend() {
        // BTC falls from June to July 2022; mid-June should sit between.
        let o = oracle();
        let jun = o.price_on(Coin::Btc, CivilDate::new(2022, 6, 1));
        let mid = o.price_on(Coin::Btc, CivilDate::new(2022, 6, 16));
        let jul = o.price_on(Coin::Btc, CivilDate::new(2022, 7, 1));
        assert!(
            jun > mid * 0.95 && mid * 0.95 > jul * 0.8,
            "{jun} {mid} {jul}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PriceOracle::new(&RngFactory::new(1));
        let b = PriceOracle::new(&RngFactory::new(1));
        let c = PriceOracle::new(&RngFactory::new(2));
        let d = CivilDate::new(2023, 9, 15);
        assert_eq!(a.price_on(Coin::Btc, d), b.price_on(Coin::Btc, d));
        assert_ne!(a.price_on(Coin::Btc, d), c.price_on(Coin::Btc, d));
    }

    #[test]
    fn consecutive_days_differ() {
        let o = oracle();
        let d1 = o.price_on(Coin::Eth, CivilDate::new(2023, 10, 10));
        let d2 = o.price_on(Coin::Eth, CivilDate::new(2023, 10, 11));
        assert_ne!(d1, d2);
        // ...but not wildly (jitter is a few percent).
        assert!((d1 / d2).ln().abs() < 0.25);
    }

    #[test]
    fn out_of_range_dates_clamp() {
        let o = oracle();
        let before = o.price_on(Coin::Btc, CivilDate::new(2010, 1, 1));
        let first = o.price_on(Coin::Btc, CivilDate::new(2020, 1, 1));
        assert_eq!(before, first);
        let after = o.price_on(Coin::Btc, CivilDate::new(2030, 1, 1));
        let last = o.price_on(Coin::Btc, CivilDate::new(2024, 4, 1));
        assert_eq!(after, last);
    }

    #[test]
    fn usd_conversion_round_trips() {
        let o = oracle();
        let at = SimTime::from_ymd(2023, 11, 5) + SimDuration::hours(13);
        for coin in Coin::ALL {
            let units = o.from_usd(coin, 500.0, at);
            let usd = o.to_usd(coin, units, at);
            assert!((usd - 500.0).abs() < 0.01, "{coin}: {usd}");
        }
    }

    #[test]
    fn to_usd_scales_linearly() {
        let o = oracle();
        let at = SimTime::from_ymd(2022, 3, 10);
        let one = o.to_usd(Coin::Btc, 100_000_000, at);
        let two = o.to_usd(Coin::Btc, 200_000_000, at);
        assert!((two - 2.0 * one).abs() < 1e-6);
        // One BTC in March 2022 is tens of thousands of dollars.
        assert!((30_000.0..60_000.0).contains(&one), "{one}");
    }

    #[test]
    fn price_at_uses_day_of_timestamp() {
        let o = oracle();
        let morning = SimTime::from_ymd_hms(2023, 8, 20, 1, 0, 0);
        let evening = SimTime::from_ymd_hms(2023, 8, 20, 23, 0, 0);
        assert_eq!(
            o.price_at(Coin::Xrp, morning),
            o.price_at(Coin::Xrp, evening)
        );
    }
}
