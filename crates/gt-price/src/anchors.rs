//! Calibrated monthly price anchors.
//!
//! Approximate month-start spot prices for BTC, ETH and XRP over the
//! period covered by the paper's two measurement windows (the Twitter
//! window in early 2022 and the YouTube window from July 2023 to January
//! 2024), extended a little on both sides so co-occurrence windows never
//! fall off the series.

use gt_addr::Coin;
use gt_sim::CivilDate;

/// A (date, USD price) anchor.
#[derive(Debug, Clone, Copy)]
pub struct Anchor {
    pub date: CivilDate,
    pub usd: f64,
}

const fn a(year: i32, month: u8, usd: f64) -> Anchor {
    Anchor {
        date: CivilDate::new(year, month, 1),
        usd,
    }
}

/// Month-start anchors for BTC.
pub const BTC_ANCHORS: &[Anchor] = &[
    a(2020, 1, 7_200.0),
    a(2020, 7, 9_100.0),
    a(2021, 1, 29_400.0),
    a(2021, 7, 33_500.0),
    a(2021, 11, 61_000.0),
    a(2022, 1, 46_300.0),
    a(2022, 2, 38_500.0),
    a(2022, 3, 43_200.0),
    a(2022, 4, 45_500.0),
    a(2022, 5, 38_600.0),
    a(2022, 6, 31_800.0),
    a(2022, 7, 19_300.0),
    a(2022, 10, 19_400.0),
    a(2023, 1, 16_600.0),
    a(2023, 4, 28_500.0),
    a(2023, 7, 30_500.0),
    a(2023, 8, 29_200.0),
    a(2023, 9, 26_000.0),
    a(2023, 10, 27_000.0),
    a(2023, 11, 34_600.0),
    a(2023, 12, 37_700.0),
    a(2024, 1, 42_300.0),
    a(2024, 2, 43_100.0),
    a(2024, 4, 69_000.0),
];

/// Month-start anchors for ETH.
pub const ETH_ANCHORS: &[Anchor] = &[
    a(2020, 1, 130.0),
    a(2020, 7, 230.0),
    a(2021, 1, 740.0),
    a(2021, 7, 2_100.0),
    a(2021, 11, 4_300.0),
    a(2022, 1, 3_700.0),
    a(2022, 2, 2_700.0),
    a(2022, 3, 2_900.0),
    a(2022, 4, 3_450.0),
    a(2022, 5, 2_830.0),
    a(2022, 6, 1_940.0),
    a(2022, 7, 1_070.0),
    a(2022, 10, 1_330.0),
    a(2023, 1, 1_200.0),
    a(2023, 4, 1_820.0),
    a(2023, 7, 1_930.0),
    a(2023, 8, 1_860.0),
    a(2023, 9, 1_650.0),
    a(2023, 10, 1_670.0),
    a(2023, 11, 1_800.0),
    a(2023, 12, 2_050.0),
    a(2024, 1, 2_280.0),
    a(2024, 2, 2_300.0),
    a(2024, 4, 3_500.0),
];

/// Month-start anchors for XRP.
pub const XRP_ANCHORS: &[Anchor] = &[
    a(2020, 1, 0.19),
    a(2020, 7, 0.18),
    a(2021, 1, 0.22),
    a(2021, 7, 0.66),
    a(2021, 11, 1.08),
    a(2022, 1, 0.83),
    a(2022, 2, 0.60),
    a(2022, 3, 0.72),
    a(2022, 4, 0.81),
    a(2022, 5, 0.60),
    a(2022, 6, 0.40),
    a(2022, 7, 0.31),
    a(2022, 10, 0.45),
    a(2023, 1, 0.34),
    a(2023, 4, 0.51),
    a(2023, 7, 0.47),
    a(2023, 8, 0.70),
    a(2023, 9, 0.50),
    a(2023, 10, 0.51),
    a(2023, 11, 0.60),
    a(2023, 12, 0.62),
    a(2024, 1, 0.62),
    a(2024, 2, 0.52),
    a(2024, 4, 0.60),
];

/// The anchor table for a coin.
pub fn anchors_for(coin: Coin) -> &'static [Anchor] {
    match coin {
        Coin::Btc => BTC_ANCHORS,
        Coin::Eth => ETH_ANCHORS,
        Coin::Xrp => XRP_ANCHORS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_sorted_and_positive() {
        for coin in Coin::ALL {
            let table = anchors_for(coin);
            assert!(table.len() >= 2);
            for pair in table.windows(2) {
                assert!(
                    pair[0].date.at_midnight() < pair[1].date.at_midnight(),
                    "{coin} anchors out of order at {}",
                    pair[1].date
                );
            }
            for anchor in table {
                assert!(anchor.usd > 0.0);
                assert!(anchor.date.is_valid());
            }
        }
    }

    #[test]
    fn btc_2022_crash_is_present() {
        // Jan 2022 > Jul 2022 by more than 2x — the crash the paper's
        // revenue normalisation lives through.
        let jan = BTC_ANCHORS
            .iter()
            .find(|x| x.date == CivilDate::new(2022, 1, 1))
            .unwrap();
        let jul = BTC_ANCHORS
            .iter()
            .find(|x| x.date == CivilDate::new(2022, 7, 1))
            .unwrap();
        assert!(jan.usd / jul.usd > 2.0);
    }
}
