//! Synthetic daily USD price oracle.
//!
//! The paper normalises payments "using the average USD price of each coin
//! on the day of the payment" (from Yahoo Finance historical data). That
//! feed is replaced here by a deterministic synthetic series per coin:
//! log-space interpolation between calibrated monthly anchor levels of the
//! real 2020–2024 market, plus seeded daily log-normal jitter. The result
//! has the properties the analysis depends on — strictly positive, daily
//! resolution, realistic levels (BTC crashing through 2022, recovering
//! into 2024) — without shipping scraped data.

pub mod anchors;
pub mod oracle;

pub use oracle::PriceOracle;
