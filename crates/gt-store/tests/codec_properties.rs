//! Property tests for the gt-store codec and record framing: arbitrary
//! composite values round-trip exactly and canonically, and any
//! corruption or truncation of a sealed record is rejected — never
//! misread as a different value.

use gt_store::{decode_from_slice, encode_to_vec, open, seal, StoreDecode, StoreEncode};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap, HashSet};

/// A composite exercising every codec shape at once: ints, floats,
/// strings, enums, options, tuples, ordered and unordered collections.
#[derive(Debug, Clone, PartialEq, StoreEncode, StoreDecode)]
struct Payload {
    id: u64,
    delta: i64,
    rate: f64,
    label: String,
    flags: Vec<bool>,
    counts: BTreeMap<String, u64>,
    sparse: HashMap<u64, i64>,
    tags: HashSet<u32>,
    mode: Mode,
    extra: Option<(u32, String)>,
}

#[derive(Debug, Clone, PartialEq, StoreEncode, StoreDecode)]
enum Mode {
    Off,
    Level(u8),
    Window { from: i64, to: i64 },
}

#[allow(clippy::too_many_arguments)]
fn payload(
    id: u64,
    delta: i64,
    rate: f64,
    label: String,
    flags: Vec<bool>,
    pairs: Vec<(u64, i64)>,
    names: Vec<String>,
    tags: Vec<u32>,
    mode_pick: u8,
    extra: Option<(u32, String)>,
) -> Payload {
    Payload {
        id,
        delta,
        rate,
        label,
        flags,
        counts: names.iter().cloned().zip(0u64..).collect(),
        sparse: pairs.iter().copied().collect(),
        tags: tags.into_iter().collect(),
        mode: match mode_pick % 3 {
            0 => Mode::Off,
            1 => Mode::Level(mode_pick),
            _ => Mode::Window {
                from: delta,
                to: delta.saturating_add(7),
            },
        },
        extra,
    }
}

proptest! {
    #[test]
    fn composite_values_round_trip(
        id in any::<u64>(),
        delta in any::<i64>(),
        rate in any::<f64>(),
        label in "[ -~]{0,24}",
        flags in vec(any::<bool>(), 0..8),
        pairs in vec((any::<u64>(), any::<i64>()), 0..8),
        names in vec("[a-z]{1,8}", 0..6),
        tags in vec(any::<u32>(), 0..10),
        mode_pick in any::<u8>(),
        extra_n in any::<u32>(),
        extra_s in "[a-z]{0,6}",
        has_extra in any::<bool>(),
    ) {
        let extra = has_extra.then_some((extra_n, extra_s));
        let value = payload(id, delta, rate, label, flags, pairs, names, tags, mode_pick, extra);
        let bytes = encode_to_vec(&value);
        let decoded: Payload = decode_from_slice(&bytes).expect("round trip decodes");
        prop_assert_eq!(&decoded, &value);
        // Canonical: re-encoding the decoded value reproduces the bytes
        // exactly (this is what makes content addressing work).
        prop_assert_eq!(encode_to_vec(&decoded), bytes);
    }

    #[test]
    fn floats_round_trip_bit_exactly(bits in any::<u64>()) {
        // Including NaNs, infinities, negative zero, and subnormals:
        // the codec moves the raw bit pattern, not the numeric value.
        let value = f64::from_bits(bits);
        let decoded: f64 = decode_from_slice(&encode_to_vec(&value)).expect("decodes");
        prop_assert_eq!(decoded.to_bits(), bits);
    }

    #[test]
    fn unordered_collections_encode_canonically(
        pairs in vec((any::<u64>(), any::<i64>()), 0..24),
    ) {
        // Insertion order (and thus internal bucket layout) must not
        // leak into the encoding — a 1-thread and an 8-thread run build
        // these maps in different orders yet must address the same
        // cache entries.
        let forward: HashMap<u64, i64> = pairs.iter().copied().collect();
        let reverse: HashMap<u64, i64> = pairs.iter().rev().copied().collect();
        prop_assert_eq!(encode_to_vec(&forward), encode_to_vec(&reverse));
        let fwd_set: HashSet<u64> = pairs.iter().map(|p| p.0).collect();
        let rev_set: HashSet<u64> = pairs.iter().rev().map(|p| p.0).collect();
        prop_assert_eq!(encode_to_vec(&fwd_set), encode_to_vec(&rev_set));
    }

    #[test]
    fn trailing_bytes_are_rejected(
        v in vec(any::<u64>(), 0..8),
        junk in any::<u8>(),
    ) {
        let mut bytes = encode_to_vec(&v);
        bytes.push(junk);
        prop_assert!(decode_from_slice::<Vec<u64>>(&bytes).is_err());
    }

    #[test]
    fn shape_mismatch_is_rejected(v in vec(any::<u64>(), 0..8)) {
        let bytes = encode_to_vec(&v);
        prop_assert!(decode_from_slice::<String>(&bytes).is_err());
        prop_assert!(decode_from_slice::<Payload>(&bytes).is_err());
    }

    #[test]
    fn corrupted_records_are_rejected(
        body in vec(any::<u8>(), 0..64),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        // Flip one byte anywhere — magic, version, length, payload, or
        // the SHA-256 footer itself — and the record must not open.
        let sealed = seal(&body);
        let pos = (pos_seed as usize) % sealed.len();
        let mut bad = sealed.clone();
        bad[pos] ^= flip;
        prop_assert!(open(&bad).is_err(), "byte {} xor {:#04x} accepted", pos, flip);
        prop_assert_eq!(open(&sealed).expect("pristine record opens"), &body[..]);
    }

    #[test]
    fn truncated_records_are_rejected(
        body in vec(any::<u8>(), 0..64),
        cut_seed in any::<u64>(),
    ) {
        // A record cut anywhere — mid-header, mid-payload, mid-footer —
        // must read as damage, not as a shorter record.
        let sealed = seal(&body);
        let cut = (cut_seed as usize) % sealed.len();
        prop_assert!(open(&sealed[..cut]).is_err(), "cut at {} accepted", cut);
    }

    #[test]
    fn extended_records_are_rejected(
        body in vec(any::<u8>(), 0..64),
        junk in vec(any::<u8>(), 1..16),
    ) {
        let mut sealed = seal(&body);
        sealed.extend_from_slice(&junk);
        prop_assert!(open(&sealed).is_err());
    }
}
