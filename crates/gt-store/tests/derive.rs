//! Exercises the `#[derive(StoreEncode, StoreDecode)]` macros across
//! every shape they must support for the pipeline payload types.

use std::collections::{BTreeMap, HashMap, HashSet};

use gt_store::{decode_from_slice, encode_to_vec, DecodeError, StoreDecode, StoreEncode};

fn round_trip<T: StoreEncode + StoreDecode + PartialEq + std::fmt::Debug>(value: &T) {
    let bytes = encode_to_vec(value);
    let back: T = decode_from_slice(&bytes).expect("decode");
    assert_eq!(&back, value);
    // Re-encoding the decoded value must be byte-identical.
    assert_eq!(encode_to_vec(&back), bytes);
}

#[derive(Debug, PartialEq, StoreEncode, StoreDecode)]
struct Named {
    count: u64,
    rate: f64,
    label: String,
    flags: Vec<bool>,
}

#[derive(Debug, PartialEq, StoreEncode, StoreDecode)]
struct Newtype(u64);

#[derive(Debug, PartialEq, StoreEncode, StoreDecode)]
struct Pair(String, i64);

#[derive(Debug, PartialEq, StoreEncode, StoreDecode)]
struct Unit;

#[derive(Debug, PartialEq, StoreEncode, StoreDecode)]
enum Shape {
    Empty,
    Boxed(u64),
    Edge(i64, i64),
    Labeled { name: String, weight: f64 },
}

#[derive(Debug, PartialEq, StoreEncode, StoreDecode)]
struct WithSkip {
    kept: u64,
    #[store(skip)]
    scratch: Option<String>,
    also_kept: String,
}

#[derive(Debug, PartialEq, StoreEncode, StoreDecode)]
struct Generic<T> {
    inner: T,
    pad: u8,
}

#[derive(Debug, PartialEq, StoreEncode, StoreDecode)]
struct Nested {
    named: Named,
    shapes: Vec<Shape>,
    lookup: BTreeMap<String, Newtype>,
    sparse: HashMap<u64, String>,
    members: HashSet<String>,
    maybe: Option<Pair>,
    fixed: [f64; 3],
}

fn sample_nested() -> Nested {
    Nested {
        named: Named {
            count: 42,
            rate: 0.125,
            label: "conversion".into(),
            flags: vec![true, false, true],
        },
        shapes: vec![
            Shape::Empty,
            Shape::Boxed(7),
            Shape::Edge(-1, 1),
            Shape::Labeled {
                name: "whale".into(),
                weight: 2.5,
            },
        ],
        lookup: [("a".to_string(), Newtype(1)), ("b".to_string(), Newtype(2))]
            .into_iter()
            .collect(),
        sparse: [(10u64, "x".to_string()), (20, "y".to_string())]
            .into_iter()
            .collect(),
        members: ["btc".to_string(), "eth".to_string()].into_iter().collect(),
        maybe: Some(Pair("p".into(), -9)),
        fixed: [0.0, -0.0, f64::MAX],
    }
}

#[test]
fn named_struct_round_trips() {
    round_trip(&Named {
        count: u64::MAX,
        rate: -1.5,
        label: String::new(),
        flags: vec![],
    });
}

#[test]
fn newtype_and_tuple_structs_round_trip() {
    round_trip(&Newtype(99));
    round_trip(&Pair("hello".into(), i64::MIN));
    round_trip(&Unit);
}

#[test]
fn enums_round_trip() {
    round_trip(&Shape::Empty);
    round_trip(&Shape::Boxed(0));
    round_trip(&Shape::Edge(i64::MIN, i64::MAX));
    round_trip(&Shape::Labeled {
        name: "n".into(),
        weight: f64::MIN_POSITIVE,
    });
}

#[test]
fn skipped_fields_reset_to_default() {
    let original = WithSkip {
        kept: 5,
        scratch: Some("ephemeral".into()),
        also_kept: "stays".into(),
    };
    let bytes = encode_to_vec(&original);
    let back: WithSkip = decode_from_slice(&bytes).unwrap();
    assert_eq!(back.kept, 5);
    assert_eq!(back.also_kept, "stays");
    assert_eq!(back.scratch, None);
}

#[test]
fn generics_round_trip() {
    round_trip(&Generic {
        inner: vec![Newtype(1), Newtype(2)],
        pad: 0xAB,
    });
}

#[test]
fn nested_round_trips() {
    round_trip(&sample_nested());
}

#[test]
fn unordered_collections_encode_canonically() {
    // Two HashMaps with different insertion orders must encode to the
    // same bytes — this is what makes cache keys process-independent.
    let mut a = HashMap::new();
    let mut b = HashMap::new();
    for i in 0..100u64 {
        a.insert(i, format!("v{i}"));
    }
    for i in (0..100u64).rev() {
        b.insert(i, format!("v{i}"));
    }
    assert_eq!(encode_to_vec(&a), encode_to_vec(&b));
}

#[test]
fn wrong_shape_is_rejected() {
    let bytes = encode_to_vec(&Newtype(1));
    assert!(decode_from_slice::<Named>(&bytes).is_err());
    let bytes = encode_to_vec(&Shape::Boxed(1));
    // Variant index 1 decodes as Boxed; an out-of-range index fails.
    let mut raw = bytes.clone();
    raw[1] = 0xFF; // variant index low byte
    assert!(matches!(
        decode_from_slice::<Shape>(&raw),
        Err(DecodeError::UnknownVariant { ty: "Shape", .. }) | Err(_)
    ));
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = encode_to_vec(&Newtype(1));
    bytes.push(0);
    assert!(matches!(
        decode_from_slice::<Newtype>(&bytes),
        Err(DecodeError::TrailingBytes { .. })
    ));
}
