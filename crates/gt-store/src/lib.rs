//! Deterministic persistence for the measurement pipeline.
//!
//! The paper's campaign ran for ~6 months against flaky services; a
//! production-scale reproduction has to survive more than in-process
//! faults (PR 2) — it has to survive the *process* dying, and it should
//! not recompute five minutes of upstream analysis because one
//! downstream parameter changed. This crate provides the two pieces
//! that make `experiments --store DIR` crash-resumable and warm-rerun
//! cheap:
//!
//! 1. **A self-describing deterministic binary codec** — the
//!    [`StoreEncode`]/[`StoreDecode`] traits (plus `#[derive]`s from
//!    `gt-store-derive`). The encoding is a pure function of the value:
//!    no pointers, no hash-map iteration order (unordered collections
//!    are sorted by their encoded key bytes), no timestamps. Two
//!    processes encoding the same logical value produce the same bytes,
//!    which is what lets cache entries be *content-addressed* and shared
//!    between runs with different thread counts.
//!
//! 2. **An on-disk [`RunStore`]** holding world snapshots and per-stage
//!    outputs, each sealed in a record with a magic, a schema version,
//!    and a SHA-256 integrity footer (via `gt-hash`). A corrupted or
//!    truncated entry is indistinguishable from a missing one: it decays
//!    to a cache miss and the stage recomputes.
//!
//! Key derivation lives in [`KeyBuilder`]; the executor composes stage
//! keys as `H(base ‖ stage name ‖ stage salt ‖ dependency digests)`,
//! where `base` fingerprints everything global to the run (schema
//! version, world config, fault plan, retry policy, telemetry flag).
//! See DESIGN.md "Persistence & caching" for the invalidation rules.

mod codec;
mod impls;
mod key;
mod record;
mod store;

pub use codec::{Decoder, Encoder};
pub use key::{digest, digest_hex, Digest, KeyBuilder};
pub use record::{open, seal, MAGIC, SCHEMA_VERSION};
pub use store::{EvictStats, RunStore, StoreError};

// Re-export the derive macros under the trait names (the serde idiom):
// `use gt_store::{StoreEncode, StoreDecode};` brings in both the trait
// and its derive.
pub use gt_store_derive::{StoreDecode, StoreEncode};

use std::fmt;

/// Deterministic binary encoding: a pure function of the value.
pub trait StoreEncode {
    fn store_encode(&self, e: &mut Encoder);
}

/// Decoding for [`StoreEncode`]d bytes.
///
/// Unlike the vendored `serde` stub (whose `Deserialize` is a marker
/// trait that never runs), this is a real decoder: cache hits
/// reconstruct full stage payloads from disk.
pub trait StoreDecode: Sized {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError>;
}

/// Encode a value to its canonical byte string.
pub fn encode_to_vec<T: StoreEncode + ?Sized>(value: &T) -> Vec<u8> {
    let mut e = Encoder::new();
    value.store_encode(&mut e);
    e.into_bytes()
}

/// Decode a value, requiring the input to be fully consumed.
pub fn decode_from_slice<T: StoreDecode>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut d = Decoder::new(bytes);
    let value = T::store_decode(&mut d)?;
    d.finish()?;
    Ok(value)
}

/// Why a byte string failed to decode. Every variant is terminal: the
/// store treats any decode failure as a cache miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran off the end of the input.
    UnexpectedEof { at: usize },
    /// A value of a different shape was encoded here.
    WrongTag {
        expected: &'static str,
        found: u8,
        at: usize,
    },
    /// A struct field name hash did not match (schema drift).
    FieldMismatch { expected: &'static str, at: usize },
    /// A struct/tuple arity did not match (schema drift).
    CountMismatch {
        expected: u64,
        found: u64,
        at: usize,
    },
    /// An enum variant index out of range for the decoded type.
    UnknownVariant { ty: &'static str, variant: u32 },
    /// An integer did not fit the target type.
    IntOutOfRange { at: usize },
    /// A string was not valid UTF-8.
    BadUtf8 { at: usize },
    /// Input bytes remained after a full decode.
    TrailingBytes { remaining: usize },
    /// Record framing: wrong magic.
    BadMagic,
    /// Record framing: schema version mismatch.
    BadVersion { found: u32 },
    /// Record framing: shorter than its declared payload.
    Truncated,
    /// Record framing: SHA-256 footer mismatch (corruption).
    HashMismatch,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { at } => write!(f, "unexpected end of input at {at}"),
            DecodeError::WrongTag {
                expected,
                found,
                at,
            } => write!(f, "expected {expected} at {at}, found tag {found:#04x}"),
            DecodeError::FieldMismatch { expected, at } => {
                write!(f, "field name mismatch at {at} (expected `{expected}`)")
            }
            DecodeError::CountMismatch {
                expected,
                found,
                at,
            } => write!(
                f,
                "arity mismatch at {at}: expected {expected}, found {found}"
            ),
            DecodeError::UnknownVariant { ty, variant } => {
                write!(f, "unknown variant {variant} for `{ty}`")
            }
            DecodeError::IntOutOfRange { at } => write!(f, "integer out of range at {at}"),
            DecodeError::BadUtf8 { at } => write!(f, "invalid UTF-8 at {at}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
            DecodeError::BadMagic => write!(f, "bad record magic"),
            DecodeError::BadVersion { found } => {
                write!(f, "schema version {found} (expected {})", SCHEMA_VERSION)
            }
            DecodeError::Truncated => write!(f, "record truncated"),
            DecodeError::HashMismatch => write!(f, "record integrity footer mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}
