//! The on-disk run store.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/worlds/<config-fingerprint>.gts        world snapshots
//! <root>/stages/<base>/<stage>-<key>.gts        stage outputs
//! <root>/tmp/<pid>-<n>.tmp                      in-flight writes
//! ```
//!
//! `<base>` fingerprints everything global to a run (schema version,
//! world config, fault plan, retry policy, telemetry flag), so one
//! directory holds exactly the entries that can legally serve one
//! configuration. Writes are atomic (unique temp file + rename): a run
//! killed mid-write leaves at worst a stray temp file, never a partial
//! record — and even a partial record would fail its integrity footer
//! and read as a miss.

use crate::key::{digest_hex, Digest};
use crate::record;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// An IO failure with the path it happened on. Store *reads* never
/// fail — any unreadable or invalid entry is a cache miss — so this
/// only surfaces from writes, opens, and eviction.
#[derive(Debug)]
pub struct StoreError {
    pub context: String,
    pub source: io::Error,
}

impl StoreError {
    fn new(context: impl Into<String>, source: io::Error) -> Self {
        StoreError {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.context, self.source)
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// What [`RunStore::evict`] removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictStats {
    /// Stage directories removed (one per retired base fingerprint).
    pub stage_groups: u64,
    /// World snapshots removed.
    pub worlds: u64,
    /// Stray temp files removed.
    pub temp_files: u64,
}

/// A content-addressed store for world snapshots and stage outputs.
pub struct RunStore {
    root: PathBuf,
    tmp_counter: AtomicU64,
    /// Test hook: remaining successful writes before a simulated crash
    /// (`None` = unlimited). See [`RunStore::fail_writes_after`].
    write_limit: Mutex<Option<u64>>,
}

impl fmt::Debug for RunStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunStore")
            .field("root", &self.root)
            .finish()
    }
}

impl RunStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<RunStore, StoreError> {
        let root = dir.as_ref().to_path_buf();
        for sub in ["stages", "worlds", "tmp"] {
            let path = root.join(sub);
            fs::create_dir_all(&path)
                .map_err(|e| StoreError::new(format!("create {}", path.display()), e))?;
        }
        Ok(RunStore {
            root,
            tmp_counter: AtomicU64::new(0),
            write_limit: Mutex::new(None),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn stage_dir(&self, base: &Digest) -> PathBuf {
        self.root.join("stages").join(digest_hex(base))
    }

    fn stage_path(&self, base: &Digest, stage: &str, key: &Digest) -> PathBuf {
        self.stage_dir(base)
            .join(format!("{stage}-{}.gts", digest_hex(key)))
    }

    fn world_path(&self, fingerprint: &Digest) -> PathBuf {
        self.root
            .join("worlds")
            .join(format!("{}.gts", digest_hex(fingerprint)))
    }

    /// Load a stage payload. Any failure — missing file, torn write,
    /// corruption, schema drift — is a `None` (cache miss).
    pub fn load_stage(&self, base: &Digest, stage: &str, key: &Digest) -> Option<Vec<u8>> {
        let bytes = fs::read(self.stage_path(base, stage, key)).ok()?;
        record::open(&bytes).ok().map(<[u8]>::to_vec)
    }

    /// Persist a stage payload under its content address.
    pub fn store_stage(
        &self,
        base: &Digest,
        stage: &str,
        key: &Digest,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        let dir = self.stage_dir(base);
        fs::create_dir_all(&dir)
            .map_err(|e| StoreError::new(format!("create {}", dir.display()), e))?;
        self.write_atomic(&self.stage_path(base, stage, key), &record::seal(payload))
    }

    /// Load a world snapshot payload by config fingerprint.
    pub fn load_world(&self, fingerprint: &Digest) -> Option<Vec<u8>> {
        let bytes = fs::read(self.world_path(fingerprint)).ok()?;
        record::open(&bytes).ok().map(<[u8]>::to_vec)
    }

    /// Persist a world snapshot payload.
    pub fn store_world(&self, fingerprint: &Digest, payload: &[u8]) -> Result<(), StoreError> {
        self.write_atomic(&self.world_path(fingerprint), &record::seal(payload))
    }

    /// Number of stage entries currently stored under `base`.
    pub fn stage_entry_count(&self, base: &Digest) -> usize {
        fs::read_dir(self.stage_dir(base))
            .map(|entries| entries.filter_map(Result::ok).count())
            .unwrap_or(0)
    }

    /// Remove every entry that cannot serve the given run: stage groups
    /// whose base differs from `keep_base`, world snapshots other than
    /// `keep_world`, and stray temp files from dead writers.
    pub fn evict(&self, keep_base: &Digest, keep_world: &Digest) -> Result<EvictStats, StoreError> {
        let mut stats = EvictStats::default();
        let keep_dir = digest_hex(keep_base);
        let stages = self.root.join("stages");
        let entries = fs::read_dir(&stages)
            .map_err(|e| StoreError::new(format!("read {}", stages.display()), e))?;
        for entry in entries.filter_map(Result::ok) {
            if entry.file_name().to_string_lossy() != keep_dir.as_str() {
                fs::remove_dir_all(entry.path())
                    .map_err(|e| StoreError::new(format!("remove {:?}", entry.path()), e))?;
                stats.stage_groups += 1;
            }
        }
        let keep_file = format!("{}.gts", digest_hex(keep_world));
        let worlds = self.root.join("worlds");
        let entries = fs::read_dir(&worlds)
            .map_err(|e| StoreError::new(format!("read {}", worlds.display()), e))?;
        for entry in entries.filter_map(Result::ok) {
            if entry.file_name().to_string_lossy() != keep_file.as_str() {
                fs::remove_file(entry.path())
                    .map_err(|e| StoreError::new(format!("remove {:?}", entry.path()), e))?;
                stats.worlds += 1;
            }
        }
        let tmp = self.root.join("tmp");
        if let Ok(entries) = fs::read_dir(&tmp) {
            for entry in entries.filter_map(Result::ok) {
                if fs::remove_file(entry.path()).is_ok() {
                    stats.temp_files += 1;
                }
            }
        }
        Ok(stats)
    }

    /// Test hook: allow `n` more successful writes, then simulate a
    /// killed process on the next one — a torn temp file is left behind
    /// and the writer panics (the executor surfaces it like any stage
    /// crash). Crash-resume tests use this to stop a run mid-pipeline.
    pub fn fail_writes_after(&self, n: u64) {
        *self.write_limit.lock().unwrap() = Some(n);
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = self.root.join("tmp").join(format!(
            "{}-{}.tmp",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut limit = self.write_limit.lock().unwrap();
            if let Some(remaining) = limit.as_mut() {
                if *remaining == 0 {
                    // Simulated kill -9: leave a torn write behind.
                    let _ = fs::write(&tmp, &bytes[..bytes.len() / 2]);
                    panic!("gt-store: simulated crash (write limit reached)");
                }
                *remaining -= 1;
            }
        }
        fs::write(&tmp, bytes)
            .map_err(|e| StoreError::new(format!("write {}", tmp.display()), e))?;
        fs::rename(&tmp, path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StoreError::new(format!("rename into {}", path.display()), e)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gt-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stage_round_trip_and_miss() {
        let dir = scratch("stage");
        let store = RunStore::open(&dir).unwrap();
        let base = [1u8; 32];
        let key = [2u8; 32];
        assert!(store.load_stage(&base, "s", &key).is_none());
        store.store_stage(&base, "s", &key, b"payload").unwrap();
        assert_eq!(store.load_stage(&base, "s", &key).unwrap(), b"payload");
        assert!(store.load_stage(&base, "s", &[3u8; 32]).is_none());
        assert_eq!(store.stage_entry_count(&base), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_entry_reads_as_miss() {
        let dir = scratch("corrupt");
        let store = RunStore::open(&dir).unwrap();
        let base = [4u8; 32];
        let key = [5u8; 32];
        store.store_stage(&base, "s", &key, b"payload").unwrap();
        let path = store.stage_path(&base, "s", &key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_stage(&base, "s", &key).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_keeps_only_the_active_run() {
        let dir = scratch("evict");
        let store = RunStore::open(&dir).unwrap();
        let keep = [6u8; 32];
        let drop_ = [7u8; 32];
        store.store_stage(&keep, "s", &[0u8; 32], b"k").unwrap();
        store.store_stage(&drop_, "s", &[0u8; 32], b"d").unwrap();
        store.store_world(&keep, b"kw").unwrap();
        store.store_world(&drop_, b"dw").unwrap();
        let stats = store.evict(&keep, &keep).unwrap();
        assert_eq!(stats.stage_groups, 1);
        assert_eq!(stats.worlds, 1);
        assert!(store.load_stage(&keep, "s", &[0u8; 32]).is_some());
        assert!(store.load_stage(&drop_, "s", &[0u8; 32]).is_none());
        assert!(store.load_world(&keep).is_some());
        assert!(store.load_world(&drop_).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_limit_simulates_a_crash() {
        let dir = scratch("crash");
        let store = RunStore::open(&dir).unwrap();
        let base = [8u8; 32];
        store.fail_writes_after(1);
        store.store_stage(&base, "a", &[0u8; 32], b"first").unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.store_stage(&base, "b", &[1u8; 32], b"second")
        }));
        assert!(result.is_err());
        // The completed write survives; the torn one is invisible.
        assert!(store.load_stage(&base, "a", &[0u8; 32]).is_some());
        assert!(store.load_stage(&base, "b", &[1u8; 32]).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
