//! The tagged binary wire format.
//!
//! Every value starts with a one-byte tag, so a decoder pointed at the
//! wrong type fails loudly instead of misreading bytes. Integers are
//! fixed-width little-endian (no varints: simpler, and size is not the
//! bottleneck — determinism is). Struct fields carry a 32-bit FNV-1a
//! hash of the field name, giving cheap schema-drift detection without
//! storing full names.

use crate::DecodeError;

pub(crate) const T_UNIT: u8 = 0x00;
pub(crate) const T_FALSE: u8 = 0x01;
pub(crate) const T_TRUE: u8 = 0x02;
pub(crate) const T_U8: u8 = 0x03;
pub(crate) const T_U64: u8 = 0x04;
pub(crate) const T_I64: u8 = 0x05;
pub(crate) const T_F64: u8 = 0x06;
pub(crate) const T_STR: u8 = 0x07;
pub(crate) const T_SEQ: u8 = 0x08;
pub(crate) const T_MAP: u8 = 0x09;
pub(crate) const T_NONE: u8 = 0x0A;
pub(crate) const T_SOME: u8 = 0x0B;
pub(crate) const T_STRUCT: u8 = 0x0C;
pub(crate) const T_ENUM: u8 = 0x0D;
pub(crate) const T_TUPLE: u8 = 0x0E;

/// 32-bit FNV-1a of a field name.
pub(crate) fn fnv32(s: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in s.bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Serializer for the gt-store format. Append-only byte buffer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append pre-encoded bytes verbatim (used by the sorted-map
    /// encoding, which encodes keys out of line to order them).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn unit(&mut self) {
        self.buf.push(T_UNIT);
    }

    pub fn boolean(&mut self, v: bool) {
        self.buf.push(if v { T_TRUE } else { T_FALSE });
    }

    pub fn byte(&mut self, v: u8) {
        self.buf.push(T_U8);
        self.buf.push(v);
    }

    pub fn uint(&mut self, v: u64) {
        self.buf.push(T_U64);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn int(&mut self, v: i64) {
        self.buf.push(T_I64);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Bit-exact: encodes `f64::to_bits`, so NaN payloads and signed
    /// zeros round-trip.
    pub fn float(&mut self, v: f64) {
        self.buf.push(T_F64);
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn string(&mut self, v: &str) {
        self.buf.push(T_STR);
        self.buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(v.as_bytes());
    }

    pub fn begin_seq(&mut self, len: usize) {
        self.buf.push(T_SEQ);
        self.buf.extend_from_slice(&(len as u64).to_le_bytes());
    }

    pub fn begin_map(&mut self, len: usize) {
        self.buf.push(T_MAP);
        self.buf.extend_from_slice(&(len as u64).to_le_bytes());
    }

    pub fn none(&mut self) {
        self.buf.push(T_NONE);
    }

    pub fn some(&mut self) {
        self.buf.push(T_SOME);
    }

    pub fn begin_struct(&mut self, fields: u16) {
        self.buf.push(T_STRUCT);
        self.buf.extend_from_slice(&fields.to_le_bytes());
    }

    pub fn field(&mut self, name: &str) {
        self.buf.extend_from_slice(&fnv32(name).to_le_bytes());
    }

    pub fn begin_enum(&mut self, variant: u32) {
        self.buf.push(T_ENUM);
        self.buf.extend_from_slice(&variant.to_le_bytes());
    }

    pub fn begin_tuple(&mut self, len: u16) {
        self.buf.push(T_TUPLE);
        self.buf.extend_from_slice(&len.to_le_bytes());
    }
}

/// Deserializer over a byte slice.
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, pos: 0 }
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    /// Errors unless the input was fully consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                remaining: self.bytes.len() - self.pos,
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(DecodeError::UnexpectedEof { at: self.pos })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn tag(&mut self, expected: u8, what: &'static str) -> Result<(), DecodeError> {
        let at = self.pos;
        let found = self.take(1)?[0];
        if found == expected {
            Ok(())
        } else {
            Err(DecodeError::WrongTag {
                expected: what,
                found,
                at,
            })
        }
    }

    fn raw_u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn raw_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn raw_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    pub fn unit(&mut self) -> Result<(), DecodeError> {
        self.tag(T_UNIT, "unit")
    }

    pub fn boolean(&mut self) -> Result<bool, DecodeError> {
        let at = self.pos;
        match self.take(1)?[0] {
            T_TRUE => Ok(true),
            T_FALSE => Ok(false),
            found => Err(DecodeError::WrongTag {
                expected: "bool",
                found,
                at,
            }),
        }
    }

    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        self.tag(T_U8, "u8")?;
        Ok(self.take(1)?[0])
    }

    pub fn uint(&mut self) -> Result<u64, DecodeError> {
        self.tag(T_U64, "unsigned integer")?;
        self.raw_u64()
    }

    pub fn int(&mut self) -> Result<i64, DecodeError> {
        self.tag(T_I64, "signed integer")?;
        Ok(self.raw_u64()? as i64)
    }

    pub fn float(&mut self) -> Result<f64, DecodeError> {
        self.tag(T_F64, "float")?;
        Ok(f64::from_bits(self.raw_u64()?))
    }

    pub fn string(&mut self) -> Result<String, DecodeError> {
        self.tag(T_STR, "string")?;
        let len = self.raw_u64()? as usize;
        let at = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8 { at })
    }

    /// Returns the element count.
    pub fn begin_seq(&mut self) -> Result<u64, DecodeError> {
        self.tag(T_SEQ, "sequence")?;
        self.raw_u64()
    }

    /// Returns the entry count.
    pub fn begin_map(&mut self) -> Result<u64, DecodeError> {
        self.tag(T_MAP, "map")?;
        self.raw_u64()
    }

    /// Returns whether a value follows (`Some`).
    pub fn option(&mut self) -> Result<bool, DecodeError> {
        let at = self.pos;
        match self.take(1)?[0] {
            T_SOME => Ok(true),
            T_NONE => Ok(false),
            found => Err(DecodeError::WrongTag {
                expected: "option",
                found,
                at,
            }),
        }
    }

    pub fn begin_struct(&mut self, expected_fields: u16) -> Result<(), DecodeError> {
        let at = self.pos;
        self.tag(T_STRUCT, "struct")?;
        let found = self.raw_u16()?;
        if found == expected_fields {
            Ok(())
        } else {
            Err(DecodeError::CountMismatch {
                expected: u64::from(expected_fields),
                found: u64::from(found),
                at,
            })
        }
    }

    pub fn field(&mut self, name: &'static str) -> Result<(), DecodeError> {
        let at = self.pos;
        let found = self.raw_u32()?;
        if found == fnv32(name) {
            Ok(())
        } else {
            Err(DecodeError::FieldMismatch { expected: name, at })
        }
    }

    /// Returns the variant index.
    pub fn begin_enum(&mut self) -> Result<u32, DecodeError> {
        self.tag(T_ENUM, "enum")?;
        self.raw_u32()
    }

    pub fn begin_tuple(&mut self, expected_len: u16) -> Result<(), DecodeError> {
        let at = self.pos;
        self.tag(T_TUPLE, "tuple")?;
        let found = self.raw_u16()?;
        if found == expected_len {
            Ok(())
        } else {
            Err(DecodeError::CountMismatch {
                expected: u64::from(expected_len),
                found: u64::from(found),
                at,
            })
        }
    }
}
