//! Record framing: every on-disk entry is
//!
//! ```text
//! magic "GTS1" (4) ‖ schema version u32 LE (4) ‖ payload len u64 LE (8)
//!   ‖ payload ‖ SHA-256(header ‖ payload) (32)
//! ```
//!
//! [`open`] verifies all four before handing back the payload, so a
//! torn write (kill -9 mid-`write(2)`), a flipped bit, or an entry from
//! an older schema all surface as a typed error — which the store turns
//! into a cache miss.

use crate::DecodeError;

/// File magic for gt-store records.
pub const MAGIC: [u8; 4] = *b"GTS1";

/// Version of both the codec wire format and the keyed content layout.
/// Bump on any change to either; it participates in every cache key, so
/// old entries are simply never looked up again.
pub const SCHEMA_VERSION: u32 = 1;

const HEADER_LEN: usize = 4 + 4 + 8;
const FOOTER_LEN: usize = 32;

/// Frame a payload into a self-verifying record.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + FOOTER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let footer = gt_hash::sha256(&out);
    out.extend_from_slice(&footer);
    out
}

/// Verify a record's magic, version, length, and integrity footer, and
/// return its payload.
pub fn open(record: &[u8]) -> Result<&[u8], DecodeError> {
    if record.len() < HEADER_LEN + FOOTER_LEN {
        return Err(DecodeError::Truncated);
    }
    if record[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = u32::from_le_bytes([record[4], record[5], record[6], record[7]]);
    if version != SCHEMA_VERSION {
        return Err(DecodeError::BadVersion { found: version });
    }
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&record[8..16]);
    let payload_len = u64::from_le_bytes(len_bytes);
    let body_end = (payload_len as usize)
        .checked_add(HEADER_LEN)
        .ok_or(DecodeError::Truncated)?;
    if record.len() != body_end + FOOTER_LEN {
        return Err(DecodeError::Truncated);
    }
    let expected = &record[body_end..];
    let actual = gt_hash::sha256(&record[..body_end]);
    if actual != expected {
        return Err(DecodeError::HashMismatch);
    }
    Ok(&record[HEADER_LEN..body_end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let payload = b"hello, store";
        let record = seal(payload);
        assert_eq!(open(&record).unwrap(), payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        let record = seal(b"");
        assert_eq!(open(&record).unwrap(), b"");
    }

    #[test]
    fn corruption_is_detected() {
        let mut record = seal(b"payload bytes");
        let mid = record.len() / 2;
        record[mid] ^= 0x01;
        assert!(matches!(
            open(&record),
            Err(DecodeError::HashMismatch) | Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let record = seal(b"payload bytes");
        for cut in 0..record.len() {
            assert!(open(&record[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut record = seal(b"x");
        record[0] = b'X';
        assert_eq!(open(&record), Err(DecodeError::BadMagic));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut record = seal(b"x");
        record[4] = 0xFF;
        assert!(matches!(
            open(&record),
            Err(DecodeError::BadVersion { found: _ })
        ));
    }
}
