//! Content-address derivation.
//!
//! Cache keys are SHA-256 digests over length-prefixed fields, so
//! `("ab", "c")` and `("a", "bc")` never collide. Every builder is
//! domain-separated and versioned: bumping [`SCHEMA_VERSION`] retires
//! every previously written key at once.

use crate::record::SCHEMA_VERSION;
use crate::StoreEncode;
use gt_hash::sha256::Sha256;

/// A SHA-256 content address.
pub type Digest = [u8; 32];

/// SHA-256 of a byte string.
pub fn digest(bytes: &[u8]) -> Digest {
    gt_hash::sha256(bytes)
}

/// Lowercase hex of a digest (64 chars), used for on-disk names.
pub fn digest_hex(d: &Digest) -> String {
    gt_hash::hex::to_hex(d)
}

/// Incremental, collision-resistant key derivation.
pub struct KeyBuilder {
    hasher: Sha256,
}

impl KeyBuilder {
    /// Start a key in the given domain (e.g. `"stage"`, `"base"`,
    /// `"world"`). The domain and the schema version are mixed in
    /// first, so keys from different domains or schema generations
    /// never collide.
    pub fn new(domain: &str) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(b"gt-store\x00");
        hasher.update(&SCHEMA_VERSION.to_le_bytes());
        let mut kb = KeyBuilder { hasher };
        kb.push_bytes(domain.as_bytes());
        kb
    }

    /// Mix in a length-prefixed byte field.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.hasher.update(&(bytes.len() as u64).to_le_bytes());
        self.hasher.update(bytes);
    }

    pub fn push_str(&mut self, s: &str) {
        self.push_bytes(s.as_bytes());
    }

    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    pub fn push_digest(&mut self, d: &Digest) {
        self.push_bytes(d);
    }

    /// Mix in a value through its canonical `StoreEncode` bytes — the
    /// uniform way to fingerprint configuration.
    pub fn push_encoded<T: StoreEncode + ?Sized>(&mut self, value: &T) {
        self.push_bytes(&crate::encode_to_vec(value));
    }

    pub fn finish(self) -> Digest {
        self.hasher.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_boundaries_matter() {
        let mut a = KeyBuilder::new("t");
        a.push_str("ab");
        a.push_str("c");
        let mut b = KeyBuilder::new("t");
        b.push_str("a");
        b.push_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn domains_are_separated() {
        let mut a = KeyBuilder::new("stage");
        a.push_str("x");
        let mut b = KeyBuilder::new("world");
        b.push_str("x");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn derivation_is_reproducible() {
        let build = || {
            let mut kb = KeyBuilder::new("stage");
            kb.push_digest(&[7u8; 32]);
            kb.push_str("chain_analysis");
            kb.push_u64(42);
            kb.finish()
        };
        assert_eq!(build(), build());
    }
}
