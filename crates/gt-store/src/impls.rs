//! [`StoreEncode`]/[`StoreDecode`] implementations for std types.
//!
//! Unordered collections (`HashMap`, `HashSet`) are encoded *sorted by
//! their encoded key bytes*, so the byte string is independent of hash
//! seeds and insertion order — a requirement for content-addressed
//! cache entries to match across processes.

use crate::codec::{Decoder, Encoder};
use crate::{DecodeError, StoreDecode, StoreEncode};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

// ---- scalars ----

impl StoreEncode for bool {
    fn store_encode(&self, e: &mut Encoder) {
        e.boolean(*self);
    }
}

impl StoreDecode for bool {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.boolean()
    }
}

impl StoreEncode for u8 {
    fn store_encode(&self, e: &mut Encoder) {
        e.byte(*self);
    }
}

impl StoreDecode for u8 {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.byte()
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl StoreEncode for $t {
            fn store_encode(&self, e: &mut Encoder) {
                e.uint(*self as u64);
            }
        }
        impl StoreDecode for $t {
            fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                let at = d.position();
                <$t>::try_from(d.uint()?).map_err(|_| DecodeError::IntOutOfRange { at })
            }
        }
    )*};
}
impl_uint!(u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl StoreEncode for $t {
            fn store_encode(&self, e: &mut Encoder) {
                e.int(*self as i64);
            }
        }
        impl StoreDecode for $t {
            fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                let at = d.position();
                <$t>::try_from(d.int()?).map_err(|_| DecodeError::IntOutOfRange { at })
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl StoreEncode for f64 {
    fn store_encode(&self, e: &mut Encoder) {
        e.float(*self);
    }
}

impl StoreDecode for f64 {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.float()
    }
}

impl StoreEncode for f32 {
    fn store_encode(&self, e: &mut Encoder) {
        e.float(f64::from(*self));
    }
}

impl StoreDecode for f32 {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        // f32 → f64 is exact, so the round trip back is too.
        Ok(d.float()? as f32)
    }
}

impl StoreEncode for char {
    fn store_encode(&self, e: &mut Encoder) {
        e.uint(u64::from(u32::from(*self)));
    }
}

impl StoreDecode for char {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let at = d.position();
        let raw = u32::try_from(d.uint()?).map_err(|_| DecodeError::IntOutOfRange { at })?;
        char::from_u32(raw).ok_or(DecodeError::IntOutOfRange { at })
    }
}

impl StoreEncode for () {
    fn store_encode(&self, e: &mut Encoder) {
        e.unit();
    }
}

impl StoreDecode for () {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.unit()
    }
}

// ---- strings ----

impl StoreEncode for str {
    fn store_encode(&self, e: &mut Encoder) {
        e.string(self);
    }
}

impl StoreEncode for String {
    fn store_encode(&self, e: &mut Encoder) {
        e.string(self);
    }
}

impl StoreDecode for String {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.string()
    }
}

// ---- wrappers ----

impl<T: StoreEncode + ?Sized> StoreEncode for &T {
    fn store_encode(&self, e: &mut Encoder) {
        (**self).store_encode(e);
    }
}

impl<T: StoreEncode + ?Sized> StoreEncode for Box<T> {
    fn store_encode(&self, e: &mut Encoder) {
        (**self).store_encode(e);
    }
}

impl<T: StoreDecode> StoreDecode for Box<T> {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Box::new(T::store_decode(d)?))
    }
}

impl<T: StoreEncode> StoreEncode for Option<T> {
    fn store_encode(&self, e: &mut Encoder) {
        match self {
            Some(v) => {
                e.some();
                v.store_encode(e);
            }
            None => e.none(),
        }
    }
}

impl<T: StoreDecode> StoreDecode for Option<T> {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        if d.option()? {
            Ok(Some(T::store_decode(d)?))
        } else {
            Ok(None)
        }
    }
}

impl<T> StoreEncode for PhantomData<T> {
    fn store_encode(&self, e: &mut Encoder) {
        e.unit();
    }
}

impl<T> StoreDecode for PhantomData<T> {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.unit()?;
        Ok(PhantomData)
    }
}

/// Locks and encodes the guarded value. Cached payloads and world
/// snapshots carry observational counters behind `parking_lot` mutexes;
/// snapshotting them is safe because encoding happens while no consumer
/// is mutating the world.
impl<T: StoreEncode> StoreEncode for parking_lot::Mutex<T> {
    fn store_encode(&self, e: &mut Encoder) {
        self.lock().store_encode(e);
    }
}

impl<T: StoreDecode> StoreDecode for parking_lot::Mutex<T> {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(parking_lot::Mutex::new(T::store_decode(d)?))
    }
}

// ---- sequences ----

impl<T: StoreEncode> StoreEncode for [T] {
    fn store_encode(&self, e: &mut Encoder) {
        e.begin_seq(self.len());
        for item in self {
            item.store_encode(e);
        }
    }
}

impl<T: StoreEncode> StoreEncode for Vec<T> {
    fn store_encode(&self, e: &mut Encoder) {
        self.as_slice().store_encode(e);
    }
}

impl<T: StoreDecode> StoreDecode for Vec<T> {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = d.begin_seq()?;
        // Guard the pre-allocation against corrupt counts: never reserve
        // more than the remaining input could possibly hold (one byte
        // per element is the format's minimum).
        let mut out = Vec::with_capacity(usize::try_from(len).unwrap_or(0).min(1 << 20));
        for _ in 0..len {
            out.push(T::store_decode(d)?);
        }
        Ok(out)
    }
}

impl<T: StoreEncode, const N: usize> StoreEncode for [T; N] {
    fn store_encode(&self, e: &mut Encoder) {
        self.as_slice().store_encode(e);
    }
}

impl<T: StoreDecode, const N: usize> StoreDecode for [T; N] {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let at = d.position();
        let len = d.begin_seq()?;
        if len != N as u64 {
            return Err(DecodeError::CountMismatch {
                expected: N as u64,
                found: len,
                at,
            });
        }
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::store_decode(d)?);
        }
        out.try_into().map_err(|_| DecodeError::CountMismatch {
            expected: N as u64,
            found: len,
            at,
        })
    }
}

// ---- tuples ----

macro_rules! impl_tuple {
    ($len:expr => $($idx:tt $name:ident),+) => {
        impl<$($name: StoreEncode),+> StoreEncode for ($($name,)+) {
            fn store_encode(&self, e: &mut Encoder) {
                e.begin_tuple($len);
                $(self.$idx.store_encode(e);)+
            }
        }
        impl<$($name: StoreDecode),+> StoreDecode for ($($name,)+) {
            fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                d.begin_tuple($len)?;
                Ok(($($name::store_decode(d)?,)+))
            }
        }
    };
}
impl_tuple!(1u16 => 0 A);
impl_tuple!(2u16 => 0 A, 1 B);
impl_tuple!(3u16 => 0 A, 1 B, 2 C);
impl_tuple!(4u16 => 0 A, 1 B, 2 C, 3 D);

// ---- maps and sets ----

impl<K: StoreEncode, V: StoreEncode> StoreEncode for BTreeMap<K, V> {
    fn store_encode(&self, e: &mut Encoder) {
        e.begin_map(self.len());
        for (k, v) in self {
            k.store_encode(e);
            v.store_encode(e);
        }
    }
}

impl<K: StoreDecode + Ord, V: StoreDecode> StoreDecode for BTreeMap<K, V> {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = d.begin_map()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::store_decode(d)?;
            let v = V::store_decode(d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: StoreEncode> StoreEncode for BTreeSet<T> {
    fn store_encode(&self, e: &mut Encoder) {
        e.begin_seq(self.len());
        for item in self {
            item.store_encode(e);
        }
    }
}

impl<T: StoreDecode + Ord> StoreDecode for BTreeSet<T> {
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = d.begin_seq()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::store_decode(d)?);
        }
        Ok(out)
    }
}

impl<K: StoreEncode, V: StoreEncode, S> StoreEncode for HashMap<K, V, S> {
    fn store_encode(&self, e: &mut Encoder) {
        let mut entries: Vec<(Vec<u8>, &V)> = self
            .iter()
            .map(|(k, v)| (crate::encode_to_vec(k), v))
            .collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        e.begin_map(entries.len());
        for (key_bytes, v) in entries {
            e.raw(&key_bytes);
            v.store_encode(e);
        }
    }
}

impl<K, V, S> StoreDecode for HashMap<K, V, S>
where
    K: StoreDecode + Eq + Hash,
    V: StoreDecode,
    S: BuildHasher + Default,
{
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = d.begin_map()?;
        let mut out = HashMap::with_hasher(S::default());
        for _ in 0..len {
            let k = K::store_decode(d)?;
            let v = V::store_decode(d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: StoreEncode, S> StoreEncode for HashSet<T, S> {
    fn store_encode(&self, e: &mut Encoder) {
        let mut items: Vec<Vec<u8>> = self.iter().map(|v| crate::encode_to_vec(v)).collect();
        items.sort_unstable();
        e.begin_seq(items.len());
        for bytes in items {
            e.raw(&bytes);
        }
    }
}

impl<T, S> StoreDecode for HashSet<T, S>
where
    T: StoreDecode + Eq + Hash,
    S: BuildHasher + Default,
{
    fn store_decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = d.begin_seq()?;
        let mut out = HashSet::with_hasher(S::default());
        for _ in 0..len {
            out.insert(T::store_decode(d)?);
        }
        Ok(out)
    }
}
