//! A shared virtual clock.
//!
//! Every simulator (platforms, chains, the crawler) reads the same clock so
//! that "the stream was live when the transaction landed" is a meaningful
//! statement. The clock only moves forward; attempts to move it backwards
//! panic, because that would silently corrupt any time-indexed dataset.

use crate::time::{SimDuration, SimTime};
use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A monotonically advancing virtual clock.
///
/// Cheap to clone; clones share the same underlying instant.
#[derive(Debug, Clone)]
pub struct Clock {
    inner: Arc<AtomicI64>,
}

impl Clock {
    /// A clock starting at the given instant.
    pub fn starting_at(t: SimTime) -> Self {
        Clock {
            inner: Arc::new(AtomicI64::new(t.0)),
        }
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        SimTime(self.inner.load(Ordering::SeqCst))
    }

    /// Advance the clock by `d`.
    ///
    /// # Panics
    /// Panics if `d` is negative.
    pub fn advance(&self, d: SimDuration) {
        assert!(!d.is_negative(), "clock cannot move backwards (by {d})");
        self.inner.fetch_add(d.0, Ordering::SeqCst);
    }

    /// Move the clock directly to `t`.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current instant.
    pub fn advance_to(&self, t: SimTime) {
        let prev = self.inner.swap(t.0, Ordering::SeqCst);
        assert!(
            prev <= t.0,
            "clock cannot move backwards (from {} to {})",
            SimTime(prev),
            t
        );
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::starting_at(SimTime::EPOCH)
    }
}

/// A single-threaded clock for hot inner loops that cannot pay for atomics.
///
/// Used by the chain simulators when replaying large transaction schedules.
#[derive(Debug, Clone)]
pub struct LocalClock {
    inner: Rc<Cell<i64>>,
}

impl LocalClock {
    pub fn starting_at(t: SimTime) -> Self {
        LocalClock {
            inner: Rc::new(Cell::new(t.0)),
        }
    }

    pub fn now(&self) -> SimTime {
        SimTime(self.inner.get())
    }

    pub fn advance(&self, d: SimDuration) {
        assert!(!d.is_negative(), "clock cannot move backwards (by {d})");
        self.inner.set(self.inner.get() + d.0);
    }

    pub fn advance_to(&self, t: SimTime) {
        assert!(
            self.inner.get() <= t.0,
            "clock cannot move backwards (from {} to {})",
            self.now(),
            t
        );
        self.inner.set(t.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let c1 = Clock::starting_at(SimTime::from_ymd(2023, 7, 24));
        let c2 = c1.clone();
        c1.advance(SimDuration::minutes(30));
        assert_eq!(
            c2.now(),
            SimTime::from_ymd(2023, 7, 24) + SimDuration::minutes(30)
        );
    }

    #[test]
    fn advance_to_moves_forward() {
        let c = Clock::starting_at(SimTime::EPOCH);
        let target = SimTime::from_ymd(2022, 1, 1);
        c.advance_to(target);
        assert_eq!(c.now(), target);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_to_panics_backwards() {
        let c = Clock::starting_at(SimTime::from_ymd(2022, 1, 2));
        c.advance_to(SimTime::from_ymd(2022, 1, 1));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_panics_on_negative() {
        let c = Clock::default();
        c.advance(SimDuration::seconds(-1));
    }

    #[test]
    fn local_clock_behaves_like_clock() {
        let c = LocalClock::starting_at(SimTime::EPOCH);
        let c2 = c.clone();
        c.advance(SimDuration::hours(1));
        assert_eq!(c2.now(), SimTime(3600));
        c2.advance_to(SimTime(7200));
        assert_eq!(c.now(), SimTime(7200));
    }
}
