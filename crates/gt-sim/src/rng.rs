//! Deterministic, labelled randomness fan-out.
//!
//! One master seed drives the whole world. Components derive child RNGs by
//! *label* (and optionally an index), so adding a new consumer never
//! perturbs the streams other components see — the property that keeps a
//! calibrated world stable while the codebase grows.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a 64-bit over a byte string. Used only for label mixing, never for
/// anything adversarial.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One round of splitmix64; a strong 64→64 bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives independent deterministic RNG streams from a master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master: u64,
}

impl RngFactory {
    pub fn new(master_seed: u64) -> Self {
        RngFactory {
            master: master_seed,
        }
    }

    /// The master seed this factory was built from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derive the child seed for a label.
    pub fn child_seed(&self, label: &str) -> u64 {
        splitmix64(self.master ^ fnv1a(label.as_bytes()))
    }

    /// Derive the child seed for a label plus an index (e.g. one stream per
    /// campaign).
    pub fn child_seed_indexed(&self, label: &str, index: u64) -> u64 {
        splitmix64(self.child_seed(label) ^ splitmix64(index))
    }

    /// A deterministic RNG for a label.
    pub fn rng(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.child_seed(label))
    }

    /// A deterministic RNG for a label plus an index.
    pub fn rng_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.child_seed_indexed(label, index))
    }

    /// A sub-factory scoped under a label, for components that fan out
    /// further (e.g. the world generator hands each campaign its own
    /// factory).
    pub fn scoped(&self, label: &str) -> RngFactory {
        RngFactory {
            master: self.child_seed(label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(42);
        let a: Vec<u64> = f
            .rng("tweets")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = f
            .rng("tweets")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(42);
        assert_ne!(f.child_seed("tweets"), f.child_seed("streams"));
        assert_ne!(f.child_seed("tweets"), f.child_seed("tweet"));
    }

    #[test]
    fn different_master_seeds_differ() {
        assert_ne!(
            RngFactory::new(1).child_seed("x"),
            RngFactory::new(2).child_seed("x")
        );
    }

    #[test]
    fn indexed_children_differ() {
        let f = RngFactory::new(7);
        let s0 = f.child_seed_indexed("campaign", 0);
        let s1 = f.child_seed_indexed("campaign", 1);
        assert_ne!(s0, s1);
        // index 0 must not degenerate to the unindexed stream
        assert_ne!(s0, f.child_seed("campaign"));
    }

    #[test]
    fn scoped_factory_is_stable() {
        let f = RngFactory::new(9).scoped("world").scoped("twitter");
        let g = RngFactory::new(9).scoped("world").scoped("twitter");
        assert_eq!(f.child_seed("volume"), g.child_seed("volume"));
    }

    #[test]
    fn seeds_are_well_spread() {
        // A crude avalanche check: child seeds across 1000 indices should
        // be unique (collision here would mean correlated campaigns).
        let f = RngFactory::new(123);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(f.child_seed_indexed("c", i)));
        }
    }
}
