//! Type-safe identifier newtypes and a monotonic mint.
//!
//! Each simulator mints its own identifier space (tweet ids, channel ids,
//! transaction ids, ...). Wrapping them in distinct newtypes prevents the
//! classic measurement-pipeline bug of joining a tweet id against a stream
//! id and silently getting garbage.

use serde::{Deserialize, Serialize};
use std::marker::PhantomData;

/// Declare a `u64`-backed identifier newtype.
#[macro_export]
macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            serde::Serialize, serde::Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            pub const fn as_u64(self) -> u64 {
                self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

/// Hands out consecutive ids for one identifier type.
#[derive(Debug, Serialize, Deserialize)]
pub struct IdMint<T> {
    next: u64,
    #[serde(skip)]
    _marker: PhantomData<fn() -> T>,
}

impl<T: From<u64>> IdMint<T> {
    pub fn new() -> Self {
        IdMint {
            next: 0,
            _marker: PhantomData,
        }
    }

    /// Mint the next id.
    pub fn mint(&mut self) -> T {
        let id = self.next;
        self.next += 1;
        T::from(id)
    }

    /// Number of ids minted so far.
    pub fn count(&self) -> u64 {
        self.next
    }
}

impl<T: From<u64>> Default for IdMint<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    define_id!(TestId, "test-");

    impl From<u64> for TestId {
        fn from(v: u64) -> Self {
            TestId(v)
        }
    }

    #[test]
    fn mint_is_sequential() {
        let mut mint: IdMint<TestId> = IdMint::new();
        assert_eq!(mint.mint(), TestId(0));
        assert_eq!(mint.mint(), TestId(1));
        assert_eq!(mint.count(), 2);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(TestId(17).to_string(), "test-17");
        assert_eq!(TestId(17).as_u64(), 17);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        assert!(TestId(1) < TestId(2));
        let set: HashSet<TestId> = [TestId(1), TestId(1), TestId(2)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
