//! Samplers for the heavy-tailed distributions the world generator needs.
//!
//! The paper's central empirical finding about victim behaviour is the
//! "whale" structure of payments: the top ~24 of 671 Twitter payments carry
//! half the revenue. Reproducing that requires log-normal / Pareto payment
//! amounts, Zipf-distributed audience sizes, and Poisson arrival counts.
//! `rand` itself only ships uniform primitives, so these live here.

use rand::Rng;

/// Log-normal sampler: `exp(mu + sigma * Z)` with `Z ~ N(0,1)`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    pub mu: f64,
    pub sigma: f64,
}

impl LogNormal {
    /// Construct from the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Construct from a target median and a multiplicative spread factor
    /// (the ratio between the 84th percentile and the median).
    pub fn from_median_spread(median: f64, spread: f64) -> Self {
        assert!(median > 0.0 && spread >= 1.0);
        LogNormal {
            mu: median.ln(),
            sigma: spread.ln(),
        }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * sample_standard_normal(rng)).exp()
    }
}

/// Pareto (type I) sampler with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    pub x_min: f64,
    pub alpha: f64,
}

impl Pareto {
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0);
        Pareto { x_min, alpha }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: x_min * (1-U)^(-1/alpha); use U directly since
        // 1-U is also uniform, but guard against 0.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        self.x_min * u.powf(-1.0 / self.alpha)
    }
}

/// Zipf sampler over ranks `1..=n` with exponent `s`, via an inverted CDF
/// table. Build once, sample many times.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

/// Poisson sampler.
///
/// Uses Knuth's product-of-uniforms for small means and a normal
/// approximation (rounded, clamped at zero) for large means, which is more
/// than accurate enough for arrival counts in the hundreds.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean >= 0.0, "Poisson mean must be non-negative");
    if mean == 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        let z = sample_standard_normal(rng);
        let v = mean + mean.sqrt() * z;
        if v <= 0.0 {
            0
        } else {
            v.round() as u64
        }
    }
}

/// Standard normal via Box–Muller (the cheap half).
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Exponential inter-arrival sampler with the given rate (events per unit).
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

/// Pick an index according to a (not necessarily normalised) weight slice.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD15C0)
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let d = LogNormal::new(2.0f64.ln(), 0.8);
        let mut r = rng();
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 2.0).abs() < 0.1, "median was {median}");
    }

    #[test]
    fn lognormal_from_median_spread() {
        let d = LogNormal::from_median_spread(100.0, 3.0);
        assert!((d.mu - 100.0f64.ln()).abs() < 1e-12);
        assert!((d.sigma - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn pareto_respects_minimum_and_tail() {
        let d = Pareto::new(10.0, 1.5);
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x >= 10.0));
        // P(X > 2*x_min) = 2^-alpha ≈ 0.3536
        let frac = samples.iter().filter(|&&x| x > 20.0).count() as f64 / samples.len() as f64;
        assert!((frac - 0.3536).abs() < 0.02, "tail fraction {frac}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let d = Zipf::new(100, 1.2);
        let mut r = rng();
        let mut counts = vec![0usize; 101];
        for _ in 0..20_000 {
            counts[d.sample(&mut r)] += 1;
        }
        assert_eq!(counts[0], 0, "rank 0 must never be sampled");
        assert!(counts[1] > counts[2], "rank 1 should beat rank 2");
        assert!(counts[1] > counts[50] * 5, "head should dominate tail");
    }

    #[test]
    fn zipf_single_rank() {
        let d = Zipf::new(1, 1.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 1);
        }
    }

    #[test]
    fn poisson_mean_matches_small() {
        let mut r = rng();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| sample_poisson(&mut r, 3.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_large() {
        let mut r = rng();
        let n = 5_000;
        let total: u64 = (0..n).map(|_| sample_poisson(&mut r, 400.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 400.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut r = rng();
        assert_eq!(sample_poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng();
        let n = 20_000;
        let total: f64 = (0..n).map(|_| sample_exponential(&mut r, 0.25)).sum();
        let mean = total / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn weighted_sampling_tracks_weights() {
        let mut r = rng();
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_weighted(&mut r, &weights)] += 1;
        }
        let f2 = counts[2] as f64 / 30_000.0;
        assert!((f2 - 0.6).abs() < 0.02, "weight-2 fraction {f2}");
        assert!(counts[0] < counts[1] && counts[1] < counts[2]);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
