//! Deterministic fault injection for the measurement substrates.
//!
//! The paper's pipeline ran for months against flaky real-world services:
//! YouTube/Twitch API quota exhaustion, scam-site cloaking and dead
//! domains, and livestreams vanishing mid-monitor. This module models
//! those failure modes as a *seeded, pre-computed schedule* — a
//! [`FaultPlan`] — that every simulated substrate consults before
//! answering. Because the schedule is a pure function of `(seed, span,
//! profile)` and all retry jitter is drawn from the sim RNG, a chaotic
//! run is exactly as reproducible as a clean one.
//!
//! # Snapshot semantics
//!
//! A retried or latency-delayed call serves data *as of the original
//! poll tick*, not the (virtual) instant the retry finally lands.
//! Faults can therefore only ever *remove* observations relative to a
//! clean run — they never surface data a clean run would have missed.
//! This is what makes the chaos-suite invariants (victim counts and
//! revenue ≤ clean run) hold by construction rather than by luck.
//!
//! # Determinism contract
//!
//! - `FaultPlan::generate` derives one RNG stream per substrate from
//!   [`RngFactory`], so schedules are byte-stable across runs, thread
//!   counts, and substrate-iteration order.
//! - Consumers own their [`FaultDriver`] (one per sequential loop, e.g.
//!   a monitor window or an RPC read cursor). Drivers are never shared
//!   across worker threads, so retry ordering cannot depend on
//!   scheduling.
//! - Degradation accounting lives in `PaperRun`/experiments JSON only,
//!   never in `PaperReport`.

use crate::rng::RngFactory;
use crate::time::{SimDuration, SimTime};
use gt_obs::{MetricSheet, StageSink, BACKOFF_BUCKET_EDGES};
use gt_store::{StoreDecode, StoreEncode};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A simulated service surface that can fail independently.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub enum Substrate {
    /// YouTube live-search endpoint (`search.list`).
    YoutubeSearch,
    /// YouTube video/stream details (`videos.list`).
    YoutubeDetails,
    /// YouTube live-chat paging (`liveChatMessages.list`).
    YoutubeChat,
    /// Stream frame capture / recording.
    YoutubeRecord,
    /// Twitch Helix `Get Streams` listing.
    TwitchList,
    /// Twitch IRC chat tail.
    TwitchChat,
    /// DNS resolution for scam-site fetches.
    WebDns,
    /// TLS handshakes with scam sites.
    WebTls,
    /// HTTP fetch of scam-site pages.
    WebFetch,
    /// Blockchain RPC view reads (address history).
    ChainRpc,
    /// The monitor host itself (whole windows cut short).
    StreamMonitor,
}

impl Substrate {
    /// Every substrate, in schedule-generation order.
    pub const ALL: [Substrate; 11] = [
        Substrate::YoutubeSearch,
        Substrate::YoutubeDetails,
        Substrate::YoutubeChat,
        Substrate::YoutubeRecord,
        Substrate::TwitchList,
        Substrate::TwitchChat,
        Substrate::WebDns,
        Substrate::WebTls,
        Substrate::WebFetch,
        Substrate::ChainRpc,
        Substrate::StreamMonitor,
    ];

    /// Stable label, used to derive the per-substrate schedule RNG.
    pub fn label(self) -> &'static str {
        match self {
            Substrate::YoutubeSearch => "youtube.search",
            Substrate::YoutubeDetails => "youtube.details",
            Substrate::YoutubeChat => "youtube.chat",
            Substrate::YoutubeRecord => "youtube.record",
            Substrate::TwitchList => "twitch.list",
            Substrate::TwitchChat => "twitch.chat",
            Substrate::WebDns => "web.dns",
            Substrate::WebTls => "web.tls",
            Substrate::WebFetch => "web.fetch",
            Substrate::ChainRpc => "chain.rpc",
            Substrate::StreamMonitor => "stream.monitor",
        }
    }
}

impl std::fmt::Display for Substrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What kind of failure a window injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub enum FaultKind {
    /// Short-lived error; a backoff retry inside the window may still
    /// land inside it, but retries eventually escape.
    Transient,
    /// Quota exhaustion: every call fails until the window closes.
    RateLimit,
    /// Calls succeed but take `delay` longer. Served data still uses
    /// the original tick (snapshot semantics).
    Latency {
        /// Extra virtual time the call takes.
        delay: SimDuration,
    },
    /// Permanent outage: the substrate never answers again this run.
    Outage,
    /// A hard crash of the *consumer*: any call admitted inside the
    /// window panics the calling stage. The supervision layer
    /// (`gt_core::supervisor`) is what turns these into retries and
    /// quarantines instead of aborted runs. Appended after the original
    /// variants so stored plans keep their encodings.
    StagePanic,
}

/// One scheduled fault interval `[start, end)` on a substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct FaultWindow {
    pub start: SimTime,
    pub end: SimTime,
    pub kind: FaultKind,
}

impl FaultWindow {
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Fault rates used by [`FaultPlan::generate`]. All rates are expected
/// windows per substrate per 30 simulated days.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosProfile {
    pub transients_per_month: f64,
    pub transient_len: SimDuration,
    pub quotas_per_month: f64,
    pub quota_len: SimDuration,
    pub latencies_per_month: f64,
    pub latency_len: SimDuration,
    pub latency_delay: SimDuration,
    /// Probability that a substrate dies permanently somewhere in the
    /// last 40% of the span.
    pub outage_probability: f64,
    /// Expected [`FaultKind::StagePanic`] windows per substrate per 30
    /// days. Zero (the default, and every pre-existing preset) draws no
    /// RNG at all, so plans generated before this field existed are
    /// byte-identical.
    pub panics_per_month: f64,
    /// Length of each stage-panic window.
    pub panic_len: SimDuration,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile {
            transients_per_month: 20.0,
            transient_len: SimDuration::minutes(2),
            quotas_per_month: 2.0,
            quota_len: SimDuration::hours(4),
            latencies_per_month: 10.0,
            latency_len: SimDuration::minutes(5),
            latency_delay: SimDuration::seconds(5),
            outage_probability: 0.08,
            panics_per_month: 0.0,
            panic_len: SimDuration::minutes(30),
        }
    }
}

impl ChaosProfile {
    /// Occasional hiccups; no substrate ever dies.
    pub fn mild() -> Self {
        ChaosProfile {
            transients_per_month: 6.0,
            quotas_per_month: 0.5,
            latencies_per_month: 4.0,
            outage_probability: 0.0,
            ..ChaosProfile::default()
        }
    }

    /// Aggressive chaos: frequent transients, long quota windows, and a
    /// real chance each substrate goes dark for good.
    pub fn severe() -> Self {
        ChaosProfile {
            transients_per_month: 80.0,
            quotas_per_month: 6.0,
            quota_len: SimDuration::hours(8),
            latencies_per_month: 40.0,
            outage_probability: 0.3,
            ..ChaosProfile::default()
        }
    }

    /// Mild background faults plus injected stage panics: calls landing
    /// in a panic window crash their whole stage. Only survivable under
    /// a recovering `SupervisionPolicy`; the chaos-soak harness uses
    /// this profile to prove quarantine keeps runs alive.
    pub fn panicky() -> Self {
        ChaosProfile {
            panics_per_month: 1.5,
            ..ChaosProfile::mild()
        }
    }
}

/// A seeded, deterministic schedule of faults for every substrate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct FaultPlan {
    pub seed: u64,
    /// Sorted, non-overlapping windows per substrate.
    pub schedules: BTreeMap<Substrate, Vec<FaultWindow>>,
}

impl FaultPlan {
    /// A plan with no scheduled faults. Running under a quiet plan must
    /// produce a byte-identical `PaperReport` to running clean.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            schedules: BTreeMap::new(),
        }
    }

    /// Generate a schedule over `[span_start, span_end)`. Pure function
    /// of its arguments: one RNG stream per substrate, windows sorted
    /// by start and swept for overlap.
    pub fn generate(
        seed: u64,
        span_start: SimTime,
        span_end: SimTime,
        profile: &ChaosProfile,
    ) -> Self {
        let factory = RngFactory::new(seed).scoped("faults.plan");
        let span_secs = (span_end - span_start).as_seconds().max(1);
        let months = span_secs as f64 / (30.0 * 86_400.0);
        let mut schedules = BTreeMap::new();
        for sub in Substrate::ALL {
            let mut rng = factory.rng(sub.label());
            let mut windows: Vec<FaultWindow> = Vec::new();
            // The monitor host only fails catastrophically: a window
            // cut short, never a retried tick.
            if sub != Substrate::StreamMonitor {
                for (rate, len, kind) in [
                    (
                        profile.transients_per_month,
                        profile.transient_len,
                        FaultKind::Transient,
                    ),
                    (
                        profile.quotas_per_month,
                        profile.quota_len,
                        FaultKind::RateLimit,
                    ),
                    (
                        profile.latencies_per_month,
                        profile.latency_len,
                        FaultKind::Latency {
                            delay: profile.latency_delay,
                        },
                    ),
                    // Appended after the original kinds: a zero rate
                    // draws nothing, so pre-panic profiles generate
                    // byte-identical plans.
                    (
                        profile.panics_per_month,
                        profile.panic_len,
                        FaultKind::StagePanic,
                    ),
                ] {
                    let expected = rate * months;
                    let mut count = expected.floor() as usize;
                    let frac = expected.fract();
                    if frac > 0.0 && rng.gen_bool(frac.min(1.0)) {
                        count += 1;
                    }
                    for _ in 0..count {
                        let off = rng.gen_range(0..span_secs);
                        let start = span_start + SimDuration::seconds(off);
                        let end = (start + len).min(span_end);
                        if end > start {
                            windows.push(FaultWindow { start, end, kind });
                        }
                    }
                }
            }
            if profile.outage_probability > 0.0 && rng.gen_bool(profile.outage_probability.min(1.0))
            {
                // Outages land in the back 40% of the span so some clean
                // measurement always happens first, and extend to the end.
                let lo = span_secs * 6 / 10;
                let off = rng.gen_range(lo..span_secs);
                windows.push(FaultWindow {
                    start: span_start + SimDuration::seconds(off),
                    end: span_end,
                    kind: FaultKind::Outage,
                });
            }
            windows.sort_by_key(|w| (w.start, w.end));
            // Sweep out overlaps: keep each window only if it starts at
            // or after the previous survivor's end.
            let mut swept: Vec<FaultWindow> = Vec::with_capacity(windows.len());
            for w in windows {
                match swept.last() {
                    Some(prev) if w.start < prev.end => {}
                    _ => swept.push(w),
                }
            }
            if !swept.is_empty() {
                schedules.insert(sub, swept);
            }
        }
        FaultPlan { seed, schedules }
    }

    /// The fault window (if any) covering `now` on `sub`.
    pub fn window_at(&self, sub: Substrate, now: SimTime) -> Option<&FaultWindow> {
        let windows = self.schedules.get(&sub)?;
        // First window with start > now; the candidate is its predecessor.
        let idx = windows.partition_point(|w| w.start <= now);
        let w = &windows[idx.checked_sub(1)?];
        w.contains(now).then_some(w)
    }

    /// The fault kind (if any) active at `now` on `sub`.
    pub fn fault_at(&self, sub: Substrate, now: SimTime) -> Option<FaultKind> {
        self.window_at(sub, now).map(|w| w.kind)
    }

    /// True when no substrate has any scheduled window.
    pub fn is_quiet(&self) -> bool {
        self.schedules.values().all(|w| w.is_empty())
    }

    /// RNG factory for consumers that need jitter streams tied to this
    /// plan's seed.
    pub fn factory(&self) -> RngFactory {
        RngFactory::new(self.seed).scoped("faults.consumer")
    }
}

/// Shared retry/backoff policy: exponential backoff with jitter, capped
/// per attempt and bounded by a cumulative per-call budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct RetryPolicy {
    /// Maximum attempts per call (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: SimDuration,
    /// Upper bound on any single backoff.
    pub cap: SimDuration,
    /// Cumulative virtual time a single call may spend waiting.
    pub budget: SimDuration,
    /// Jitter as a fraction of the nominal backoff, in `[0, jitter]`.
    pub jitter: f64,
    /// Consecutive failures before the circuit breaker opens.
    pub breaker_threshold: u32,
    /// Sim time an open breaker waits before letting one half-open
    /// probe call through to see whether the substrate recovered.
    pub breaker_cooldown: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: SimDuration::seconds(2),
            cap: SimDuration::minutes(2),
            budget: SimDuration::minutes(10),
            jitter: 0.5,
            breaker_threshold: 3,
            breaker_cooldown: SimDuration::minutes(15),
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff before retry number `attempt` (1-based),
    /// without jitter: `base * 2^(attempt-1)`, capped at `cap`.
    pub fn nominal_backoff(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(32);
        let secs = self.base.as_seconds().saturating_mul(1i64 << shift);
        SimDuration::seconds(secs.min(self.cap.as_seconds()).max(0))
    }

    /// Backoff with jitter drawn from `rng`: uniform in
    /// `[nominal, nominal * (1 + jitter)]`.
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> SimDuration {
        let nominal = self.nominal_backoff(attempt);
        if self.jitter <= 0.0 || nominal.as_seconds() == 0 {
            return nominal;
        }
        let extra = (nominal.as_seconds() as f64 * self.jitter * rng.gen::<f64>()) as i64;
        nominal + SimDuration::seconds(extra)
    }
}

/// Where a [`CircuitBreaker`] is in its open/half-open/closed cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Shedding every call since `since`, until the cool-down elapses.
    Open { since: SimTime },
    /// Cool-down elapsed: one probe call is allowed through. Success
    /// closes the breaker; failure reopens it for another cool-down.
    HalfOpen,
}

/// Trips after `threshold` consecutive failures; while open, calls are
/// shed without consulting the schedule. After `cooldown` of sim time
/// the breaker goes *half-open* and admits a single probe call: if the
/// substrate recovered the breaker closes, otherwise it reopens and the
/// cool-down restarts. (It used to latch open forever, permanently
/// shedding a substrate that had long since recovered.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: SimDuration,
    consecutive: u32,
    state: BreakerState,
}

impl CircuitBreaker {
    pub fn new(threshold: u32, cooldown: SimDuration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive: 0,
            state: BreakerState::Closed,
        }
    }

    /// True while the breaker is shedding (ignores the cool-down; use
    /// [`CircuitBreaker::allows`] on the call path).
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }

    /// Whether a call at `now` may proceed. An open breaker whose
    /// cool-down has elapsed transitions to half-open and admits the
    /// call as its probe.
    pub fn allows(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { since } => {
                if now - since >= self.cooldown {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    pub fn record_success(&mut self) {
        self.consecutive = 0;
        self.state = BreakerState::Closed;
    }

    /// Returns true if this failure tripped the breaker open — either
    /// the threshold-crossing failure from closed, or a failed
    /// half-open probe reopening it.
    pub fn record_failure(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Open { .. } => false,
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open { since: now };
                true
            }
            BreakerState::Closed => {
                self.consecutive += 1;
                if self.consecutive >= self.threshold {
                    self.state = BreakerState::Open { since: now };
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Counts of injected faults and how the consumer fared against them.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub struct DegradationStats {
    /// Transient-window hits (one per failed attempt).
    pub transients: u64,
    /// Rate-limit-window hits.
    pub rate_limited: u64,
    /// Calls served slowly under a latency window.
    pub latency_spikes: u64,
    /// Calls that hit a permanent outage.
    pub outage_hits: u64,
    /// Retries issued (backoff waits and quota waits).
    pub retries: u64,
    /// Calls that hit at least one fault but ultimately served.
    pub recovered: u64,
    /// Calls dropped: outage, budget exhausted, or breaker open.
    pub lost: u64,
    /// Times a circuit breaker tripped open.
    pub circuit_opens: u64,
    /// Total sim-clock seconds spent sleeping before retries (backoff
    /// plus rate-limit window waits). Sim-derived, so deterministic.
    pub backoff_wait_secs: u64,
}

impl DegradationStats {
    /// Total injected fault hits across all kinds.
    pub fn injected(&self) -> u64 {
        self.transients + self.rate_limited + self.latency_spikes + self.outage_hits
    }

    pub fn merge(&mut self, other: &DegradationStats) {
        self.transients += other.transients;
        self.rate_limited += other.rate_limited;
        self.latency_spikes += other.latency_spikes;
        self.outage_hits += other.outage_hits;
        self.retries += other.retries;
        self.recovered += other.recovered;
        self.lost += other.lost;
        self.circuit_opens += other.circuit_opens;
        self.backoff_wait_secs += other.backoff_wait_secs;
    }

    pub fn is_zero(&self) -> bool {
        *self == DegradationStats::default()
    }
}

/// A call was shed: the substrate is down, the breaker is open, or the
/// retry budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Denied;

/// Per-consumer gate over a [`FaultPlan`]: owns the retry loop, jitter
/// RNG, per-substrate circuit breakers, and degradation accounting.
///
/// A driver must live inside one sequential loop (a monitor window, an
/// RPC cursor, a revisit crawl) — never shared across worker threads —
/// so its RNG draws and breaker transitions are reproducible.
#[derive(Debug, Clone)]
pub struct FaultDriver<'p> {
    plan: Option<&'p FaultPlan>,
    policy: RetryPolicy,
    rng: Option<StdRng>,
    breakers: BTreeMap<Substrate, CircuitBreaker>,
    stats: DegradationStats,
}

impl<'p> FaultDriver<'p> {
    /// A driver with no plan: every `admit` is an infallible no-op.
    pub fn disabled() -> Self {
        FaultDriver {
            plan: None,
            policy: RetryPolicy::default(),
            rng: None,
            breakers: BTreeMap::new(),
            stats: DegradationStats::default(),
        }
    }

    /// A driver over `plan`. `label` scopes the jitter stream so two
    /// drivers on the same plan (e.g. pilot vs main monitor) draw
    /// independent jitter.
    pub fn new(plan: Option<&'p FaultPlan>, label: &str, policy: RetryPolicy) -> Self {
        let rng = plan.map(|p| p.factory().rng(label));
        FaultDriver {
            plan,
            policy,
            rng,
            breakers: BTreeMap::new(),
            stats: DegradationStats::default(),
        }
    }

    pub fn stats(&self) -> DegradationStats {
        self.stats
    }

    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    pub fn plan(&self) -> Option<&'p FaultPlan> {
        self.plan
    }

    /// True when no plan is attached (fast path for hot loops).
    pub fn is_disabled(&self) -> bool {
        self.plan.is_none()
    }

    /// Consult the plan before a call at `now`. `Ok(())` means the call
    /// may serve — always with data as of `now` (snapshot semantics),
    /// even if retries pushed the virtual completion time later.
    pub fn admit(&mut self, sub: Substrate, now: SimTime) -> Result<(), Denied> {
        let Some(plan) = self.plan else {
            return Ok(());
        };
        if let Some(b) = self.breakers.get_mut(&sub) {
            if !b.allows(now) {
                self.stats.lost += 1;
                return Err(Denied);
            }
        }
        let mut at = now;
        let mut waited = SimDuration::ZERO;
        let mut attempt: u32 = 1;
        let mut saw_fault = false;
        loop {
            let Some(window) = plan.window_at(sub, at) else {
                if saw_fault {
                    self.stats.recovered += 1;
                }
                if let Some(b) = self.breakers.get_mut(&sub) {
                    b.record_success();
                }
                return Ok(());
            };
            saw_fault = true;
            match window.kind {
                FaultKind::Latency { delay: _ } => {
                    // Slow but successful; snapshot semantics mean the
                    // delay never changes what data is served.
                    self.stats.latency_spikes += 1;
                    self.stats.recovered += 1;
                    if let Some(b) = self.breakers.get_mut(&sub) {
                        b.record_success();
                    }
                    return Ok(());
                }
                FaultKind::StagePanic => {
                    // A consumer crash, not a service error: unwind the
                    // calling stage. Deterministic (pure function of the
                    // plan and sim time), so the supervision layer sees
                    // the same panic on every run and thread count.
                    panic!(
                        "gt-sim: injected stage panic ({} at t={})",
                        sub.label(),
                        at.0
                    );
                }
                FaultKind::Outage => {
                    self.stats.outage_hits += 1;
                    self.stats.lost += 1;
                    let threshold = self.policy.breaker_threshold;
                    let cooldown = self.policy.breaker_cooldown;
                    let b = self
                        .breakers
                        .entry(sub)
                        .or_insert_with(|| CircuitBreaker::new(threshold, cooldown));
                    if b.record_failure(at) {
                        self.stats.circuit_opens += 1;
                    }
                    return Err(Denied);
                }
                FaultKind::Transient | FaultKind::RateLimit => {
                    let delay = if window.kind == FaultKind::Transient {
                        self.stats.transients += 1;
                        let rng = self.rng.as_mut().expect("plan implies rng");
                        self.policy.backoff(attempt, rng)
                    } else {
                        self.stats.rate_limited += 1;
                        // Quota windows don't clear early: wait them out.
                        (window.end - at).max(SimDuration::seconds(1))
                    };
                    waited = waited + delay;
                    if attempt >= self.policy.max_attempts || waited > self.policy.budget {
                        self.stats.lost += 1;
                        return Err(Denied);
                    }
                    self.stats.retries += 1;
                    self.stats.backoff_wait_secs += delay.as_seconds().max(0) as u64;
                    attempt += 1;
                    at += delay;
                }
            }
        }
    }
}

/// The unified checked-call surface every substrate client codes
/// against. A substrate defines its raw call once and exposes one
/// `*_gated` method generic over `G: CheckedCall`; fault gating and
/// telemetry then come for free from whichever gate the caller holds —
/// a bare [`FaultDriver`] (gating only) or a [`Gated`] wrapper (gating
/// plus per-call metrics).
pub trait CheckedCall {
    /// Gate one call at `now`. On admission, run `body` and return its
    /// value; `body` also reports how many records (hits, messages,
    /// frames, bytes — the substrate chooses the unit) the call
    /// produced, which an observing gate turns into metrics.
    fn checked_counted<T>(
        &mut self,
        sub: Substrate,
        now: SimTime,
        body: impl FnOnce() -> (T, u64),
    ) -> Result<T, Denied>;

    /// [`CheckedCall::checked_counted`] for calls with no meaningful
    /// record count.
    fn checked<T>(
        &mut self,
        sub: Substrate,
        now: SimTime,
        body: impl FnOnce() -> T,
    ) -> Result<T, Denied> {
        self.checked_counted(sub, now, || (body(), 0))
    }

    /// True when the gate does nothing at all — no fault plan *and* no
    /// telemetry — so hot paths may skip instrumentation entirely.
    fn pass_through(&self) -> bool;

    /// The fault window (if any) covering `sub` at `now`, for callers
    /// that map fault kinds onto domain errors (e.g. the web fetcher).
    fn active_fault(&self, sub: Substrate, now: SimTime) -> Option<FaultKind>;
}

impl CheckedCall for FaultDriver<'_> {
    fn checked_counted<T>(
        &mut self,
        sub: Substrate,
        now: SimTime,
        body: impl FnOnce() -> (T, u64),
    ) -> Result<T, Denied> {
        self.admit(sub, now)?;
        Ok(body().0)
    }

    fn pass_through(&self) -> bool {
        self.is_disabled()
    }

    fn active_fault(&self, sub: Substrate, now: SimTime) -> Option<FaultKind> {
        self.plan().and_then(|p| p.fault_at(sub, now))
    }
}

/// A [`FaultDriver`] that also reports every call into a telemetry
/// sink: per-substrate call/served/denied/record counters, the full
/// degradation breakdown, and a backoff-sleep histogram. Metrics are
/// accumulated lock-free in a local [`MetricSheet`] and flushed to the
/// registry once, when the gate drops.
///
/// All recorded values derive from sim state ([`DegradationStats`]
/// deltas and caller-supplied record counts), so telemetry inherits the
/// fault layer's determinism: byte-identical across thread counts.
#[derive(Debug)]
pub struct Gated<'p> {
    driver: FaultDriver<'p>,
    sink: StageSink,
    sheet: MetricSheet,
}

impl<'p> Gated<'p> {
    /// A gate over `plan` reporting into `sink`. `label` scopes the
    /// jitter stream exactly as in [`FaultDriver::new`].
    pub fn new(
        plan: Option<&'p FaultPlan>,
        label: &str,
        policy: RetryPolicy,
        sink: StageSink,
    ) -> Self {
        Gated {
            driver: FaultDriver::new(plan, label, policy),
            sink,
            sheet: MetricSheet::new(),
        }
    }

    /// No plan, no telemetry: every call passes through untouched.
    pub fn disabled() -> Gated<'static> {
        Gated {
            driver: FaultDriver::disabled(),
            sink: StageSink::noop(),
            sheet: MetricSheet::new(),
        }
    }

    pub fn stats(&self) -> DegradationStats {
        self.driver.stats()
    }

    pub fn sink(&self) -> &StageSink {
        &self.sink
    }

    /// Record how the last admission changed the degradation counters,
    /// attributing the delta to `label` (exact, because `admit` only
    /// ever touches one substrate's accounting per call).
    fn record_delta(&mut self, label: &'static str, before: &DegradationStats) {
        let after = self.driver.stats();
        for (metric, delta) in [
            ("retries", after.retries - before.retries),
            ("transients", after.transients - before.transients),
            ("rate_limited", after.rate_limited - before.rate_limited),
            (
                "latency_spikes",
                after.latency_spikes - before.latency_spikes,
            ),
            ("outage_hits", after.outage_hits - before.outage_hits),
            ("recovered", after.recovered - before.recovered),
            ("lost", after.lost - before.lost),
            ("circuit_opens", after.circuit_opens - before.circuit_opens),
        ] {
            if delta > 0 {
                self.sheet.add(label, metric, delta);
            }
        }
        let waited = after.backoff_wait_secs - before.backoff_wait_secs;
        if waited > 0 {
            self.sheet.add(label, "backoff_wait_secs", waited);
            self.sheet
                .observe(label, "backoff_secs", waited, BACKOFF_BUCKET_EDGES);
        }
    }
}

impl Drop for Gated<'_> {
    fn drop(&mut self) {
        self.sink.flush(&mut self.sheet);
    }
}

impl CheckedCall for Gated<'_> {
    fn checked_counted<T>(
        &mut self,
        sub: Substrate,
        now: SimTime,
        body: impl FnOnce() -> (T, u64),
    ) -> Result<T, Denied> {
        if !self.sink.enabled() {
            self.driver.admit(sub, now)?;
            return Ok(body().0);
        }
        let label = sub.label();
        let before = self.driver.stats();
        let admitted = self.driver.admit(sub, now);
        self.sheet.add(label, "calls", 1);
        self.record_delta(label, &before);
        match admitted {
            Ok(()) => {
                let (value, records) = body();
                self.sheet.add(label, "served", 1);
                if records > 0 {
                    self.sheet.add(label, "records", records);
                }
                Ok(value)
            }
            Err(denied) => {
                self.sheet.add(label, "denied", 1);
                Err(denied)
            }
        }
    }

    fn pass_through(&self) -> bool {
        self.driver.is_disabled() && !self.sink.enabled()
    }

    fn active_fault(&self, sub: Substrate, now: SimTime) -> Option<FaultKind> {
        self.driver.plan().and_then(|p| p.fault_at(sub, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(secs: i64) -> SimTime {
        SimTime(secs)
    }

    fn span() -> (SimTime, SimTime) {
        (t(0), t(90 * 86_400))
    }

    #[test]
    fn gated_accounting_matches_driver_and_flushes_on_drop() {
        let (a, b) = span();
        let plan = FaultPlan::generate(7, a, b, &ChaosProfile::severe());
        let reg = gt_obs::MetricsRegistry::new();
        let (mut served, mut denied) = (0u64, 0u64);
        let stats = {
            let mut gate = Gated::new(
                Some(&plan),
                "gated-test",
                RetryPolicy::default(),
                reg.sink("stage"),
            );
            let mut now = a;
            while now < b {
                match gate.checked_counted(Substrate::YoutubeSearch, now, || ((), 3)) {
                    Ok(()) => served += 1,
                    Err(Denied) => denied += 1,
                }
                now += SimDuration::hours(6);
            }
            gate.stats()
        }; // drop flushes the sheet
        let snap = reg.snapshot();
        let get = |m: &str| snap.counter("stage", "youtube.search", m).unwrap_or(0);
        assert_eq!(get("calls"), served + denied);
        assert_eq!(get("served"), served);
        assert_eq!(get("denied"), denied);
        assert_eq!(get("records"), served * 3);
        assert_eq!(get("retries"), stats.retries);
        assert_eq!(get("lost"), stats.lost);
        assert_eq!(get("backoff_wait_secs"), stats.backoff_wait_secs);
        assert!(denied > 0, "severe profile should deny something");
    }

    #[test]
    fn gated_with_quiet_sink_still_gates() {
        let (a, b) = span();
        let plan = FaultPlan::generate(7, a, b, &ChaosProfile::severe());
        let via_driver = {
            let mut d = FaultDriver::new(Some(&plan), "same-label", RetryPolicy::default());
            let mut ok = 0u64;
            let mut now = a;
            while now < b {
                ok += d.admit(Substrate::TwitchList, now).is_ok() as u64;
                now += SimDuration::hours(6);
            }
            (ok, d.stats())
        };
        let via_gated = {
            let mut g = Gated::new(
                Some(&plan),
                "same-label",
                RetryPolicy::default(),
                gt_obs::StageSink::noop(),
            );
            let mut ok = 0u64;
            let mut now = a;
            while now < b {
                ok += g.checked(Substrate::TwitchList, now, || ()).is_ok() as u64;
                now += SimDuration::hours(6);
            }
            (ok, g.stats())
        };
        assert_eq!(via_driver, via_gated, "telemetry must not change gating");
    }

    #[test]
    fn generate_is_reproducible() {
        let (a, b) = span();
        let p1 = FaultPlan::generate(42, a, b, &ChaosProfile::default());
        let p2 = FaultPlan::generate(42, a, b, &ChaosProfile::default());
        assert_eq!(p1, p2);
        let p3 = FaultPlan::generate(43, a, b, &ChaosProfile::default());
        assert_ne!(p1, p3);
    }

    #[test]
    fn windows_are_sorted_and_disjoint() {
        let (a, b) = span();
        let plan = FaultPlan::generate(7, a, b, &ChaosProfile::severe());
        assert!(!plan.schedules.is_empty());
        for windows in plan.schedules.values() {
            for pair in windows.windows(2) {
                assert!(pair[0].end <= pair[1].start, "{pair:?} overlap");
            }
            for w in windows {
                assert!(w.start < w.end);
                assert!(w.start >= a && w.end <= b);
            }
        }
    }

    #[test]
    fn window_lookup_matches_linear_scan() {
        let (a, b) = span();
        let plan = FaultPlan::generate(11, a, b, &ChaosProfile::severe());
        for sub in Substrate::ALL {
            for secs in (0..90 * 86_400).step_by(86_400 / 4 + 7) {
                let now = t(secs);
                let fast = plan.fault_at(sub, now);
                let slow = plan
                    .schedules
                    .get(&sub)
                    .and_then(|ws| ws.iter().find(|w| w.contains(now)))
                    .map(|w| w.kind);
                assert_eq!(fast, slow);
            }
        }
    }

    #[test]
    fn quiet_plan_admits_everything() {
        let plan = FaultPlan::quiet(9);
        assert!(plan.is_quiet());
        let mut gate = FaultDriver::new(Some(&plan), "test", RetryPolicy::default());
        for secs in 0..100 {
            assert!(gate.admit(Substrate::YoutubeSearch, t(secs)).is_ok());
        }
        assert!(gate.stats().is_zero());
    }

    #[test]
    fn disabled_driver_is_a_noop() {
        let mut gate = FaultDriver::disabled();
        assert!(gate.is_disabled());
        assert!(gate.admit(Substrate::ChainRpc, t(5)).is_ok());
        assert!(gate.stats().is_zero());
    }

    #[test]
    fn transient_window_is_escaped_by_retries() {
        let mut plan = FaultPlan::quiet(1);
        plan.schedules.insert(
            Substrate::WebFetch,
            vec![FaultWindow {
                start: t(100),
                end: t(104),
                kind: FaultKind::Transient,
            }],
        );
        let mut gate = FaultDriver::new(Some(&plan), "t", RetryPolicy::default());
        assert!(gate.admit(Substrate::WebFetch, t(101)).is_ok());
        let s = gate.stats();
        assert!(s.transients >= 1);
        assert_eq!(s.recovered, 1);
        assert_eq!(s.lost, 0);
        assert!(s.retries >= 1);
    }

    #[test]
    fn rate_limit_longer_than_budget_is_lost() {
        let mut plan = FaultPlan::quiet(1);
        plan.schedules.insert(
            Substrate::YoutubeChat,
            vec![FaultWindow {
                start: t(0),
                end: t(86_400),
                kind: FaultKind::RateLimit,
            }],
        );
        let mut gate = FaultDriver::new(Some(&plan), "q", RetryPolicy::default());
        assert_eq!(gate.admit(Substrate::YoutubeChat, t(10)), Err(Denied));
        let s = gate.stats();
        assert_eq!(s.rate_limited, 1);
        assert_eq!(s.lost, 1);
        assert_eq!(s.recovered, 0);
    }

    #[test]
    fn short_rate_limit_is_waited_out() {
        let mut plan = FaultPlan::quiet(1);
        plan.schedules.insert(
            Substrate::YoutubeSearch,
            vec![FaultWindow {
                start: t(0),
                end: t(60),
                kind: FaultKind::RateLimit,
            }],
        );
        let mut gate = FaultDriver::new(Some(&plan), "q", RetryPolicy::default());
        assert!(gate.admit(Substrate::YoutubeSearch, t(10)).is_ok());
        let s = gate.stats();
        assert_eq!(s.rate_limited, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.recovered, 1);
    }

    #[test]
    fn outage_trips_breaker_then_sheds_without_consulting() {
        let mut plan = FaultPlan::quiet(1);
        plan.schedules.insert(
            Substrate::ChainRpc,
            vec![FaultWindow {
                start: t(0),
                end: t(1_000_000),
                kind: FaultKind::Outage,
            }],
        );
        let policy = RetryPolicy {
            breaker_threshold: 2,
            ..RetryPolicy::default()
        };
        let mut gate = FaultDriver::new(Some(&plan), "o", policy);
        assert_eq!(gate.admit(Substrate::ChainRpc, t(1)), Err(Denied));
        assert_eq!(gate.admit(Substrate::ChainRpc, t(2)), Err(Denied));
        // Breaker now open: further calls shed without outage hits.
        assert_eq!(gate.admit(Substrate::ChainRpc, t(3)), Err(Denied));
        let s = gate.stats();
        assert_eq!(s.outage_hits, 2);
        assert_eq!(s.circuit_opens, 1);
        assert_eq!(s.lost, 3);
    }

    #[test]
    fn latency_counts_but_serves() {
        let mut plan = FaultPlan::quiet(1);
        plan.schedules.insert(
            Substrate::YoutubeDetails,
            vec![FaultWindow {
                start: t(0),
                end: t(100),
                kind: FaultKind::Latency {
                    delay: SimDuration::seconds(30),
                },
            }],
        );
        let mut gate = FaultDriver::new(Some(&plan), "l", RetryPolicy::default());
        assert!(gate.admit(Substrate::YoutubeDetails, t(50)).is_ok());
        let s = gate.stats();
        assert_eq!(s.latency_spikes, 1);
        assert_eq!(s.recovered, 1);
        assert_eq!(s.lost, 0);
    }

    #[test]
    fn nominal_backoff_monotone_and_capped() {
        let policy = RetryPolicy::default();
        let mut prev = SimDuration::ZERO;
        for attempt in 1..=20 {
            let b = policy.nominal_backoff(attempt);
            assert!(b >= prev);
            assert!(b <= policy.cap);
            prev = b;
        }
    }

    #[test]
    fn jittered_backoff_within_bounds() {
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(3);
        for attempt in 1..=10 {
            let nominal = policy.nominal_backoff(attempt);
            for _ in 0..50 {
                let b = policy.backoff(attempt, &mut rng);
                assert!(b >= nominal);
                let max = nominal.as_seconds() as f64 * (1.0 + policy.jitter);
                assert!((b.as_seconds() as f64) <= max + 1.0);
            }
        }
    }

    #[test]
    fn degradation_merge_sums() {
        let a = DegradationStats {
            transients: 1,
            rate_limited: 2,
            latency_spikes: 3,
            outage_hits: 4,
            retries: 5,
            recovered: 6,
            lost: 7,
            circuit_opens: 8,
            backoff_wait_secs: 9,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.transients, 2);
        assert_eq!(b.circuit_opens, 16);
        assert_eq!(b.injected(), 2 * a.injected());
    }

    #[test]
    fn breaker_cycles_open_half_open_closed() {
        let mut b = CircuitBreaker::new(2, SimDuration::minutes(10));
        assert!(b.allows(t(0)));
        assert!(!b.record_failure(t(1)));
        assert!(b.record_failure(t(2)), "second failure trips it open");
        assert!(b.is_open());
        assert!(!b.allows(t(3)), "open: shed during cool-down");
        assert!(
            !b.allows(t(2 + 599)),
            "still inside the 10-minute cool-down"
        );
        assert!(b.allows(t(2 + 600)), "cool-down elapsed: half-open probe");
        assert!(!b.is_open());
        b.record_success();
        assert!(b.allows(t(700)), "probe succeeded: closed again");
        assert!(
            !b.record_failure(t(701)),
            "closed counts from zero after the success"
        );
    }

    #[test]
    fn failed_half_open_probe_reopens_for_another_cooldown() {
        let mut b = CircuitBreaker::new(1, SimDuration::seconds(60));
        assert!(b.record_failure(t(0)));
        assert!(b.allows(t(60)), "half-open probe");
        assert!(b.record_failure(t(60)), "failed probe counts as a trip");
        assert!(!b.allows(t(61)), "reopened: cool-down restarted");
        assert!(!b.allows(t(119)));
        assert!(b.allows(t(120)), "second cool-down elapsed");
    }

    #[test]
    fn driver_readmits_substrate_after_outage_clears_and_cooldown() {
        // Outage ends at t=100; breaker trips during it. After the
        // cool-down, the half-open probe lands on a clean schedule and
        // the substrate is readmitted — it no longer latches forever.
        let mut plan = FaultPlan::quiet(1);
        plan.schedules.insert(
            Substrate::ChainRpc,
            vec![FaultWindow {
                start: t(0),
                end: t(100),
                kind: FaultKind::Outage,
            }],
        );
        let policy = RetryPolicy {
            breaker_threshold: 1,
            breaker_cooldown: SimDuration::seconds(300),
            ..RetryPolicy::default()
        };
        let mut gate = FaultDriver::new(Some(&plan), "ho", policy);
        assert_eq!(gate.admit(Substrate::ChainRpc, t(10)), Err(Denied));
        assert_eq!(
            gate.admit(Substrate::ChainRpc, t(200)),
            Err(Denied),
            "outage over but breaker still cooling down"
        );
        assert!(
            gate.admit(Substrate::ChainRpc, t(310)).is_ok(),
            "half-open probe succeeds and closes the breaker"
        );
        assert!(gate.admit(Substrate::ChainRpc, t(311)).is_ok());
        let s = gate.stats();
        assert_eq!(s.outage_hits, 1);
        assert_eq!(s.circuit_opens, 1);
        assert_eq!(s.lost, 2);
    }

    #[test]
    fn stage_panic_window_panics_the_caller() {
        let mut plan = FaultPlan::quiet(1);
        plan.schedules.insert(
            Substrate::YoutubeSearch,
            vec![FaultWindow {
                start: t(100),
                end: t(200),
                kind: FaultKind::StagePanic,
            }],
        );
        let mut gate = FaultDriver::new(Some(&plan), "p", RetryPolicy::default());
        assert!(gate.admit(Substrate::YoutubeSearch, t(50)).is_ok());
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = gate.admit(Substrate::YoutubeSearch, t(150));
        }));
        let message = panic_text(panicked.expect_err("panic window must panic").as_ref());
        assert!(message.contains("injected stage panic"), "{message}");
        assert!(message.contains("youtube.search"), "{message}");
    }

    fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| {
                payload
                    .downcast_ref::<&'static str>()
                    .map(|s| s.to_string())
            })
            .unwrap_or_default()
    }

    #[test]
    fn panicky_profile_schedules_panics_without_shifting_other_kinds() {
        let (a, b) = span();
        let plan = FaultPlan::generate(7, a, b, &ChaosProfile::panicky());
        let panic_windows: usize = plan
            .schedules
            .values()
            .flatten()
            .filter(|w| w.kind == FaultKind::StagePanic)
            .count();
        assert!(panic_windows > 0, "1.5/month over 3 months must schedule");
        // Zero-rate panic fields draw no RNG: a pre-panic profile's plan
        // is byte-identical to the same profile with the fields defaulted.
        let mild = FaultPlan::generate(7, a, b, &ChaosProfile::mild());
        let explicit = FaultPlan::generate(
            7,
            a,
            b,
            &ChaosProfile {
                panics_per_month: 0.0,
                ..ChaosProfile::mild()
            },
        );
        assert_eq!(mild, explicit);
        assert!(!mild
            .schedules
            .values()
            .flatten()
            .any(|w| w.kind == FaultKind::StagePanic));
    }

    #[test]
    fn stream_monitor_gets_only_outages() {
        let (a, b) = span();
        let plan = FaultPlan::generate(123, a, b, &ChaosProfile::severe());
        if let Some(windows) = plan.schedules.get(&Substrate::StreamMonitor) {
            for w in windows {
                assert_eq!(w.kind, FaultKind::Outage);
            }
        }
    }
}
