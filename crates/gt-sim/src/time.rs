//! Virtual timestamps and civil-calendar math.
//!
//! All simulation time is UTC seconds since the Unix epoch, stored in an
//! `i64`. Calendar conversions use Howard Hinnant's `days_from_civil`
//! algorithm, which is exact over the entire `i64` day range we care about.

use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time: UTC seconds since the Unix epoch.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub struct SimTime(pub i64);

/// A span of simulated time, in seconds. May be negative for differences.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub struct SimDuration(pub i64);

/// Day of week, ISO numbering (Monday = 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn seconds(s: i64) -> Self {
        SimDuration(s)
    }
    pub const fn minutes(m: i64) -> Self {
        SimDuration(m * 60)
    }
    pub const fn hours(h: i64) -> Self {
        SimDuration(h * 3600)
    }
    pub const fn days(d: i64) -> Self {
        SimDuration(d * 86_400)
    }
    pub const fn weeks(w: i64) -> Self {
        SimDuration(w * 7 * 86_400)
    }

    pub const fn as_seconds(self) -> i64 {
        self.0
    }
    pub const fn as_minutes(self) -> i64 {
        self.0 / 60
    }
    pub const fn as_hours(self) -> i64 {
        self.0 / 3600
    }
    pub const fn as_days(self) -> i64 {
        self.0 / 86_400
    }

    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    pub fn abs(self) -> Self {
        SimDuration(self.0.abs())
    }
}

/// A civil (proleptic Gregorian) calendar date in UTC.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    StoreEncode,
    StoreDecode,
)]
pub struct CivilDate {
    pub year: i32,
    /// 1-based month.
    pub month: u8,
    /// 1-based day of month.
    pub day: u8,
}

/// Days since the Unix epoch for a civil date (Hinnant's `days_from_civil`).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`] (Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

impl CivilDate {
    pub const fn new(year: i32, month: u8, day: u8) -> Self {
        CivilDate { year, month, day }
    }

    /// Whether this is a real calendar date.
    pub fn is_valid(&self) -> bool {
        if self.month < 1 || self.month > 12 || self.day < 1 {
            return false;
        }
        self.day <= days_in_month(self.year, self.month)
    }

    /// Midnight UTC at the start of this date.
    pub fn at_midnight(&self) -> SimTime {
        SimTime(days_from_civil(self.year, self.month, self.day) * 86_400)
    }

    /// Midnight plus an offset within the day.
    pub fn at(&self, hour: u8, minute: u8, second: u8) -> SimTime {
        SimTime(
            self.at_midnight().0
                + i64::from(hour) * 3600
                + i64::from(minute) * 60
                + i64::from(second),
        )
    }

    pub fn succ(&self) -> CivilDate {
        let days = days_from_civil(self.year, self.month, self.day) + 1;
        let (y, m, d) = civil_from_days(days);
        CivilDate::new(y, m, d)
    }
}

/// Number of days in a month of a given year.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Gregorian leap-year rule.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

impl SimTime {
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from a civil date and time-of-day.
    pub fn from_ymd_hms(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Self {
        CivilDate::new(year, month, day).at(hour, minute, second)
    }

    /// Construct from a civil date at midnight UTC.
    pub fn from_ymd(year: i32, month: u8, day: u8) -> Self {
        CivilDate::new(year, month, day).at_midnight()
    }

    pub const fn as_seconds(self) -> i64 {
        self.0
    }

    /// Days since the epoch (floor).
    pub fn day_number(self) -> i64 {
        self.0.div_euclid(86_400)
    }

    /// Seconds into the current day.
    pub fn second_of_day(self) -> i64 {
        self.0.rem_euclid(86_400)
    }

    /// The civil date this instant falls on.
    pub fn date(self) -> CivilDate {
        let (y, m, d) = civil_from_days(self.day_number());
        CivilDate::new(y, m, d)
    }

    /// ISO day of week.
    pub fn weekday(self) -> Weekday {
        // 1970-01-01 was a Thursday.
        match self.day_number().rem_euclid(7) {
            0 => Weekday::Thursday,
            1 => Weekday::Friday,
            2 => Weekday::Saturday,
            3 => Weekday::Sunday,
            4 => Weekday::Monday,
            5 => Weekday::Tuesday,
            _ => Weekday::Wednesday,
        }
    }

    /// Index of the week containing this instant, relative to a window start.
    ///
    /// Week 0 begins exactly at `window_start`; each week is seven days.
    /// This matches the paper's weekly bucketing of tweet and stream volume.
    pub fn week_index_from(self, window_start: SimTime) -> i64 {
        (self.0 - window_start.0).div_euclid(7 * 86_400)
    }

    /// Start of the UTC day containing this instant.
    pub fn floor_day(self) -> SimTime {
        SimTime(self.day_number() * 86_400)
    }

    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.date();
        let s = self.second_of_day();
        write!(
            f,
            "{}T{:02}:{:02}:{:02}Z",
            d,
            s / 3600,
            (s % 3600) / 60,
            s % 60
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0.abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        if total >= 86_400 {
            write!(f, "{}{}d{}h", sign, total / 86_400, (total % 86_400) / 3600)
        } else if total >= 3600 {
            write!(f, "{}{}h{}m", sign, total / 3600, (total % 3600) / 60)
        } else if total >= 60 {
            write!(f, "{}{}m{}s", sign, total / 60, total % 60)
        } else {
            write!(f, "{}{}s", sign, total)
        }
    }
}

/// Iterate over the civil dates in `[start, end)`.
pub fn date_range(start: CivilDate, end: CivilDate) -> impl Iterator<Item = CivilDate> {
    let mut cur = start;
    std::iter::from_fn(move || {
        if cur.at_midnight() >= end.at_midnight() {
            None
        } else {
            let out = cur;
            cur = cur.succ();
            Some(out)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(SimTime::EPOCH.date(), CivilDate::new(1970, 1, 1));
        assert_eq!(SimTime::from_ymd(1970, 1, 1), SimTime::EPOCH);
    }

    #[test]
    fn known_timestamps_round_trip() {
        // 2022-01-01T00:00:00Z = 1640995200
        assert_eq!(SimTime::from_ymd(2022, 1, 1).0, 1_640_995_200);
        // 2023-07-24T00:00:00Z = 1690156800
        assert_eq!(SimTime::from_ymd(2023, 7, 24).0, 1_690_156_800);
        // 2024-01-21T00:00:00Z = 1705795200
        assert_eq!(SimTime::from_ymd(2024, 1, 21).0, 1_705_795_200);
    }

    #[test]
    fn date_round_trips_across_leap_years() {
        for year in [1999, 2000, 2020, 2022, 2023, 2024, 2100] {
            for month in 1..=12u8 {
                for day in [1u8, 15, days_in_month(year, month)] {
                    let d = CivilDate::new(year, month, day);
                    assert_eq!(d.at_midnight().date(), d, "round trip failed for {d}");
                }
            }
        }
    }

    #[test]
    fn weekday_is_correct() {
        // 1970-01-01 Thursday; 2024-01-21 is a Sunday; 2023-07-24 is a Monday.
        assert_eq!(SimTime::EPOCH.weekday(), Weekday::Thursday);
        assert_eq!(SimTime::from_ymd(2024, 1, 21).weekday(), Weekday::Sunday);
        assert_eq!(SimTime::from_ymd(2023, 7, 24).weekday(), Weekday::Monday);
    }

    #[test]
    fn week_index_buckets_by_seven_days() {
        let start = SimTime::from_ymd(2023, 7, 24);
        assert_eq!(start.week_index_from(start), 0);
        assert_eq!((start + SimDuration::days(6)).week_index_from(start), 0);
        assert_eq!((start + SimDuration::days(7)).week_index_from(start), 1);
        assert_eq!((start - SimDuration::seconds(1)).week_index_from(start), -1);
        // 26 weeks later ends the collection window.
        assert_eq!(
            (start + SimDuration::weeks(26) - SimDuration::seconds(1)).week_index_from(start),
            25
        );
    }

    #[test]
    fn leap_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2023));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2023, 2), 28);
    }

    #[test]
    fn validity() {
        assert!(CivilDate::new(2024, 2, 29).is_valid());
        assert!(!CivilDate::new(2023, 2, 29).is_valid());
        assert!(!CivilDate::new(2023, 13, 1).is_valid());
        assert!(!CivilDate::new(2023, 0, 1).is_valid());
        assert!(!CivilDate::new(2023, 4, 31).is_valid());
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_ymd_hms(2023, 9, 5, 14, 30, 9);
        assert_eq!(t.to_string(), "2023-09-05T14:30:09Z");
        assert_eq!(SimDuration::seconds(45).to_string(), "45s");
        assert_eq!(SimDuration::minutes(7).to_string(), "7m0s");
        assert_eq!(SimDuration::hours(3).to_string(), "3h0m");
        assert_eq!(SimDuration::days(2).to_string(), "2d0h");
        assert_eq!(SimDuration::seconds(-90).to_string(), "-1m30s");
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::minutes(90), SimDuration::seconds(5400));
        assert_eq!(SimDuration::hours(2), SimDuration::minutes(120));
        assert_eq!(SimDuration::days(1), SimDuration::hours(24));
        assert_eq!(SimDuration::weeks(1), SimDuration::days(7));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ymd(2022, 3, 1);
        assert_eq!(
            (t + SimDuration::days(1)).date(),
            CivilDate::new(2022, 3, 2)
        );
        assert_eq!(
            (t - SimDuration::days(1)).date(),
            CivilDate::new(2022, 2, 28)
        );
        assert_eq!(t + SimDuration::days(2) - t, SimDuration::days(2));
    }

    #[test]
    fn date_range_iterates_half_open() {
        let days: Vec<_> = date_range(CivilDate::new(2023, 12, 30), CivilDate::new(2024, 1, 2))
            .map(|d| d.to_string())
            .collect();
        assert_eq!(days, ["2023-12-30", "2023-12-31", "2024-01-01"]);
    }

    #[test]
    fn floor_day_truncates() {
        let t = SimTime::from_ymd_hms(2023, 9, 5, 23, 59, 59);
        assert_eq!(t.floor_day(), SimTime::from_ymd(2023, 9, 5));
    }
}
