//! A discrete-event queue with stable ordering.
//!
//! The measurement pipeline interleaves many periodic activities (API
//! polls, stream snapshots, daily crawls) with one-shot world events
//! (a stream going live, a victim paying). Events scheduled for the same
//! instant pop in insertion order, which keeps runs reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Pop the earliest event only if it fires at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t0 = SimTime::from_ymd(2023, 7, 24);
        q.schedule(t0 + SimDuration::minutes(30), "b");
        q.schedule(t0, "a");
        q.schedule(t0 + SimDuration::hours(2), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::EPOCH;
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        let t0 = SimTime::EPOCH;
        q.schedule(t0 + SimDuration::seconds(10), "later");
        assert!(q.pop_due(t0).is_none());
        assert!(q.pop_due(t0 + SimDuration::seconds(9)).is_none());
        assert_eq!(q.pop_due(t0 + SimDuration::seconds(10)).unwrap().1, "later");
        assert!(q.pop_due(t0 + SimDuration::hours(1)).is_none());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        q.schedule(SimTime::EPOCH, 1);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), 5);
        q.schedule(SimTime(1), 1);
        assert_eq!(q.pop().unwrap(), (SimTime(1), 1));
        q.schedule(SimTime(3), 3);
        q.schedule(SimTime(2), 2);
        assert_eq!(q.pop().unwrap(), (SimTime(2), 2));
        assert_eq!(q.pop().unwrap(), (SimTime(3), 3));
        assert_eq!(q.pop().unwrap(), (SimTime(5), 5));
    }
}
