//! Simulation substrate shared by every `givetake` crate.
//!
//! The paper's measurement pipeline is cadence-driven: search polls every
//! 30 minutes, chat polls every 7.5 minutes, two-second stream recordings,
//! daily crawls, weekly volume buckets. Reproducing its figures requires a
//! *virtual* clock that every simulator advances in lock-step, plus
//! deterministic randomness so a given seed regenerates every table
//! bit-for-bit.
//!
//! This crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — seconds-since-epoch timestamps with
//!   civil-calendar conversions (no `std::time` wall-clock involvement);
//! * [`Clock`] — a shared virtual clock;
//! * [`EventQueue`] — a discrete-event scheduler with stable FIFO ordering
//!   among simultaneous events;
//! * [`RngFactory`] — a labelled fan-out of deterministic RNG streams;
//! * [`dist`] — the heavy-tailed samplers (log-normal, Pareto, Zipf,
//!   Poisson) the world generator needs and that `rand` alone lacks.

pub mod clock;
pub mod dist;
pub mod events;
pub mod faults;
pub mod ids;
pub mod rng;
pub mod time;

pub use clock::Clock;
pub use events::EventQueue;
pub use faults::{
    ChaosProfile, CheckedCall, CircuitBreaker, DegradationStats, Denied, FaultDriver, FaultKind,
    FaultPlan, FaultWindow, Gated, RetryPolicy, Substrate,
};
pub use rng::RngFactory;
pub use time::{CivilDate, SimDuration, SimTime, Weekday};
