//! Property tests for the fault-injection layer: backoff shape, jitter
//! bounds, and schedule-generation invariants.

use gt_sim::faults::{ChaosProfile, FaultKind, FaultPlan, RetryPolicy, Substrate};
use gt_sim::{RngFactory, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn nominal_backoff_is_monotone_and_capped(
        base_secs in 1i64..60,
        cap_secs in 60i64..3_600,
        attempts in 2u32..12,
    ) {
        let policy = RetryPolicy {
            base: SimDuration::seconds(base_secs),
            cap: SimDuration::seconds(cap_secs),
            ..RetryPolicy::default()
        };
        let mut prev = SimDuration::ZERO;
        for attempt in 1..=attempts {
            let d = policy.nominal_backoff(attempt);
            prop_assert!(d >= prev, "backoff shrank at attempt {}", attempt);
            prop_assert!(d <= policy.cap);
            prop_assert!(d >= SimDuration::ZERO);
            prev = d;
        }
        // Doubling until the cap: attempt 1 is exactly the base.
        prop_assert_eq!(policy.nominal_backoff(1), policy.base.min(policy.cap));
    }

    #[test]
    fn jittered_backoff_stays_within_bounds(
        base_secs in 1i64..60,
        jitter in 0.0f64..1.0,
        attempt in 1u32..10,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy {
            base: SimDuration::seconds(base_secs),
            jitter,
            ..RetryPolicy::default()
        };
        let mut rng = RngFactory::new(seed).rng("jitter");
        let nominal = policy.nominal_backoff(attempt);
        for _ in 0..20 {
            let d = policy.backoff(attempt, &mut rng);
            prop_assert!(d >= nominal);
            // +1s absorbs integer-second rounding of the jitter factor.
            let ceiling = (nominal.as_seconds() as f64 * (1.0 + jitter)).ceil() as i64 + 1;
            prop_assert!(d.as_seconds() <= ceiling, "{} > {}", d.as_seconds(), ceiling);
        }
    }

    #[test]
    fn retry_delays_never_exceed_the_budget_by_more_than_one_step(
        base_secs in 1i64..30,
        budget_secs in 60i64..1_200,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy {
            base: SimDuration::seconds(base_secs),
            budget: SimDuration::seconds(budget_secs),
            max_attempts: 50,
            ..RetryPolicy::default()
        };
        let mut rng = RngFactory::new(seed).rng("budget");
        // Simulate the driver's retry loop: it gives up once the waited
        // total passes the budget, so the overshoot is at most one
        // (capped) delay.
        let mut waited = SimDuration::ZERO;
        let mut attempt = 1;
        while waited <= policy.budget && attempt < policy.max_attempts {
            waited = waited + policy.backoff(attempt, &mut rng);
            attempt += 1;
        }
        let cap_with_jitter =
            (policy.cap.as_seconds() as f64 * (1.0 + policy.jitter)).ceil() as i64 + 1;
        prop_assert!(waited.as_seconds() <= budget_secs + cap_with_jitter);
    }

    #[test]
    fn schedules_are_reproducible_from_the_seed(seed in any::<u64>(), months in 1i64..8) {
        let start = SimTime::from_ymd(2023, 7, 24);
        let end = start + SimDuration::days(30 * months);
        let a = FaultPlan::generate(seed, start, end, &ChaosProfile::default());
        let b = FaultPlan::generate(seed, start, end, &ChaosProfile::default());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn windows_are_sorted_disjoint_and_in_span(seed in any::<u64>(), months in 1i64..8) {
        let start = SimTime::from_ymd(2023, 7, 24);
        let end = start + SimDuration::days(30 * months);
        let plan = FaultPlan::generate(seed, start, end, &ChaosProfile::default());
        for sub in Substrate::ALL {
            let windows = plan.schedules.get(&sub).map(Vec::as_slice).unwrap_or(&[]);
            let mut prev_end = SimTime(i64::MIN);
            for w in windows {
                prop_assert!(w.start < w.end, "{sub}: empty or inverted window");
                prop_assert!(w.start >= start && w.end <= end, "{sub}: window outside span");
                prop_assert!(
                    w.start >= prev_end,
                    "{sub}: overlapping quota/fault windows"
                );
                prev_end = w.end;
            }
        }
    }

    #[test]
    fn stream_monitor_only_gets_outages(seed in any::<u64>()) {
        let start = SimTime::from_ymd(2023, 7, 24);
        let end = start + SimDuration::days(120);
        let plan = FaultPlan::generate(seed, start, end, &ChaosProfile::severe());
        let windows = plan
            .schedules
            .get(&Substrate::StreamMonitor)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        for w in windows {
            prop_assert_eq!(w.kind, FaultKind::Outage);
            // Outages model losing the tail of a monitoring window.
            prop_assert_eq!(w.end, end);
        }
    }

    #[test]
    fn window_lookup_agrees_with_linear_scan(seed in any::<u64>(), probe in 0i64..10_368_000) {
        let start = SimTime::from_ymd(2023, 7, 24);
        let end = start + SimDuration::days(120);
        let plan = FaultPlan::generate(seed, start, end, &ChaosProfile::severe());
        let t = start + SimDuration::seconds(probe);
        for sub in Substrate::ALL {
            let fast = plan.window_at(sub, t);
            let slow = plan
                .schedules
                .get(&sub)
                .and_then(|ws| ws.iter().find(|w| w.contains(t)));
            prop_assert_eq!(fast, slow, "{sub} at {probe}");
        }
    }
}

#[test]
fn quiet_plans_have_no_windows() {
    let plan = FaultPlan::quiet(1234);
    assert!(plan.is_quiet());
    for sub in Substrate::ALL {
        assert!(plan.fault_at(sub, SimTime(0)).is_none());
    }
}
