//! Property tests for the simulation substrate.

use gt_sim::{CivilDate, EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn date_round_trips(days in -20_000i64..40_000) {
        let t = SimTime(days * 86_400);
        let d = t.date();
        prop_assert!(d.is_valid());
        prop_assert_eq!(d.at_midnight(), t);
    }

    #[test]
    fn any_second_maps_into_its_day(secs in -1_000_000_000i64..2_000_000_000) {
        let t = SimTime(secs);
        let midnight = t.floor_day();
        prop_assert!(midnight <= t);
        prop_assert!((t - midnight).as_seconds() < 86_400);
        prop_assert_eq!(midnight.date(), t.date());
    }

    #[test]
    fn week_index_is_translation_invariant(
        offset_weeks in 0i64..200,
        within in 0i64..(7 * 86_400),
        start_days in -5_000i64..20_000,
    ) {
        let start = SimTime(start_days * 86_400);
        let t = start + SimDuration::weeks(offset_weeks) + SimDuration::seconds(within);
        prop_assert_eq!(t.week_index_from(start), offset_weeks);
    }

    #[test]
    fn civil_date_succ_is_strictly_increasing(days in -10_000i64..30_000) {
        let d = SimTime(days * 86_400).date();
        let next = d.succ();
        prop_assert!(next.at_midnight() - d.at_midnight() == SimDuration::days(1));
        prop_assert!(next.is_valid());
    }

    #[test]
    fn event_queue_pops_sorted(events in proptest::collection::vec((0i64..10_000, 0u32..100), 0..200)) {
        let mut q = EventQueue::new();
        for &(t, tag) in &events {
            q.schedule(SimTime(t), tag);
        }
        let mut last = i64::MIN;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.0 >= last);
            last = t.0;
            popped += 1;
        }
        prop_assert_eq!(popped, events.len());
    }

    #[test]
    fn zipf_samples_stay_in_range(n in 1usize..500, s in 0.1f64..2.5, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = gt_sim::dist::Zipf::new(n, s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let r = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&r));
        }
    }

    #[test]
    fn lognormal_is_positive(mu in -5.0f64..10.0, sigma in 0.0f64..3.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let d = gt_sim::dist::LogNormal::new(mu, sigma);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(d.sample(&mut rng) > 0.0);
        }
    }
}

#[test]
fn known_calendar_facts() {
    // The paper's windows.
    assert_eq!(
        (SimTime::from_ymd(2022, 7, 7) - SimTime::from_ymd(2022, 1, 1)).as_days(),
        187
    );
    assert_eq!(
        (SimTime::from_ymd(2024, 1, 22) - SimTime::from_ymd(2023, 7, 24)).as_days(),
        182
    );
    assert_eq!(
        CivilDate::new(2023, 12, 31).succ(),
        CivilDate::new(2024, 1, 1)
    );
}
