//! The paper's analysis pipeline.
//!
//! Everything in Sections 3–6 and the appendices, as a library:
//!
//! * [`validate`] — landing-page validation (valid address + scam
//!   keyword heuristics);
//! * [`datasets`] — Table 1 dataset assembly for both platforms;
//! * [`payments`] — co-occurrence payment isolation (Section 5.1–5.3
//!   funnels) and Table 2 revenue;
//! * [`timeline`] — weekly lure volume (Figures 3 and 4);
//! * [`discover`] — discoverability statistics (Section 4.2);
//! * [`currencies`] — coin targeting (Section 4.3);
//! * [`victims`] — conversion rates, payment origins, whale
//!   distribution (Section 5.4);
//! * [`scammers`] — recipient addresses, cluster sizes, cash-out
//!   categories (Section 5.5);
//! * [`fig5`] — search-keyword contribution (Appendix B.2);
//! * [`pipeline`] — end-to-end orchestration over a generated world;
//! * [`supervisor`] — stage-level recovery policies, quarantine, and
//!   the run-health report;
//! * [`report`] — the paper-vs-measured experiment report.

pub mod currencies;
pub mod datasets;
pub mod discover;
pub mod executor;
pub mod fig5;
pub mod interventions;
pub mod payments;
pub mod pipeline;
pub mod report;
pub mod scammers;
pub mod supervisor;
pub mod timeline;
pub mod validate;
pub mod victims;

pub use executor::{StageGraph, StageId, StageOutputs, StageResults, StageTiming, StageTimings};
pub use pipeline::{
    ChainAnalysis, DegradationReport, PaperRun, Pipeline, PipelineOptions, StageDegradation,
};
pub use report::PaperReport;
pub use supervisor::{GraphHealth, RunHealth, StageHealth, StageStatus, SupervisionPolicy};
