//! Intervention modelling (Section 6.2).
//!
//! The paper's discussion argues that centralized exchanges are the
//! most durable bottleneck: at least 58% of victims paid straight from
//! an exchange, and scammers cannot choose their victims' exchanges.
//! This module quantifies that intervention: if exchanges started
//! refusing transfers to a scam address some *detection lag* after the
//! address first appeared in a lure, how much victim loss is prevented?
//!
//! This goes beyond the paper's qualitative discussion — it is the
//! natural "future work" experiment the data supports.

use crate::payments::PaymentAnalysis;
use gt_addr::Address;
use gt_cluster::{Category, ClusterView, TagResolver};
use gt_sim::{SimDuration, SimTime};
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Outcome of one intervention configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct InterventionOutcome {
    /// Detection lag applied (seconds after an address's first observed
    /// payment that exchanges begin blocking).
    pub lag_seconds: i64,
    /// Victim payments in scope (final co-occurring).
    pub payments: usize,
    /// Payments that would have been blocked.
    pub blocked: usize,
    /// USD prevented.
    pub prevented_usd: f64,
    /// Total victim USD.
    pub total_usd: f64,
}

impl InterventionOutcome {
    /// Fraction of victim revenue prevented.
    pub fn prevented_fraction(&self) -> f64 {
        if self.total_usd == 0.0 {
            0.0
        } else {
            self.prevented_usd / self.total_usd
        }
    }
}

/// Simulate the exchange-side block-list intervention.
///
/// An address is assumed *reported* at its first observed victim
/// payment; `lag` later, every exchange refuses further transfers to
/// it. Only exchange-originated payments can be blocked — self-custody
/// victims are out of the exchanges' reach (which is exactly why the
/// paper calls this a bottleneck rather than a fix).
pub fn exchange_blocklist(
    analyses: &[&PaymentAnalysis],
    tags: &TagResolver,
    clustering: &ClusterView,
    lag: SimDuration,
) -> InterventionOutcome {
    // First observed payment time per recipient address.
    let mut first_seen: HashMap<Address, SimTime> = HashMap::new();
    for analysis in analyses {
        for p in analysis.victim_payments() {
            let entry = first_seen
                .entry(p.transfer.recipient)
                .or_insert(p.transfer.time);
            if p.transfer.time < *entry {
                *entry = p.transfer.time;
            }
        }
    }

    let mut outcome = InterventionOutcome {
        lag_seconds: lag.as_seconds(),
        payments: 0,
        blocked: 0,
        prevented_usd: 0.0,
        total_usd: 0.0,
    };
    for analysis in analyses {
        for p in analysis.victim_payments() {
            outcome.payments += 1;
            outcome.total_usd += p.usd;
            let blocked_from = first_seen[&p.transfer.recipient] + lag;
            let from_exchange = p
                .transfer
                .senders
                .iter()
                .any(|&s| tags.category(s, clustering) == Some(Category::Exchange));
            if from_exchange && p.transfer.time >= blocked_from {
                outcome.blocked += 1;
                outcome.prevented_usd += p.usd;
            }
        }
    }
    outcome
}

/// Sweep the intervention over several detection lags.
pub fn lag_sweep(
    analyses: &[&PaymentAnalysis],
    tags: &TagResolver,
    clustering: &ClusterView,
    lags: &[SimDuration],
) -> Vec<InterventionOutcome> {
    lags.iter()
        .map(|&lag| exchange_blocklist(analyses, tags, clustering, lag))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payments::{IsolatedPayment, PaymentFunnel, RevenueRow};
    use gt_addr::{BtcAddress, Coin};
    use gt_chain::{Amount, BtcLedger, Transfer, TxRef};
    use gt_cluster::TagService;

    fn addr(b: u8) -> Address {
        Address::Btc(BtcAddress::P2pkh([b; 20]))
    }

    fn payment(sender: u8, recipient: u8, usd: f64, t: i64) -> IsolatedPayment {
        IsolatedPayment {
            transfer: Transfer {
                tx: TxRef {
                    coin: Coin::Btc,
                    index: t as u64,
                },
                senders: vec![addr(sender)],
                recipient: addr(recipient),
                amount: Amount(1),
                time: SimTime(t),
            },
            domain: "d".into(),
            usd,
            co_occurring: true,
            from_known_scam: false,
        }
    }

    fn analysis(payments: Vec<IsolatedPayment>) -> PaymentAnalysis {
        PaymentAnalysis {
            payments,
            funnel: PaymentFunnel {
                domains_with_coin: 0,
                domains_paid: 0,
                distinct_addresses: 0,
                payments_any: 0,
                payments_co_occurring_raw: 0,
                consolidations_removed: 0,
                payments_final: 0,
            },
            revenue: RevenueRow::default(),
            degradation: Default::default(),
        }
    }

    fn setup_tags() -> (TagResolver, ClusterView) {
        let mut tags = TagService::new();
        tags.tag(addr(1), Category::Exchange); // sender 1 is an exchange
        let clustering = ClusterView::build(&BtcLedger::new());
        (tags.resolver(&clustering), clustering)
    }

    #[test]
    fn zero_lag_blocks_all_but_the_first_exchange_payment() {
        let (tags, clustering) = setup_tags();
        let a = analysis(vec![
            payment(1, 9, 100.0, 1_000), // first: defines detection, blocked at lag 0
            payment(1, 9, 200.0, 2_000), // blocked
            payment(2, 9, 400.0, 3_000), // self-custody: never blocked
        ]);
        let out = exchange_blocklist(&[&a], &tags, &clustering, SimDuration::ZERO);
        // With zero lag even the first payment is "blocked" (time >= first).
        assert_eq!(out.blocked, 2);
        assert_eq!(out.prevented_usd, 300.0);
        assert_eq!(out.total_usd, 700.0);
        assert!((out.prevented_fraction() - 300.0 / 700.0).abs() < 1e-12);
    }

    #[test]
    fn longer_lag_prevents_less() {
        let (tags, clustering) = setup_tags();
        let a = analysis(vec![
            payment(1, 9, 100.0, 0),
            payment(1, 9, 100.0, 3_600),
            payment(1, 9, 100.0, 86_400),
            payment(1, 9, 100.0, 7 * 86_400),
        ]);
        let sweep = lag_sweep(
            &[&a],
            &tags,
            &clustering,
            &[
                SimDuration::ZERO,
                SimDuration::hours(2),
                SimDuration::days(2),
                SimDuration::days(30),
            ],
        );
        assert_eq!(sweep[0].blocked, 4);
        assert_eq!(sweep[1].blocked, 2);
        assert_eq!(sweep[2].blocked, 1);
        assert_eq!(sweep[3].blocked, 0);
        for pair in sweep.windows(2) {
            assert!(pair[0].prevented_usd >= pair[1].prevented_usd, "monotone");
        }
    }

    #[test]
    fn self_custody_payments_cap_the_intervention() {
        let (tags, clustering) = setup_tags();
        // All payments from self-custody wallets: nothing preventable.
        let a = analysis(vec![payment(2, 9, 500.0, 0), payment(3, 9, 500.0, 10)]);
        let out = exchange_blocklist(&[&a], &tags, &clustering, SimDuration::ZERO);
        assert_eq!(out.blocked, 0);
        assert_eq!(out.prevented_fraction(), 0.0);
    }
}
