//! End-to-end orchestration: run the paper's entire measurement and
//! analysis pipeline over a generated world.

use crate::datasets::{build_twitter_dataset, build_youtube_dataset, Table1};
use crate::payments::{analyze_twitter, analyze_youtube, PaymentAnalysis};
use crate::report::{PaperReport, QrPilotSummary, TwitchSummary};
use crate::timeline::WeeklySeries;
use crate::{currencies, discover, fig5, scammers, victims};
use gt_addr::Address;
use gt_cluster::Clustering;
use gt_sim::SimDuration;
use gt_stream::keywords::search_keyword_set;
use gt_stream::monitor::{Monitor, MonitorConfig, MonitorReport};
use gt_stream::pilot::{qr_persistence, qr_stats};
use gt_stream::twitch::run_twitch_pilot;
use gt_world::World;
use std::collections::{HashMap, HashSet};

/// Everything the pipeline produced (intermediates kept for deeper
/// inspection; the summary lives in [`PaperReport`]).
pub struct PaperRun {
    pub report: PaperReport,
    pub twitter_dataset: crate::datasets::TwitterDataset,
    pub youtube_dataset: crate::datasets::YouTubeDataset,
    pub monitor_report: MonitorReport,
    pub pilot_report: MonitorReport,
    pub twitter_analysis: PaymentAnalysis,
    pub youtube_analysis: PaymentAnalysis,
}

/// Run the full pipeline.
pub fn run_paper_pipeline(world: &World) -> PaperRun {
    let keywords = search_keyword_set();
    let config = &world.config;

    // ---- Twitter (retrospective) ----
    let twitter_dataset = build_twitter_dataset(&world.twitter, &world.scam_db);

    // ---- Pilot study (prospective) ----
    let pilot_monitor = Monitor::new(
        MonitorConfig::paper(config.pilot_start, config.pilot_end),
        search_keyword_set(),
    );
    let pilot_report = pilot_monitor.run(&world.youtube, &world.web);

    // ---- Main YouTube window (prospective) ----
    let monitor = Monitor::new(
        MonitorConfig::paper(config.youtube_start, config.youtube_end),
        search_keyword_set(),
    );
    let monitor_report = monitor.run(&world.youtube, &world.web);
    let youtube_dataset = build_youtube_dataset(&monitor_report, &keywords);

    // ---- blockchain analysis ----
    let mut clustering = Clustering::build(&world.chains.btc);
    // Known scam addresses: everything the two datasets identified.
    let mut known_scam: HashSet<Address> = HashSet::new();
    for d in &twitter_dataset.domains {
        known_scam.extend(d.addresses.iter().copied());
    }
    for d in &youtube_dataset.domains {
        known_scam.extend(d.validation.addresses.iter().copied());
    }

    let twitter_analysis = analyze_twitter(
        &twitter_dataset,
        &world.chains,
        &world.prices,
        &world.tags,
        &mut clustering,
        &known_scam,
    );
    let youtube_analysis = analyze_youtube(
        &youtube_dataset,
        &world.chains,
        &world.prices,
        &world.tags,
        &mut clustering,
        &known_scam,
    );

    // ---- Section 4: lures ----
    let twitter_weekly = WeeklySeries::build(
        config.twitter_start,
        config.twitter_end,
        twitter_dataset
            .domains
            .iter()
            .flat_map(|d| d.tweet_times.iter().map(|&t| (t, 0u64))),
    );
    let observed: HashMap<_, _> = monitor_report
        .streams
        .iter()
        .map(|s| (s.stream, s))
        .collect();
    let youtube_weekly = WeeklySeries::build(
        config.youtube_start,
        config.youtube_end,
        youtube_dataset.scam_streams.iter().filter_map(|sid| {
            observed
                .get(sid)
                .map(|obs| (obs.first_seen, obs.max_total_views))
        }),
    );

    let twitter_discover = discover::twitter_discoverability(&twitter_dataset, &world.twitter);
    let youtube_discover =
        discover::youtube_discoverability(&youtube_dataset, &monitor_report, &keywords);
    let twitter_coins = currencies::twitter_coin_rates(&twitter_dataset, &world.twitter);
    let youtube_coins = currencies::youtube_coin_rates(&youtube_dataset, &monitor_report);

    // ---- Section 5.4: victims ----
    let total_views: u64 = youtube_dataset
        .scam_streams
        .iter()
        .filter_map(|sid| observed.get(sid).map(|o| o.max_total_views))
        .sum();
    let twitter_conversions =
        victims::conversions(&twitter_analysis, twitter_dataset.tweet_count as u64);
    let youtube_conversions = victims::conversions(&youtube_analysis, total_views);
    let origins = victims::payment_origins(
        &[&twitter_analysis, &youtube_analysis],
        &world.tags,
        &mut clustering,
    );
    let twitter_whales = victims::whale_distribution(&twitter_analysis);
    let youtube_whales = victims::whale_distribution(&youtube_analysis);

    // ---- Section 5.5: scammers ----
    let recipients = scammers::recipient_stats(
        &[&twitter_analysis, &youtube_analysis],
        &mut clustering,
    );
    let outgoing = scammers::outgoing_stats(
        &[&twitter_analysis, &youtube_analysis],
        &world.chains,
        &world.tags,
        &mut clustering,
    );

    // ---- Appendix B ----
    let persistences = qr_persistence(&pilot_report, SimDuration::seconds(450));
    let qr_pilot = qr_stats(&persistences).map(|s| QrPilotSummary {
        tracked: s.tracked,
        mean_seconds: s.mean_seconds,
        median_seconds: s.median_seconds,
        intermittent: s.intermittent,
    });
    let twitch_report = run_twitch_pilot(&world.twitch, config.pilot_start, config.pilot_end);
    let twitch = TwitchSummary {
        streams_listed: twitch_report.streams_listed,
        candidates: twitch_report.candidates,
        scams_found: twitch_report.qr_hits,
    };
    let fig5 = fig5::keyword_contribution(&pilot_report, &keywords);

    // ---- Section 6.2 extension: exchange-side intervention sweep ----
    let interventions = crate::interventions::lag_sweep(
        &[&twitter_analysis, &youtube_analysis],
        &world.tags,
        &mut clustering,
        &[
            SimDuration::ZERO,
            SimDuration::hours(1),
            SimDuration::hours(8),
            SimDuration::days(1),
            SimDuration::days(3),
            SimDuration::days(7),
        ],
    );

    let report = PaperReport {
        table1: Table1::new(&twitter_dataset, &youtube_dataset),
        twitter_revenue: twitter_analysis.revenue,
        youtube_revenue: youtube_analysis.revenue,
        twitter_funnel: twitter_analysis.funnel,
        youtube_funnel: youtube_analysis.funnel,
        twitter_weekly,
        youtube_weekly,
        twitter_discover,
        youtube_discover,
        twitter_coins,
        youtube_coins,
        twitter_conversions,
        youtube_conversions,
        origins,
        twitter_whales,
        youtube_whales,
        recipients,
        twitter_recipients: scammers::distinct_recipients(&twitter_analysis),
        youtube_recipients: scammers::distinct_recipients(&youtube_analysis),
        outgoing,
        qr_pilot,
        twitch,
        fig5,
        interventions,
    };

    PaperRun {
        report,
        twitter_dataset,
        youtube_dataset,
        monitor_report,
        pilot_report,
        twitter_analysis,
        youtube_analysis,
    }
}
