//! End-to-end orchestration: run the paper's entire measurement and
//! analysis pipeline over a generated world.
//!
//! The pipeline is expressed as a dependency DAG of stages executed by
//! [`StageGraph`](crate::executor::StageGraph) on a scoped worker pool:
//!
//! ```text
//! twitter_dataset ─┬────────────────────────────┬─▶ twitter_payments ─┬─▶ victims/scammers
//! pilot_monitor ───┼─▶ qr_pilot, fig5           │                     │   interventions
//! main_monitor ────┼─▶ youtube_dataset ─┬───────┴─▶ youtube_payments ─┘
//! chain_analysis ──┴─────────────────────┴─▶ (cluster view + tag resolver shared by &ref)
//! ```
//!
//! Entry point: [`Pipeline::new`], configured by [`PipelineOptions`].
//! Results are identical for any `threads` value; the executor's
//! [`StageTimings`] land in [`PaperRun::timings`] (never inside
//! [`PaperReport`], which stays byte-identical across thread counts).

use crate::datasets::{build_twitter_dataset, build_youtube_dataset, Table1};
use crate::executor::{StageGraph, StageTimings};
use crate::payments::{analyze_twitter, analyze_youtube, PaymentAnalysis};
use crate::report::{PaperReport, QrPilotSummary, TwitchSummary};
use crate::supervisor::{RunHealth, SupervisionPolicy};
use crate::timeline::WeeklySeries;
use crate::{currencies, discover, fig5, scammers, victims};
use gt_addr::Address;
use gt_chain::RpcView;
use gt_cluster::{ClusterView, ClusteringOptions, TagResolver};
use gt_obs::{MetricsRegistry, TelemetrySnapshot};
use gt_sim::faults::{ChaosProfile, DegradationStats, FaultPlan, RetryPolicy};
use gt_sim::{SimDuration, SimTime};
use gt_store::{Digest, KeyBuilder, RunStore, StoreDecode, StoreEncode};
use gt_stream::keywords::search_keyword_set;
use gt_stream::monitor::{Monitor, MonitorConfig, MonitorReport};
use gt_stream::pilot::{qr_persistence, qr_stats};
use gt_stream::twitch::{run_twitch_pilot_observed, TwitchPilotReport};
use gt_world::{World, WorldConfig};
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Tuning knobs for a pipeline run.
///
/// `#[non_exhaustive]` so new knobs can land without breaking callers:
/// construct via [`PipelineOptions::default`] and chain the fluent
/// setters —
/// `PipelineOptions::default().threads(8).chaos(seed, &profile).telemetry(true)`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PipelineOptions {
    /// Worker threads for the stage executor and the sharded cluster
    /// build. `0` means the machine's available parallelism.
    pub threads: usize,
    /// Skip the prospective pilot study (the pilot monitor window, QR
    /// persistence, and the Figure 5 keyword attribution). The Twitch
    /// pilot still runs — it is independent and cheap.
    pub skip_pilot: bool,
    /// Skip the Section 6.2 exchange-intervention lag sweep.
    pub skip_interventions: bool,
    /// Detection lags for the intervention sweep.
    pub intervention_lags: Vec<SimDuration>,
    /// Fault schedule every substrate consults; `None` runs clean.
    /// The clean run is byte-identical to pre-fault-layer behavior.
    /// Takes precedence over [`PipelineOptions::chaos`].
    pub fault_plan: Option<FaultPlan>,
    /// Generate a fault plan from `(seed, profile)` over the world's
    /// measurement span at run time. Ignored when an explicit
    /// [`PipelineOptions::fault_plan`] is set.
    pub chaos: Option<(u64, ChaosProfile)>,
    /// Retry/backoff policy for fault-gated calls.
    pub retry: RetryPolicy,
    /// Collect deterministic metrics and wall-clock spans into
    /// [`PaperRun::telemetry`] (on by default; cheap enough for
    /// every run — see the gt-bench overhead guard).
    pub telemetry: bool,
    /// Stage-result store: every stage probes it before computing and
    /// persists its output after. `None` (the default) computes
    /// everything in-process. The report is byte-identical either way —
    /// the store only changes *whether* a stage runs, never what it
    /// yields.
    pub store: Option<Arc<RunStore>>,
    /// How the run treats a panicking stage. The default
    /// ([`SupervisionPolicy::strict`]) preserves poison semantics: the
    /// first stage panic aborts the run. [`SupervisionPolicy::recover`]
    /// retries, then quarantines the stage behind its declared fallback
    /// and reports the damage through [`PaperRun::health`]. Deliberately
    /// excluded from [`PipelineOptions::base_fingerprint`]: supervision
    /// never changes what a healthy stage computes, so supervised and
    /// strict runs share cache entries.
    pub supervision: SupervisionPolicy,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            threads: 0,
            skip_pilot: false,
            skip_interventions: false,
            intervention_lags: vec![
                SimDuration::ZERO,
                SimDuration::hours(1),
                SimDuration::hours(8),
                SimDuration::days(1),
                SimDuration::days(3),
                SimDuration::days(7),
            ],
            fault_plan: None,
            chaos: None,
            retry: RetryPolicy::default(),
            telemetry: true,
            store: None,
            supervision: SupervisionPolicy::strict(),
        }
    }
}

impl PipelineOptions {
    /// Set the worker-thread count (0 = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Skip the pilot study.
    pub fn skip_pilot(mut self, skip: bool) -> Self {
        self.skip_pilot = skip;
        self
    }

    /// Skip the intervention lag sweep.
    pub fn skip_interventions(mut self, skip: bool) -> Self {
        self.skip_interventions = skip;
        self
    }

    /// Use custom detection lags for the intervention sweep.
    pub fn intervention_lags(mut self, lags: &[SimDuration]) -> Self {
        self.intervention_lags = lags.to_vec();
        self
    }

    /// Attach (or clear) an explicit fault plan.
    pub fn fault_plan(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Request a generated fault plan: seeded from `seed` with rates
    /// from `profile`, spanning the world's measurement window (the
    /// span itself is only known at [`Pipeline::run`] time).
    pub fn chaos(mut self, seed: u64, profile: &ChaosProfile) -> Self {
        self.chaos = Some((seed, *profile));
        self
    }

    /// Override the retry/backoff policy used under faults.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enable or disable telemetry collection.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Attach (or clear) a stage-result store.
    pub fn store(mut self, store: Option<Arc<RunStore>>) -> Self {
        self.store = store;
        self
    }

    /// Set the supervision policy for the run.
    pub fn supervise(mut self, policy: SupervisionPolicy) -> Self {
        self.supervision = policy;
        self
    }

    /// The run's base cache fingerprint for a given world config: a
    /// digest over everything run-global that stage outputs can depend
    /// on — the config, the *resolved* fault plan, the retry policy,
    /// and the telemetry flag (telemetry changes the degradation
    /// accounting embedded in cached payloads). The thread count is
    /// deliberately absent: results are thread-invariant, so runs at
    /// different parallelism share cache entries.
    pub fn base_fingerprint(&self, config: &WorldConfig) -> Digest {
        let plan = self.resolve_fault_plan(config);
        let mut kb = KeyBuilder::new("base");
        kb.push_encoded(config);
        kb.push_encoded(&plan);
        kb.push_encoded(&self.retry);
        kb.push_bytes(&[self.telemetry as u8]);
        kb.finish()
    }

    /// The fault plan the run will actually use: an explicit plan wins;
    /// otherwise a chaos request generates one over the measurement
    /// span, extended past the end of collection so the RPC backfill
    /// reads (whose virtual cursor starts at `youtube_end`) have a
    /// fault surface too.
    fn resolve_fault_plan(&self, config: &WorldConfig) -> Option<FaultPlan> {
        self.fault_plan.clone().or_else(|| {
            self.chaos.as_ref().map(|(seed, profile)| {
                let span_start = config.twitter_start.min(config.pilot_start);
                let span_end = config.twitter_end.max(config.youtube_end) + SimDuration::days(14);
                FaultPlan::generate(*seed, span_start, span_end, profile)
            })
        })
    }
}

/// One stage's injected-fault accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StageDegradation {
    pub stage: String,
    pub stats: DegradationStats,
}

/// Degradation accounting for a whole run: what each fault-gated stage
/// lost, retried and recovered. Surfaced through [`PaperRun`] and the
/// experiments JSON — never through [`PaperReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct DegradationReport {
    /// Whether a fault plan was attached to the run.
    pub enabled: bool,
    pub stages: Vec<StageDegradation>,
    pub total: DegradationStats,
}

impl DegradationReport {
    fn push(&mut self, stage: &str, stats: DegradationStats) {
        self.total.merge(&stats);
        self.stages.push(StageDegradation {
            stage: stage.to_string(),
            stats,
        });
    }
}

/// The frozen blockchain analysis shared (by reference) across stages.
#[derive(Debug, StoreEncode, StoreDecode)]
pub struct ChainAnalysis {
    pub view: ClusterView,
    pub resolver: TagResolver,
}

/// Everything the pipeline produced (intermediates kept for deeper
/// inspection; the summary lives in [`PaperReport`]).
pub struct PaperRun {
    pub report: PaperReport,
    pub twitter_dataset: crate::datasets::TwitterDataset,
    pub youtube_dataset: crate::datasets::YouTubeDataset,
    pub monitor_report: MonitorReport,
    pub pilot_report: MonitorReport,
    pub twitter_analysis: PaymentAnalysis,
    pub youtube_analysis: PaymentAnalysis,
    /// Per-stage wall times and item counts for this run.
    pub timings: StageTimings,
    /// Injected-fault accounting (all zero / disabled on clean runs).
    pub degradation: DegradationReport,
    /// Deterministic metrics plus wall-clock spans (disabled/empty when
    /// [`PipelineOptions::telemetry`] is off). Like `timings`, this
    /// never feeds [`PaperReport`].
    pub telemetry: TelemetrySnapshot,
    /// Supervision outcome: attempts, retries, quarantined/tainted
    /// stages, the report tables they degrade, and operator warnings
    /// (failed cache writes included). Deterministic — derived from the
    /// fault plan and the graph, never from wall-clock — and, like
    /// `timings`, never part of [`PaperReport`].
    pub health: RunHealth,
}

/// Builder for a pipeline run over one generated world.
pub struct Pipeline<'w> {
    world: &'w World,
    options: PipelineOptions,
}

impl<'w> Pipeline<'w> {
    pub fn new(world: &'w World) -> Self {
        Pipeline {
            world,
            options: PipelineOptions::default(),
        }
    }

    /// Replace the whole option set.
    pub fn options(mut self, options: PipelineOptions) -> Self {
        self.options = options;
        self
    }

    /// Set the worker-thread count (0 = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.options = self.options.threads(threads);
        self
    }

    /// Skip the pilot study.
    pub fn skip_pilot(mut self, skip: bool) -> Self {
        self.options = self.options.skip_pilot(skip);
        self
    }

    /// Skip the intervention lag sweep.
    pub fn skip_interventions(mut self, skip: bool) -> Self {
        self.options = self.options.skip_interventions(skip);
        self
    }

    /// Use custom detection lags for the intervention sweep.
    pub fn intervention_lags(mut self, lags: &[SimDuration]) -> Self {
        self.options = self.options.intervention_lags(lags);
        self
    }

    /// Attach (or clear) a fault plan.
    pub fn fault_plan(mut self, plan: Option<FaultPlan>) -> Self {
        self.options = self.options.fault_plan(plan);
        self
    }

    /// Override the retry/backoff policy used under faults.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.options = self.options.retry(retry);
        self
    }

    /// Enable or disable telemetry collection.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.options = self.options.telemetry(enabled);
        self
    }

    /// Attach a fault plan generated from `seed` and `profile` over the
    /// world's full measurement span, extended past the end of
    /// collection so the RPC backfill reads (whose virtual cursor
    /// starts at `youtube_end`) have a fault surface too.
    pub fn chaos(mut self, seed: u64, profile: &ChaosProfile) -> Self {
        self.options = self.options.chaos(seed, profile);
        self
    }

    /// Attach (or clear) a stage-result store.
    pub fn store(mut self, store: Option<Arc<RunStore>>) -> Self {
        self.options = self.options.store(store);
        self
    }

    /// Set the supervision policy for the run.
    pub fn supervise(mut self, policy: SupervisionPolicy) -> Self {
        self.options = self.options.supervise(policy);
        self
    }

    /// Run the full pipeline.
    pub fn run(&self) -> PaperRun {
        let world = self.world;
        let config = &world.config;
        let threads = if self.options.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.options.threads
        };
        let skip_pilot = self.options.skip_pilot;
        let skip_interventions = self.options.skip_interventions;
        let lags = self.options.intervention_lags.clone();
        let plan = self.options.resolve_fault_plan(config);
        let retry = self.options.retry;
        let obs = if self.options.telemetry {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        };
        // RPC backfill reads start once collection has finished.
        let rpc_epoch = config.youtube_end;

        let mut g = StageGraph::new();
        if let Some(store) = self.options.store.clone() {
            let base = self.options.base_fingerprint(config);
            g.bind_store(store, base);
        }
        g.supervise(self.options.supervision);

        // ---- independent roots: datasets, monitors, chain analysis ----
        let twitter_ds = g.add_cached_stage_with_items("twitter_dataset", &[], &[], move |_| {
            let ds = build_twitter_dataset(&world.twitter, &world.scam_db);
            let domains = ds.domains.len() as u64;
            (ds, domains)
        });

        let pilot_plan = plan.clone();
        let pilot_sink = obs.sink("pilot_monitor");
        let pilot =
            g.add_cached_stage_with_items("pilot_monitor", &[skip_pilot as u8], &[], move |_| {
                if skip_pilot {
                    return (MonitorReport::default(), 0);
                }
                let mut cfg = MonitorConfig::paper(config.pilot_start, config.pilot_end);
                cfg.fault_plan = pilot_plan.clone();
                cfg.retry = retry;
                cfg.sink = pilot_sink.clone();
                let monitor = Monitor::new(cfg, search_keyword_set());
                let report = monitor.run(&world.youtube, &world.web);
                let streams = report.streams.len() as u64;
                (report, streams)
            });

        let monitor_plan = plan.clone();
        let monitor_sink = obs.sink("main_monitor");
        let main_monitor = g.add_cached_stage_with_items("main_monitor", &[], &[], move |_| {
            let mut cfg = MonitorConfig::paper(config.youtube_start, config.youtube_end);
            cfg.fault_plan = monitor_plan.clone();
            cfg.retry = retry;
            cfg.sink = monitor_sink.clone();
            let monitor = Monitor::new(cfg, search_keyword_set());
            let report = monitor.run(&world.youtube, &world.web);
            let streams = report.streams.len() as u64;
            (report, streams)
        });

        let chain_sink = obs.sink("chain_analysis");
        let chain = g.add_cached_stage_with_items("chain_analysis", &[], &[], move |_| {
            let view = {
                let _span = chain_sink.span("cluster.build");
                ClusterView::build_par(&world.chains.btc, ClusteringOptions::default(), threads)
            };
            let resolver = {
                let _span = chain_sink.span("tags.resolve");
                world.tags.resolver(&view)
            };
            let txs = world.chains.btc.tx_count();
            chain_sink.counter_add("cluster", "transactions", txs);
            chain_sink.counter_add("cluster", "clusters", view.cluster_count() as u64);
            (ChainAnalysis { view, resolver }, txs)
        });

        let twitch_plan = plan.clone();
        let twitch_sink = obs.sink("twitch_pilot");
        let twitch = g.add_cached_stage("twitch_pilot", &[], &[], move |_| {
            run_twitch_pilot_observed(
                &world.twitch,
                config.pilot_start,
                config.pilot_end,
                twitch_plan.as_ref(),
                retry,
                twitch_sink.clone(),
            )
        });

        // ---- dataset assembly and the known-scam address set ----
        let youtube_ds = g.add_cached_stage_with_items(
            "youtube_dataset",
            &[],
            &[main_monitor.index()],
            move |r| {
                let ds = build_youtube_dataset(r.get(main_monitor), &search_keyword_set());
                let domains = ds.domains.len() as u64;
                (ds, domains)
            },
        );

        let known_scam = g.add_cached_stage(
            "known_scam_addresses",
            &[],
            &[twitter_ds.index(), youtube_ds.index()],
            move |r| {
                let mut known: HashSet<Address> = HashSet::new();
                for d in &r.get(twitter_ds).domains {
                    known.extend(d.addresses.iter().copied());
                }
                for d in &r.get(youtube_ds).domains {
                    known.extend(d.validation.addresses.iter().copied());
                }
                known
            },
        );

        // ---- per-platform payment isolation (Sections 5.1–5.3) ----
        let twitter_plan = plan.clone();
        let twitter_sink = obs.sink("twitter_payments");
        let twitter_an = g.add_cached_stage_with_items(
            "twitter_payments",
            &[],
            &[twitter_ds.index(), chain.index(), known_scam.index()],
            move |r| {
                let ca = r.get(chain);
                // The RPC facade is engaged whenever it has work to do:
                // a fault plan to consult or telemetry to report. A
                // clean RpcView serves identical data, so the report is
                // unchanged either way.
                let analysis = if twitter_plan.is_some() || twitter_sink.enabled() {
                    let rpc = RpcView::observed(
                        &world.chains,
                        twitter_plan.as_ref(),
                        "rpc.twitter",
                        retry,
                        rpc_epoch,
                        twitter_sink.clone(),
                    );
                    let mut a = analyze_twitter(
                        r.get(twitter_ds),
                        &rpc,
                        &world.prices,
                        &ca.resolver,
                        &ca.view,
                        r.get(known_scam),
                    );
                    a.degradation = rpc.stats();
                    a
                } else {
                    analyze_twitter(
                        r.get(twitter_ds),
                        &world.chains,
                        &world.prices,
                        &ca.resolver,
                        &ca.view,
                        r.get(known_scam),
                    )
                };
                let payments = analysis.funnel.payments_any as u64;
                (analysis, payments)
            },
        );

        let youtube_plan = plan.clone();
        let youtube_sink = obs.sink("youtube_payments");
        let youtube_an = g.add_cached_stage_with_items(
            "youtube_payments",
            &[],
            &[youtube_ds.index(), chain.index(), known_scam.index()],
            move |r| {
                let ca = r.get(chain);
                let analysis = if youtube_plan.is_some() || youtube_sink.enabled() {
                    let rpc = RpcView::observed(
                        &world.chains,
                        youtube_plan.as_ref(),
                        "rpc.youtube",
                        retry,
                        rpc_epoch,
                        youtube_sink.clone(),
                    );
                    let mut a = analyze_youtube(
                        r.get(youtube_ds),
                        &rpc,
                        &world.prices,
                        &ca.resolver,
                        &ca.view,
                        r.get(known_scam),
                    );
                    a.degradation = rpc.stats();
                    a
                } else {
                    analyze_youtube(
                        r.get(youtube_ds),
                        &world.chains,
                        &world.prices,
                        &ca.resolver,
                        &ca.view,
                        r.get(known_scam),
                    )
                };
                let payments = analysis.funnel.payments_any as u64;
                (analysis, payments)
            },
        );

        // ---- Section 4: lures ----
        let twitter_weekly =
            g.add_cached_stage("twitter_weekly", &[], &[twitter_ds.index()], move |r| {
                WeeklySeries::build(
                    config.twitter_start,
                    config.twitter_end,
                    r.get(twitter_ds)
                        .domains
                        .iter()
                        .flat_map(|d| d.tweet_times.iter().map(|&t| (t, 0u64))),
                )
            });

        let youtube_weekly = g.add_cached_stage(
            "youtube_weekly",
            &[],
            &[youtube_ds.index(), main_monitor.index()],
            move |r| {
                let observed: HashMap<_, _> = r
                    .get(main_monitor)
                    .streams
                    .iter()
                    .map(|s| (s.stream, s))
                    .collect();
                WeeklySeries::build(
                    config.youtube_start,
                    config.youtube_end,
                    r.get(youtube_ds).scam_streams.iter().filter_map(|sid| {
                        observed
                            .get(sid)
                            .map(|obs| (obs.first_seen, obs.max_total_views))
                    }),
                )
            },
        );

        let twitter_discover =
            g.add_cached_stage("twitter_discover", &[], &[twitter_ds.index()], move |r| {
                discover::twitter_discoverability(r.get(twitter_ds), &world.twitter)
            });
        let youtube_discover = g.add_cached_stage(
            "youtube_discover",
            &[],
            &[youtube_ds.index(), main_monitor.index()],
            move |r| {
                discover::youtube_discoverability(
                    r.get(youtube_ds),
                    r.get(main_monitor),
                    &search_keyword_set(),
                )
            },
        );
        let twitter_coins =
            g.add_cached_stage("twitter_coins", &[], &[twitter_ds.index()], move |r| {
                currencies::twitter_coin_rates(r.get(twitter_ds), &world.twitter)
            });
        let youtube_coins = g.add_cached_stage(
            "youtube_coins",
            &[],
            &[youtube_ds.index(), main_monitor.index()],
            move |r| currencies::youtube_coin_rates(r.get(youtube_ds), r.get(main_monitor)),
        );

        // ---- Section 5.4: victims ----
        let twitter_conversions = g.add_cached_stage(
            "twitter_conversions",
            &[],
            &[twitter_an.index(), twitter_ds.index()],
            move |r| victims::conversions(r.get(twitter_an), r.get(twitter_ds).tweet_count as u64),
        );
        let youtube_conversions = g.add_cached_stage(
            "youtube_conversions",
            &[],
            &[youtube_an.index(), youtube_ds.index(), main_monitor.index()],
            move |r| {
                let observed: HashMap<_, _> = r
                    .get(main_monitor)
                    .streams
                    .iter()
                    .map(|s| (s.stream, s))
                    .collect();
                let total_views: u64 = r
                    .get(youtube_ds)
                    .scam_streams
                    .iter()
                    .filter_map(|sid| observed.get(sid).map(|o| o.max_total_views))
                    .sum();
                victims::conversions(r.get(youtube_an), total_views)
            },
        );
        let origins = g.add_cached_stage(
            "payment_origins",
            &[],
            &[twitter_an.index(), youtube_an.index(), chain.index()],
            move |r| {
                let ca = r.get(chain);
                victims::payment_origins(
                    &[r.get(twitter_an), r.get(youtube_an)],
                    &ca.resolver,
                    &ca.view,
                )
            },
        );
        let twitter_whales =
            g.add_cached_stage("twitter_whales", &[], &[twitter_an.index()], move |r| {
                victims::whale_distribution(r.get(twitter_an))
            });
        let youtube_whales =
            g.add_cached_stage("youtube_whales", &[], &[youtube_an.index()], move |r| {
                victims::whale_distribution(r.get(youtube_an))
            });

        // ---- Section 5.5: scammers ----
        let recipients = g.add_cached_stage(
            "recipient_stats",
            &[],
            &[twitter_an.index(), youtube_an.index(), chain.index()],
            move |r| {
                scammers::recipient_stats(
                    &[r.get(twitter_an), r.get(youtube_an)],
                    &r.get(chain).view,
                )
            },
        );
        let outgoing_plan = plan.clone();
        let outgoing_sink = obs.sink("outgoing_stats");
        let outgoing = g.add_cached_stage(
            "outgoing_stats",
            &[],
            &[twitter_an.index(), youtube_an.index(), chain.index()],
            move |r| {
                let ca = r.get(chain);
                let analyses = [r.get(twitter_an), r.get(youtube_an)];
                if outgoing_plan.is_some() || outgoing_sink.enabled() {
                    let rpc = RpcView::observed(
                        &world.chains,
                        outgoing_plan.as_ref(),
                        "rpc.outgoing",
                        retry,
                        rpc_epoch,
                        outgoing_sink.clone(),
                    );
                    let stats = scammers::outgoing_stats(&analyses, &rpc, &ca.resolver, &ca.view);
                    (stats, rpc.stats())
                } else {
                    let stats =
                        scammers::outgoing_stats(&analyses, &world.chains, &ca.resolver, &ca.view);
                    (stats, DegradationStats::default())
                }
            },
        );

        // ---- Appendix B ----
        let qr_pilot = g.add_cached_stage("qr_pilot", &[], &[pilot.index()], move |r| {
            let persistences = qr_persistence(r.get(pilot), SimDuration::seconds(450));
            qr_stats(&persistences).map(|s| QrPilotSummary {
                tracked: s.tracked,
                mean_seconds: s.mean_seconds,
                median_seconds: s.median_seconds,
                intermittent: s.intermittent,
            })
        });
        let fig5 = g.add_cached_stage("fig5_keywords", &[], &[pilot.index()], move |r| {
            fig5::keyword_contribution(r.get(pilot), &search_keyword_set())
        });

        // ---- Section 6.2 extension: exchange-side intervention sweep ----
        // The sweep's knobs are stage-local (not in the base
        // fingerprint, not visible in any dependency output), so they
        // go into the stage salt.
        let interventions_salt = gt_store::encode_to_vec(&(skip_interventions, &lags));
        let interventions = g.add_cached_stage_with_items(
            "interventions",
            &interventions_salt,
            &[twitter_an.index(), youtube_an.index(), chain.index()],
            move |r| {
                if skip_interventions {
                    return (Vec::new(), 0);
                }
                let ca = r.get(chain);
                let sweep = crate::interventions::lag_sweep(
                    &[r.get(twitter_an), r.get(youtube_an)],
                    &ca.resolver,
                    &ca.view,
                    &lags,
                );
                let n = sweep.len() as u64;
                (sweep, n)
            },
        );

        // ---- quarantine fallbacks (used only under a recovering
        // supervision policy) ----
        //
        // Every stage declares the least-wrong output it can stand in
        // with: empty datasets and analyses for producers, a no-tag /
        // no-cluster view for the chain analysis, zeroed series and
        // statistics for the report tables. A quarantined stage's
        // dependents still run — over visibly empty inputs — and the
        // affected tables are named in `RunHealth::degraded_tables`
        // instead of the whole run aborting.
        g.fallback(twitter_ds, |_| crate::datasets::TwitterDataset::default());
        g.fallback(pilot, |_| MonitorReport::default());
        g.fallback(main_monitor, |_| MonitorReport::default());
        g.fallback(chain, |_| ChainAnalysis {
            view: ClusterView::empty(),
            resolver: TagResolver::empty(),
        });
        g.fallback(twitch, |_| TwitchPilotReport::default());
        g.fallback(youtube_ds, |_| crate::datasets::YouTubeDataset::default());
        g.fallback(known_scam, |_| HashSet::new());
        g.fallback(twitter_an, |_| PaymentAnalysis::default());
        g.fallback(youtube_an, |_| PaymentAnalysis::default());
        g.fallback(twitter_weekly, move |_| {
            WeeklySeries::build(
                config.twitter_start,
                config.twitter_end,
                std::iter::empty::<(SimTime, u64)>(),
            )
        });
        g.fallback(youtube_weekly, move |_| {
            WeeklySeries::build(
                config.youtube_start,
                config.youtube_end,
                std::iter::empty::<(SimTime, u64)>(),
            )
        });
        g.fallback(twitter_discover, |_| {
            discover::TwitterDiscoverability::default()
        });
        g.fallback(youtube_discover, |_| {
            discover::YouTubeDiscoverability::default()
        });
        g.fallback(twitter_coins, |_| currencies::CoinRates::default());
        g.fallback(youtube_coins, |_| currencies::CoinRates::default());
        g.fallback(twitter_conversions, |_| victims::Conversions::default());
        g.fallback(youtube_conversions, |_| victims::Conversions::default());
        g.fallback(origins, |_| victims::PaymentOrigins::default());
        g.fallback(twitter_whales, |_| victims::WhaleDistribution::default());
        g.fallback(youtube_whales, |_| victims::WhaleDistribution::default());
        g.fallback(recipients, |_| scammers::RecipientStats::default());
        g.fallback(outgoing, |_| {
            (
                scammers::OutgoingStats::default(),
                DegradationStats::default(),
            )
        });
        g.fallback(qr_pilot, |_| None);
        g.fallback(fig5, |_| fig5::KeywordContribution::default());
        g.fallback(interventions, |_| Vec::new());

        // ---- execute the DAG and assemble the report ----
        let mut out = g.run_observed(threads, &obs);

        let twitter_dataset = out.take(twitter_ds);
        let youtube_dataset = out.take(youtube_ds);
        let monitor_report = out.take(main_monitor);
        let pilot_report = out.take(pilot);
        let twitter_analysis = out.take(twitter_an);
        let youtube_analysis = out.take(youtube_an);
        let twitch_report = out.take(twitch);
        let (outgoing_stats, outgoing_deg) = out.take(outgoing);

        let mut degradation = DegradationReport {
            enabled: plan.is_some(),
            ..Default::default()
        };
        degradation.push("pilot_monitor", pilot_report.degradation);
        degradation.push("main_monitor", monitor_report.degradation);
        degradation.push("twitch_pilot", twitch_report.degradation);
        degradation.push("twitter_payments", twitter_analysis.degradation);
        degradation.push("youtube_payments", youtube_analysis.degradation);
        degradation.push("outgoing_stats", outgoing_deg);

        let report = PaperReport {
            table1: Table1::new(&twitter_dataset, &youtube_dataset),
            twitter_revenue: twitter_analysis.revenue,
            youtube_revenue: youtube_analysis.revenue,
            twitter_funnel: twitter_analysis.funnel,
            youtube_funnel: youtube_analysis.funnel,
            twitter_weekly: out.take(twitter_weekly),
            youtube_weekly: out.take(youtube_weekly),
            twitter_discover: out.take(twitter_discover),
            youtube_discover: out.take(youtube_discover),
            twitter_coins: out.take(twitter_coins),
            youtube_coins: out.take(youtube_coins),
            twitter_conversions: out.take(twitter_conversions),
            youtube_conversions: out.take(youtube_conversions),
            origins: out.take(origins),
            twitter_whales: out.take(twitter_whales),
            youtube_whales: out.take(youtube_whales),
            recipients: out.take(recipients),
            twitter_recipients: scammers::distinct_recipients(&twitter_analysis),
            youtube_recipients: scammers::distinct_recipients(&youtube_analysis),
            outgoing: outgoing_stats,
            qr_pilot: out.take(qr_pilot),
            twitch: TwitchSummary {
                streams_listed: twitch_report.streams_listed,
                candidates: twitch_report.candidates,
                scams_found: twitch_report.qr_hits,
            },
            fig5: out.take(fig5),
            interventions: out.take(interventions),
        };

        PaperRun {
            report,
            twitter_dataset,
            youtube_dataset,
            monitor_report,
            pilot_report,
            twitter_analysis,
            youtube_analysis,
            timings: out.timings,
            degradation,
            telemetry: obs.snapshot(),
            health: RunHealth::from_graph(out.health),
        }
    }
}
