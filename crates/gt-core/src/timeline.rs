//! Weekly lure-volume series (Figures 3 and 4).

use gt_sim::SimTime;
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};

/// One week's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct WeekBucket {
    /// Week index from the window start (week 0 starts at the window
    /// start instant).
    pub week: usize,
    /// Start of the week.
    pub start: SimTime,
    /// Lure count (tweets or streams).
    pub count: u64,
    /// Views (streams only; zero for tweets).
    pub views: u64,
}

/// A weekly series over a window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct WeeklySeries {
    pub window_start: SimTime,
    pub buckets: Vec<WeekBucket>,
}

impl WeeklySeries {
    /// Bucket `(time, views)` observations into weeks.
    pub fn build(
        window_start: SimTime,
        window_end: SimTime,
        observations: impl Iterator<Item = (SimTime, u64)>,
    ) -> WeeklySeries {
        let weeks = ((window_end - window_start).as_days() as usize)
            .div_ceil(7)
            .max(1);
        let mut buckets: Vec<WeekBucket> = (0..weeks)
            .map(|w| WeekBucket {
                week: w,
                start: window_start + gt_sim::SimDuration::weeks(w as i64),
                count: 0,
                views: 0,
            })
            .collect();
        for (time, views) in observations {
            let idx = time.week_index_from(window_start);
            if idx < 0 || idx as usize >= weeks {
                continue;
            }
            buckets[idx as usize].count += 1;
            buckets[idx as usize].views += views;
        }
        WeeklySeries {
            window_start,
            buckets,
        }
    }

    pub fn total_count(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }

    pub fn total_views(&self) -> u64 {
        self.buckets.iter().map(|b| b.views).sum()
    }

    /// The busiest week by count.
    pub fn peak(&self) -> &WeekBucket {
        self.buckets
            .iter()
            .max_by_key(|b| b.count)
            .expect("series has at least one bucket")
    }

    /// The busiest week by views.
    pub fn peak_views(&self) -> &WeekBucket {
        self.buckets
            .iter()
            .max_by_key(|b| b.views)
            .expect("series has at least one bucket")
    }

    /// Render an ASCII sparkline of counts (for the report).
    pub fn sparkline(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self
            .buckets
            .iter()
            .map(|b| b.count)
            .max()
            .unwrap_or(0)
            .max(1);
        self.buckets
            .iter()
            .map(|b| BARS[((b.count * 7) / max) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::SimDuration;

    fn t0() -> SimTime {
        SimTime::from_ymd(2022, 1, 1)
    }

    #[test]
    fn buckets_by_week() {
        let obs = vec![
            (t0() + SimDuration::days(0), 10u64),
            (t0() + SimDuration::days(6), 20),
            (t0() + SimDuration::days(7), 5),
            (t0() + SimDuration::days(20), 1),
        ];
        let series = WeeklySeries::build(t0(), t0() + SimDuration::weeks(4), obs.into_iter());
        assert_eq!(series.buckets.len(), 4);
        assert_eq!(series.buckets[0].count, 2);
        assert_eq!(series.buckets[0].views, 30);
        assert_eq!(series.buckets[1].count, 1);
        assert_eq!(series.buckets[2].count, 1);
        assert_eq!(series.buckets[3].count, 0);
        assert_eq!(series.total_count(), 4);
    }

    #[test]
    fn out_of_window_observations_dropped() {
        let obs = vec![
            (t0() - SimDuration::days(1), 1u64),
            (t0() + SimDuration::weeks(4), 1),
        ];
        let series = WeeklySeries::build(t0(), t0() + SimDuration::weeks(4), obs.into_iter());
        assert_eq!(series.total_count(), 0);
    }

    #[test]
    fn peak_detection() {
        let obs = (0..10u64)
            .map(|i| (t0() + SimDuration::days(7 * 2 + i as i64 % 7), 100u64))
            .chain(std::iter::once((t0(), 9_999u64)));
        let series = WeeklySeries::build(t0(), t0() + SimDuration::weeks(5), obs);
        assert_eq!(series.peak().week, 2);
        assert_eq!(series.peak_views().week, 0);
    }

    #[test]
    fn sparkline_has_one_char_per_week() {
        let series = WeeklySeries::build(t0(), t0() + SimDuration::weeks(26), std::iter::empty());
        assert_eq!(series.sparkline().chars().count(), 26);
    }

    #[test]
    fn partial_final_week_is_kept() {
        let series = WeeklySeries::build(
            t0(),
            t0() + SimDuration::weeks(2) + SimDuration::days(3),
            std::iter::once((t0() + SimDuration::days(15), 0u64)),
        );
        assert_eq!(series.buckets.len(), 3);
        assert_eq!(series.buckets[2].count, 1);
    }
}
