//! Search-keyword effectiveness (Appendix B.2 / Figure 5).
//!
//! For every stream the search returned: which search keywords appear
//! verbatim in its metadata (title + description)? Streams matching
//! multiple keywords split their credit evenly, as the paper does.
//! Keyword-less streams are split by an English-vs-not heuristic
//! (non-ASCII-dominant titles stand in for the paper's manual language
//! inspection).

use gt_store::{StoreDecode, StoreEncode};
use gt_stream::keywords::SearchKeywords;
use gt_stream::monitor::MonitorReport;
use serde::{Deserialize, Serialize};

/// The Figure 5 data.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct KeywordContribution {
    /// Streams the search returned.
    pub streams: usize,
    /// Streams containing at least one search keyword verbatim.
    pub with_keyword: usize,
    /// Fractional credit per keyword, sorted descending.
    pub credits: Vec<(String, f64)>,
    /// Among keyword-less streams, how many look non-English.
    pub keywordless_non_english: usize,
    pub keywordless: usize,
}

impl KeywordContribution {
    /// Fraction of returned streams containing a keyword.
    pub fn keyword_rate(&self) -> f64 {
        self.with_keyword as f64 / self.streams.max(1) as f64
    }

    /// Share of total credit captured by the top `k` keywords.
    pub fn top_k_share(&self, k: usize) -> f64 {
        let total: f64 = self.credits.iter().map(|(_, c)| c).sum();
        if total == 0.0 {
            return 0.0;
        }
        let top: f64 = self.credits.iter().take(k).map(|(_, c)| c).sum();
        top / total
    }
}

/// Crude language heuristic: mostly-ASCII-alphabetic titles read as
/// English.
pub fn looks_english(text: &str) -> bool {
    let letters: Vec<char> = text.chars().filter(|c| c.is_alphabetic()).collect();
    if letters.is_empty() {
        return true;
    }
    let ascii = letters.iter().filter(|c| c.is_ascii()).count();
    ascii * 2 >= letters.len()
}

/// Compute keyword contribution over every stream in the report.
pub fn keyword_contribution(
    report: &MonitorReport,
    keywords: &SearchKeywords,
) -> KeywordContribution {
    let mut credits: Vec<f64> = vec![0.0; keywords.search_terms.len()];
    let mut with_keyword = 0usize;
    let mut keywordless = 0usize;
    let mut keywordless_non_english = 0usize;

    for obs in &report.streams {
        let meta = format!("{} {}", obs.title, obs.description);
        let matched = keywords.search.matching_keywords(&meta);
        if matched.is_empty() {
            keywordless += 1;
            if !looks_english(&obs.title) {
                keywordless_non_english += 1;
            }
        } else {
            with_keyword += 1;
            let share = 1.0 / matched.len() as f64;
            for idx in matched {
                credits[idx] += share;
            }
        }
    }

    let mut named: Vec<(String, f64)> = keywords
        .search_terms
        .iter()
        .cloned()
        .zip(credits)
        .filter(|(_, c)| *c > 0.0)
        .collect();
    named.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    KeywordContribution {
        streams: report.streams.len(),
        with_keyword,
        credits: named,
        keywordless_non_english,
        keywordless,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::SimTime;
    use gt_social::{ChannelId, LiveStreamId};
    use gt_stream::keywords::search_keyword_set;
    use gt_stream::monitor::ObservedStream;

    fn obs(title: &str) -> ObservedStream {
        ObservedStream {
            stream: LiveStreamId(0),
            channel: ChannelId(0),
            title: title.into(),
            description: String::new(),
            channel_name: String::new(),
            channel_subscribers: 0,
            first_seen: SimTime(0),
            last_seen: SimTime(0),
            max_concurrent: 0,
            max_total_views: 0,
            chat_messages_seen: 0,
            samples: 0,
            qr_samples: 0,
            qr_first_seen: None,
            qr_last_seen: None,
        }
    }

    fn report(titles: &[&str]) -> MonitorReport {
        MonitorReport {
            streams: titles.iter().map(|t| obs(t)).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn credits_split_evenly() {
        let kws = search_keyword_set();
        let r = report(&["bitcoin and ethereum giveaway by musk"]);
        let c = keyword_contribution(&r, &kws);
        assert_eq!(c.with_keyword, 1);
        let total: f64 = c.credits.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9, "one stream, one credit total");
        // bitcoin, ethereum, musk, give(away?) each get a share.
        assert!(c.credits.len() >= 3);
    }

    #[test]
    fn keywordless_streams_counted_and_language_checked() {
        let kws = search_keyword_set();
        let r = report(&["실시간 시장 분석", "cooking dinner live"]);
        let c = keyword_contribution(&r, &kws);
        assert_eq!(c.with_keyword, 0);
        assert_eq!(c.keywordless, 2);
        assert_eq!(c.keywordless_non_english, 1);
        assert_eq!(c.keyword_rate(), 0.0);
    }

    #[test]
    fn top_k_share_monotone() {
        let kws = search_keyword_set();
        let r = report(&[
            "bitcoin talk",
            "bitcoin news",
            "bitcoin price",
            "ethereum gas",
            "xrp ripple event",
        ]);
        let c = keyword_contribution(&r, &kws);
        assert!(c.top_k_share(1) <= c.top_k_share(3));
        assert!((c.top_k_share(100) - 1.0).abs() < 1e-9);
        assert!(c.top_k_share(1) >= 0.4, "bitcoin dominates");
    }

    #[test]
    fn english_heuristic() {
        assert!(looks_english("bitcoin price analysis"));
        assert!(!looks_english("실시간 시장 분석"));
        assert!(!looks_english("прямой эфир: обзор рынка"));
        assert!(looks_english("12345 !!!"));
    }
}
