//! The paper-vs-measured experiment report.

use crate::currencies::CoinRates;
use crate::datasets::Table1;
use crate::discover::{TwitterDiscoverability, YouTubeDiscoverability};
use crate::fig5::KeywordContribution;
use crate::payments::{PaymentFunnel, RevenueRow};
use crate::scammers::{OutgoingStats, RecipientStats};
use crate::timeline::WeeklySeries;
use crate::victims::{Conversions, PaymentOrigins, WhaleDistribution};
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// QR pilot summary (Appendix B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct QrPilotSummary {
    pub tracked: usize,
    pub mean_seconds: f64,
    pub median_seconds: f64,
    pub intermittent: usize,
}

/// Twitch pilot summary (Appendix B.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct TwitchSummary {
    pub streams_listed: usize,
    pub candidates: usize,
    pub scams_found: usize,
}

/// Everything the pipeline measured, aligned with the paper's tables
/// and figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperReport {
    /// Table 1.
    pub table1: Table1,
    /// Table 2, per platform.
    pub twitter_revenue: RevenueRow,
    pub youtube_revenue: RevenueRow,
    /// Section 5.2 / 5.3 funnels.
    pub twitter_funnel: PaymentFunnel,
    pub youtube_funnel: PaymentFunnel,
    /// Figure 3 / Figure 4.
    pub twitter_weekly: WeeklySeries,
    pub youtube_weekly: WeeklySeries,
    /// Section 4.2.
    pub twitter_discover: TwitterDiscoverability,
    pub youtube_discover: YouTubeDiscoverability,
    /// Section 4.3.
    pub twitter_coins: CoinRates,
    pub youtube_coins: CoinRates,
    /// Section 5.4.
    pub twitter_conversions: Conversions,
    pub youtube_conversions: Conversions,
    pub origins: PaymentOrigins,
    pub twitter_whales: WhaleDistribution,
    pub youtube_whales: WhaleDistribution,
    /// Section 5.5.
    pub recipients: RecipientStats,
    pub twitter_recipients: usize,
    pub youtube_recipients: usize,
    pub outgoing: OutgoingStats,
    /// Appendix B.
    pub qr_pilot: Option<QrPilotSummary>,
    pub twitch: TwitchSummary,
    /// Appendix B.2 / Figure 5.
    pub fig5: KeywordContribution,
    /// Section 6.2 extension: the exchange block-list intervention at
    /// increasing detection lags.
    pub interventions: Vec<crate::interventions::InterventionOutcome>,
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    pub artifact: String,
    pub metric: String,
    /// Paper value at full scale.
    pub paper: f64,
    /// Measured value (at the run's scale).
    pub measured: f64,
    /// Paper value multiplied by the run's scale factor (what the
    /// measurement should approximate).
    pub paper_scaled: f64,
}

impl ComparisonRow {
    /// Relative deviation of measured from the scaled paper value.
    pub fn deviation(&self) -> f64 {
        if self.paper_scaled == 0.0 {
            return 0.0;
        }
        (self.measured - self.paper_scaled) / self.paper_scaled
    }
}

impl PaperReport {
    /// Build the paper-vs-measured table. `scale` is the world scale
    /// factor (1.0 for a full-scale run). Rates and ratios are never
    /// scaled; counts and revenue are.
    pub fn compare_with_paper(&self, scale: f64) -> Vec<ComparisonRow> {
        use gt_world::calibration as cal;
        let mut rows: Vec<ComparisonRow> = Vec::new();
        fn push(
            rows: &mut Vec<ComparisonRow>,
            artifact: &str,
            metric: &str,
            paper: f64,
            measured: f64,
            paper_scaled: f64,
        ) {
            rows.push(ComparisonRow {
                artifact: artifact.to_string(),
                metric: metric.to_string(),
                paper,
                measured,
                paper_scaled,
            });
        }
        // Counts scale with the world; rates and ratios compare as-is.
        macro_rules! count {
            ($a:expr, $m:expr, $p:expr, $v:expr) => {
                push(&mut rows, $a, $m, $p, $v, $p * scale)
            };
        }
        macro_rules! rate {
            ($a:expr, $m:expr, $p:expr, $v:expr) => {
                push(&mut rows, $a, $m, $p, $v, $p)
            };
        }

        let t1 = &self.table1;
        count!(
            "T1",
            "twitter domains",
            cal::datasets::TWITTER_DOMAINS as f64,
            t1.twitter_domains as f64
        );
        count!(
            "T1",
            "twitter accounts",
            cal::datasets::TWITTER_ACCOUNTS as f64,
            t1.twitter_accounts as f64
        );
        count!(
            "T1",
            "twitter artifacts",
            cal::datasets::TWITTER_ARTIFACTS as f64,
            t1.twitter_artifacts as f64
        );
        count!(
            "T1",
            "youtube domains",
            cal::datasets::YOUTUBE_DOMAINS as f64,
            t1.youtube_domains as f64
        );
        count!(
            "T1",
            "youtube accounts",
            cal::datasets::YOUTUBE_ACCOUNTS as f64,
            t1.youtube_accounts as f64
        );
        count!(
            "T1",
            "youtube artifacts",
            cal::datasets::YOUTUBE_ARTIFACTS as f64,
            t1.youtube_artifacts as f64
        );

        count!(
            "T2",
            "twitter payments (co-occurring)",
            cal::payments::TWITTER_PAYMENTS as f64,
            self.twitter_revenue.payments_co_occurring as f64
        );
        count!(
            "T2",
            "twitter payments (any)",
            cal::payments::TWITTER_PAYMENTS_ANY as f64,
            self.twitter_revenue.payments_any as f64
        );
        count!(
            "T2",
            "twitter USD (co-occurring)",
            cal::payments::TWITTER_REVENUE,
            self.twitter_revenue.usd_co_occurring
        );
        count!(
            "T2",
            "twitter USD from BTC",
            cal::payments::TWITTER_REVENUE_BTC,
            self.twitter_revenue.usd_btc
        );
        count!(
            "T2",
            "twitter USD from ETH",
            cal::payments::TWITTER_REVENUE_ETH,
            self.twitter_revenue.usd_eth
        );
        count!(
            "T2",
            "twitter USD from XRP",
            cal::payments::TWITTER_REVENUE_XRP,
            self.twitter_revenue.usd_xrp
        );
        count!(
            "T2",
            "twitter USD (any)",
            cal::payments::TWITTER_REVENUE_ANY,
            self.twitter_revenue.usd_any
        );
        count!(
            "T2",
            "youtube payments (co-occurring)",
            cal::payments::YOUTUBE_PAYMENTS as f64,
            self.youtube_revenue.payments_co_occurring as f64
        );
        count!(
            "T2",
            "youtube payments (any)",
            cal::payments::YOUTUBE_PAYMENTS_ANY as f64,
            self.youtube_revenue.payments_any as f64
        );
        count!(
            "T2",
            "youtube USD (co-occurring)",
            cal::payments::YOUTUBE_REVENUE,
            self.youtube_revenue.usd_co_occurring
        );
        count!(
            "T2",
            "youtube USD from BTC",
            cal::payments::YOUTUBE_REVENUE_BTC,
            self.youtube_revenue.usd_btc
        );
        count!(
            "T2",
            "youtube USD from ETH",
            cal::payments::YOUTUBE_REVENUE_ETH,
            self.youtube_revenue.usd_eth
        );
        count!(
            "T2",
            "youtube USD from XRP",
            cal::payments::YOUTUBE_REVENUE_XRP,
            self.youtube_revenue.usd_xrp
        );
        count!(
            "T2",
            "youtube USD (any)",
            cal::payments::YOUTUBE_REVENUE_ANY,
            self.youtube_revenue.usd_any
        );

        count!(
            "F3",
            "twitter peak week",
            cal::lures::TWITTER_PEAK_WEEK as f64,
            self.twitter_weekly.peak().count as f64
        );
        count!(
            "F4",
            "youtube peak week streams",
            cal::lures::YOUTUBE_PEAK_STREAMS as f64,
            self.youtube_weekly.peak().count as f64
        );
        count!(
            "F4",
            "youtube peak week views",
            cal::lures::YOUTUBE_PEAK_VIEWS as f64,
            self.youtube_weekly.peak_views().views as f64
        );

        rate!(
            "S4.2",
            "hashtag rate",
            cal::lures::HASHTAG_RATE,
            self.twitter_discover.hashtag_rate
        );
        rate!(
            "S4.2",
            "mention rate",
            cal::lures::MENTION_RATE,
            self.twitter_discover.mention_rate
        );
        rate!(
            "S4.2",
            "reply rate",
            cal::lures::REPLY_RATE,
            self.twitter_discover.reply_rate
        );
        rate!(
            "S4.2",
            "channel subscribers median",
            cal::lures::CHANNEL_SUBSCRIBERS_MEDIAN as f64,
            self.youtube_discover.channel_subscribers_median as f64
        );
        rate!(
            "S4.2",
            "stream keyword rate",
            cal::lures::STREAM_KEYWORD_RATE,
            self.youtube_discover.keyword_rate
        );

        for (coin, paper_rate) in cal::lures::TWITTER_COIN_RATES {
            rate!(
                "S4.3",
                &format!("twitter {coin} rate"),
                paper_rate,
                self.twitter_coins.rate_of(coin)
            );
        }
        for (coin, paper_rate) in cal::lures::YOUTUBE_COIN_RATES {
            rate!(
                "S4.3",
                &format!("youtube {coin} rate"),
                paper_rate,
                self.youtube_coins.rate_of(coin)
            );
        }

        count!(
            "S5.2",
            "twitter domains w/ coin addr",
            cal::payments::TWITTER_DOMAINS_WITH_COIN as f64,
            self.twitter_funnel.domains_with_coin as f64
        );
        count!(
            "S5.2",
            "twitter domains paid",
            cal::payments::TWITTER_DOMAINS_PAID as f64,
            self.twitter_funnel.domains_paid as f64
        );
        count!(
            "S5.2",
            "twitter addresses",
            cal::payments::TWITTER_ADDRESSES as f64,
            self.twitter_funnel.distinct_addresses as f64
        );
        count!(
            "S5.2",
            "twitter consolidations removed",
            cal::payments::TWITTER_CONSOLIDATIONS as f64,
            self.twitter_funnel.consolidations_removed as f64
        );
        count!(
            "S5.3",
            "youtube domains w/ coin addr",
            cal::payments::YOUTUBE_DOMAINS_WITH_COIN as f64,
            self.youtube_funnel.domains_with_coin as f64
        );
        count!(
            "S5.3",
            "youtube domains paid",
            cal::payments::YOUTUBE_DOMAINS_PAID as f64,
            self.youtube_funnel.domains_paid as f64
        );
        count!(
            "S5.3",
            "youtube consolidations removed",
            cal::payments::YOUTUBE_CONSOLIDATIONS as f64,
            self.youtube_funnel.consolidations_removed as f64
        );

        count!(
            "S5.4",
            "twitter unique senders",
            cal::payments::TWITTER_SENDERS as f64,
            self.twitter_conversions.unique_senders as f64
        );
        count!(
            "S5.4",
            "youtube unique senders",
            cal::payments::YOUTUBE_SENDERS as f64,
            self.youtube_conversions.unique_senders as f64
        );
        rate!(
            "S5.4",
            "twitter conversion rate",
            cal::payments::TWITTER_CONVERSION,
            self.twitter_conversions.rate
        );
        rate!(
            "S5.4",
            "youtube conversion rate",
            cal::payments::YOUTUBE_CONVERSION,
            self.youtube_conversions.rate
        );
        rate!(
            "S5.4",
            "exchange origin rate",
            cal::payments::EXCHANGE_ORIGIN_RATE,
            self.origins.exchange_rate
        );
        count!(
            "S5.4",
            "twitter top-k for 50% value",
            cal::payments::TWITTER_TOP_FOR_HALF as f64,
            self.twitter_whales.top_for_half as f64
        );
        count!(
            "S5.4",
            "twitter top-k for 90% value",
            cal::payments::TWITTER_TOP_FOR_90PCT as f64,
            self.twitter_whales.top_for_90pct as f64
        );
        count!(
            "S5.4",
            "youtube top-k for 50% value",
            cal::payments::YOUTUBE_TOP_FOR_HALF as f64,
            self.youtube_whales.top_for_half as f64
        );
        count!(
            "S5.4",
            "youtube top-k for 90% value",
            cal::payments::YOUTUBE_TOP_FOR_90PCT as f64,
            self.youtube_whales.top_for_90pct as f64
        );

        count!(
            "S5.5",
            "distinct recipients",
            cal::scammers::DISTINCT_RECIPIENTS as f64,
            self.recipients.recipients as f64
        );
        count!(
            "S5.5",
            "twitter recipients",
            cal::payments::TWITTER_RECIPIENTS as f64,
            self.twitter_recipients as f64
        );
        count!(
            "S5.5",
            "youtube recipients",
            cal::payments::YOUTUBE_RECIPIENTS as f64,
            self.youtube_recipients as f64
        );
        rate!(
            "S5.5",
            "btc singleton-cluster rate",
            cal::scammers::BTC_SINGLETON_RECIPIENTS as f64 / cal::scammers::BTC_RECIPIENTS as f64,
            self.recipients.btc_singletons as f64 / self.recipients.btc_recipients.max(1) as f64
        );
        count!(
            "S5.5",
            "outgoing recipients",
            cal::scammers::OUTGOING_RECIPIENTS as f64,
            self.outgoing.recipients as f64
        );
        count!(
            "S5.5",
            "outgoing exchanges",
            cal::scammers::OUTGOING_EXCHANGE as f64,
            self.outgoing.count(gt_cluster::Category::Exchange) as f64
        );
        rate!(
            "S5.5",
            "outgoing unlabeled rate",
            0.87,
            self.outgoing.unlabeled_rate()
        );

        if let Some(qr) = &self.qr_pilot {
            rate!(
                "B",
                "qr mean seconds",
                cal::pilot::QR_MEAN_SECONDS,
                qr.mean_seconds
            );
            rate!(
                "B",
                "qr median seconds",
                cal::pilot::QR_MEDIAN_SECONDS,
                qr.median_seconds
            );
        }
        count!(
            "B.1",
            "twitch scams found",
            0.0,
            self.twitch.scams_found as f64
        );
        rate!(
            "F5",
            "streams with keyword",
            cal::keywords_fig5::STREAMS_WITH_KEYWORD,
            self.fig5.keyword_rate()
        );
        rate!(
            "F5",
            "top-20 keyword share",
            cal::keywords_fig5::TOP20_SHARE,
            self.fig5.top_k_share(20)
        );

        rows
    }

    /// Render the comparison as an aligned text table.
    pub fn render_comparison(&self, scale: f64) -> String {
        let rows = self.compare_with_paper(scale);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:<36} {:>14} {:>14} {:>14} {:>8}",
            "where", "metric", "paper", "paper@scale", "measured", "dev"
        );
        let _ = writeln!(out, "{}", "-".repeat(96));
        for r in rows {
            let _ = writeln!(
                out,
                "{:<6} {:<36} {:>14} {:>14} {:>14} {:>7.1}%",
                r.artifact,
                r.metric,
                fmt_num(r.paper),
                fmt_num(r.paper_scaled),
                fmt_num(r.measured),
                r.deviation() * 100.0
            );
        }
        out
    }
}

fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1_000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 1.0 {
        format!("{:.2}", v)
    } else {
        format!("{:.5}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_row_deviation() {
        let r = ComparisonRow {
            artifact: "T1".into(),
            metric: "x".into(),
            paper: 100.0,
            measured: 11.0,
            paper_scaled: 10.0,
        };
        assert!((r.deviation() - 0.1).abs() < 1e-12);
        let zero = ComparisonRow {
            paper_scaled: 0.0,
            ..r
        };
        assert_eq!(zero.deviation(), 0.0);
    }

    #[test]
    fn fmt_num_ranges() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(0.0012), "0.00120");
        assert_eq!(fmt_num(3.5), "3.50");
        assert_eq!(fmt_num(2693009.0), "2693009");
    }
}
