//! Scammer behaviour (Section 5.5): recipient addresses, BTC cluster
//! sizes, and where the money goes next.

use crate::payments::PaymentAnalysis;
use gt_addr::Address;
use gt_chain::ChainReads;
use gt_cluster::{Category, ClusterView, TagResolver};
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// Recipient-address statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct RecipientStats {
    /// Distinct recipient addresses of final victim payments.
    pub recipients: usize,
    /// Of those, BTC addresses.
    pub btc_recipients: usize,
    /// BTC recipients whose multi-input cluster has size one.
    pub btc_singletons: usize,
}

/// Distinct recipients of the final victim payments, per platform list.
pub fn recipient_stats(analyses: &[&PaymentAnalysis], clustering: &ClusterView) -> RecipientStats {
    let mut recipients: HashSet<Address> = HashSet::new();
    for analysis in analyses {
        for p in analysis.victim_payments() {
            recipients.insert(p.transfer.recipient);
        }
    }
    let mut btc = 0usize;
    let mut singleton = 0usize;
    for r in &recipients {
        if let Address::Btc(a) = r {
            btc += 1;
            if clustering.cluster_size(*a) == Some(1) {
                singleton += 1;
            }
        }
    }
    RecipientStats {
        recipients: recipients.len(),
        btc_recipients: btc,
        btc_singletons: singleton,
    }
}

/// Per-platform recipient counts (the paper's 68 vs 271 split).
pub fn distinct_recipients(analysis: &PaymentAnalysis) -> usize {
    analysis
        .victim_payments()
        .map(|p| p.transfer.recipient)
        .collect::<HashSet<_>>()
        .len()
}

/// Where outgoing transfers from scam addresses go.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct OutgoingStats {
    /// Distinct recipients of outgoing transfers.
    pub recipients: usize,
    /// Recipients with a known category.
    pub by_category: BTreeMap<String, usize>,
    /// Recipients with no category (the large majority).
    pub unlabeled: usize,
}

impl OutgoingStats {
    pub fn count(&self, category: Category) -> usize {
        self.by_category
            .get(&category.to_string())
            .copied()
            .unwrap_or(0)
    }

    pub fn unlabeled_rate(&self) -> f64 {
        self.unlabeled as f64 / self.recipients.max(1) as f64
    }
}

/// Classify the recipients of every outgoing transfer from the given
/// scam recipient addresses.
pub fn outgoing_stats<C: ChainReads>(
    analyses: &[&PaymentAnalysis],
    chains: &C,
    tags: &TagResolver,
    clustering: &ClusterView,
) -> OutgoingStats {
    let mut scam_recipients: HashSet<Address> = HashSet::new();
    for analysis in analyses {
        for p in analysis.victim_payments() {
            scam_recipients.insert(p.transfer.recipient);
        }
    }
    let mut out_recipients: HashSet<Address> = HashSet::new();
    for &addr in &scam_recipients {
        for transfer in chains.outgoing(addr) {
            out_recipients.insert(transfer.recipient);
        }
    }
    let mut stats = OutgoingStats {
        recipients: out_recipients.len(),
        ..Default::default()
    };
    for r in out_recipients {
        match tags.category(r, clustering) {
            Some(c) => *stats.by_category.entry(c.to_string()).or_insert(0) += 1,
            None => stats.unlabeled += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payments::{IsolatedPayment, PaymentFunnel, RevenueRow};
    use gt_addr::{BtcAddress, Coin};
    use gt_chain::{Amount, BtcLedger, ChainView, Transfer, TxRef};
    use gt_cluster::TagService;
    use gt_sim::SimTime;

    fn addr(b: u8) -> BtcAddress {
        BtcAddress::P2pkh([b; 20])
    }

    fn payment_to(recipient: u8) -> IsolatedPayment {
        IsolatedPayment {
            transfer: Transfer {
                tx: TxRef {
                    coin: Coin::Btc,
                    index: recipient as u64,
                },
                senders: vec![Address::Btc(addr(200))],
                recipient: Address::Btc(addr(recipient)),
                amount: Amount(1),
                time: SimTime(0),
            },
            domain: "d".into(),
            usd: 1.0,
            co_occurring: true,
            from_known_scam: false,
        }
    }

    fn analysis(payments: Vec<IsolatedPayment>) -> PaymentAnalysis {
        PaymentAnalysis {
            payments,
            funnel: PaymentFunnel {
                domains_with_coin: 0,
                domains_paid: 0,
                distinct_addresses: 0,
                payments_any: 0,
                payments_co_occurring_raw: 0,
                consolidations_removed: 0,
                payments_final: 0,
            },
            revenue: RevenueRow::default(),
            degradation: Default::default(),
        }
    }

    #[test]
    fn recipients_deduplicate_across_platforms() {
        let a = analysis(vec![payment_to(1), payment_to(2)]);
        let b = analysis(vec![payment_to(2), payment_to(3)]);
        let clustering = ClusterView::build(&BtcLedger::new());
        let stats = recipient_stats(&[&a, &b], &clustering);
        assert_eq!(stats.recipients, 3);
        assert_eq!(stats.btc_recipients, 3);
        assert_eq!(distinct_recipients(&a), 2);
    }

    #[test]
    fn singleton_detection_uses_clustering() {
        let mut ledger = BtcLedger::new();
        let t = SimTime(1_700_000_000);
        // addr(1) stays singleton; addr(2) and addr(3) co-spend.
        ledger.coinbase(addr(1), Amount(10_000), t).unwrap();
        ledger.coinbase(addr(2), Amount(10_000), t).unwrap();
        ledger.coinbase(addr(3), Amount(10_000), t).unwrap();
        ledger
            .pay(
                &[addr(2), addr(3)],
                addr(50),
                Amount(15_000),
                addr(2),
                Amount(0),
                t,
            )
            .unwrap();
        let clustering = ClusterView::build(&ledger);
        let a = analysis(vec![payment_to(1), payment_to(2), payment_to(3)]);
        let stats = recipient_stats(&[&a], &clustering);
        assert_eq!(stats.btc_recipients, 3);
        assert_eq!(stats.btc_singletons, 1);
    }

    #[test]
    fn outgoing_classification() {
        let mut chains = ChainView::new();
        let t = SimTime(1_700_000_000);
        // Scam address 9 pays out to: a tagged exchange (addr 60) and a
        // fresh address (addr 61).
        chains.btc.coinbase(addr(9), Amount(100_000), t).unwrap();
        chains
            .btc
            .pay(&[addr(9)], addr(60), Amount(40_000), addr(9), Amount(0), t)
            .unwrap();
        chains
            .btc
            .pay(&[addr(9)], addr(61), Amount(40_000), addr(9), Amount(0), t)
            .unwrap();
        let mut tags = TagService::new();
        tags.tag(Address::Btc(addr(60)), Category::Exchange);
        let clustering = ClusterView::build(&chains.btc);
        let a = analysis(vec![payment_to(9)]);
        let stats = outgoing_stats(&[&a], &chains, &tags.resolver(&clustering), &clustering);
        assert_eq!(stats.recipients, 2);
        assert_eq!(stats.count(Category::Exchange), 1);
        assert_eq!(stats.unlabeled, 1);
        assert!((stats.unlabeled_rate() - 0.5).abs() < 1e-12);
    }
}
