//! Coin targeting (Section 4.3): which currencies the lures reference.

use crate::datasets::{TwitterDataset, YouTubeDataset};
use gt_social::TwitterSnapshot;
use gt_store::{StoreDecode, StoreEncode};
use gt_stream::monitor::MonitorReport;
use gt_text::KeywordSet;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The coins the analysis reports on, with their match keywords.
const COIN_TAGS: [(&str, &[&str]); 3] = [
    ("bitcoin", &["bitcoin", "btc"]),
    ("ethereum", &["ethereum", "eth"]),
    ("ripple", &["ripple", "xrp"]),
];

/// Per-coin reference rates among lures. Rates can sum past 1.0 since a
/// lure can reference several coins.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct CoinRates {
    pub lures: usize,
    /// (coin name, fraction of lures referencing it), sorted descending.
    pub rates: Vec<(String, f64)>,
}

impl CoinRates {
    pub fn rate_of(&self, coin: &str) -> f64 {
        self.rates
            .iter()
            .find(|(c, _)| c == coin)
            .map(|&(_, r)| r)
            .unwrap_or(0.0)
    }
}

fn tag_sets() -> Vec<(String, KeywordSet)> {
    COIN_TAGS
        .iter()
        .map(|(name, kws)| (name.to_string(), KeywordSet::new(kws.iter().copied())))
        .collect()
}

fn finish(mut counts: HashMap<String, usize>, lures: usize) -> CoinRates {
    let mut rates: Vec<(String, f64)> = COIN_TAGS
        .iter()
        .map(|(name, _)| {
            (
                name.to_string(),
                counts.remove(*name).unwrap_or(0) as f64 / lures.max(1) as f64,
            )
        })
        .collect();
    rates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    CoinRates { lures, rates }
}

/// Coin reference rates among scam tweets (matched on hashtags, as the
/// paper does).
pub fn twitter_coin_rates(dataset: &TwitterDataset, snapshot: &TwitterSnapshot) -> CoinRates {
    let sets = tag_sets();
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut lures = 0usize;
    for domain in &dataset.domains {
        for &id in &domain.tweets {
            let tweet = snapshot.tweet(id).expect("dataset tweet exists");
            lures += 1;
            let haystack = tweet.hashtags.join(" ");
            for (name, set) in &sets {
                if set.matches(&haystack) {
                    *counts.entry(name.clone()).or_insert(0) += 1;
                }
            }
        }
    }
    finish(counts, lures)
}

/// Coin reference rates among scam streams (title, channel name and
/// description, as the paper does).
pub fn youtube_coin_rates(dataset: &YouTubeDataset, report: &MonitorReport) -> CoinRates {
    let sets = tag_sets();
    let observed: HashMap<_, _> = report.streams.iter().map(|s| (s.stream, s)).collect();
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut lures = 0usize;
    for &sid in &dataset.scam_streams {
        let Some(obs) = observed.get(&sid) else {
            continue;
        };
        lures += 1;
        for (name, set) in &sets {
            if set.matches(&obs.title)
                || set.matches(&obs.description)
                || set.matches(&obs.channel_name)
            {
                *counts.entry(name.clone()).or_insert(0) += 1;
            }
        }
    }
    finish(counts, lures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::build_twitter_dataset;
    use gt_sim::RngFactory;
    use gt_world::sites::DomainFactory;
    use gt_world::WorldConfig;

    #[test]
    fn twitter_ripple_dominates() {
        let config = WorldConfig::scaled(0.05);
        let factory = RngFactory::new(2);
        let mut snapshot = TwitterSnapshot::new();
        let mut df = DomainFactory::new();
        let world = gt_world::twitter_gen::generate(&config, &factory, &mut df, &mut snapshot);
        let dataset = build_twitter_dataset(&snapshot, &world.scam_db);
        let rates = twitter_coin_rates(&dataset, &snapshot);
        assert_eq!(rates.rates[0].0, "ripple", "XRP is the top coin");
        assert!(rates.rate_of("ripple") > 0.8);
        assert!(rates.rate_of("ripple") > rates.rate_of("ethereum"));
        assert!(rates.rate_of("ethereum") > rates.rate_of("bitcoin"));
    }

    #[test]
    fn rate_of_unknown_coin_is_zero() {
        let rates = CoinRates {
            lures: 10,
            rates: vec![("bitcoin".into(), 0.5)],
        };
        assert_eq!(rates.rate_of("dogecoin"), 0.0);
    }
}
