//! Dataset assembly (Table 1).

use crate::validate::{validate_annotated_addresses, validate_page, ValidatedSite};
use gt_addr::Address;
use gt_sim::SimTime;
use gt_social::{LiveStreamId, TweetId, TwitterAccountId, TwitterSnapshot};
use gt_store::{StoreDecode, StoreEncode};
use gt_stream::keywords::SearchKeywords;
use gt_stream::monitor::MonitorReport;
use gt_web::Url;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One Twitter scam domain with its promoting tweets and annotated
/// addresses.
#[derive(Debug, Clone, PartialEq, StoreEncode, StoreDecode)]
pub struct TwitterDomain {
    pub domain: String,
    pub tweets: Vec<TweetId>,
    pub tweet_times: Vec<SimTime>,
    /// Checksum-valid BTC/ETH/XRP addresses from the corpus annotation.
    pub addresses: Vec<Address>,
}

/// The assembled Twitter dataset.
#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct TwitterDataset {
    pub domains: Vec<TwitterDomain>,
    pub accounts: BTreeSet<TwitterAccountId>,
    pub tweet_count: usize,
}

impl TwitterDataset {
    /// Table 1 row: (domains, accounts, artifacts).
    pub fn table1_row(&self) -> (usize, usize, usize) {
        (self.domains.len(), self.accounts.len(), self.tweet_count)
    }

    /// Domains with at least one tracked (BTC/ETH/XRP) address.
    pub fn domains_with_coin(&self) -> impl Iterator<Item = &TwitterDomain> {
        self.domains.iter().filter(|d| !d.addresses.is_empty())
    }
}

/// Build the Twitter dataset: find every corpus domain that appears in
/// at least one tweet, collect those tweets and accounts, and validate
/// the annotated addresses.
pub fn build_twitter_dataset(
    snapshot: &TwitterSnapshot,
    scam_db: &gt_world::sites::ScamDomainDb,
) -> TwitterDataset {
    let mut dataset = TwitterDataset::default();
    for entry in &scam_db.entries {
        let tweets = snapshot.tweets_with_domain(&entry.domain);
        if tweets.is_empty() {
            continue;
        }
        let mut ids = Vec::with_capacity(tweets.len());
        let mut times = Vec::with_capacity(tweets.len());
        for t in &tweets {
            ids.push(t.id);
            times.push(t.time);
            dataset.accounts.insert(t.author);
        }
        times.sort();
        dataset.tweet_count += ids.len();
        dataset.domains.push(TwitterDomain {
            domain: entry.domain.clone(),
            tweets: ids,
            tweet_times: times,
            addresses: validate_annotated_addresses(&entry.addresses),
        });
    }
    dataset.domains.sort_by(|a, b| a.domain.cmp(&b.domain));
    dataset
}

/// One YouTube scam domain with the streams that promoted it.
#[derive(Debug, Clone, PartialEq, StoreEncode, StoreDecode)]
pub struct YouTubeDomain {
    pub domain: String,
    pub validation: ValidatedSite,
    /// Observed (first_seen, last_seen) spans of promoting streams.
    pub stream_spans: Vec<(SimTime, SimTime)>,
    pub streams: Vec<LiveStreamId>,
}

/// The assembled YouTube dataset.
#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct YouTubeDataset {
    pub domains: Vec<YouTubeDomain>,
    /// Scam streams (those that promoted a validated domain).
    pub scam_streams: BTreeSet<LiveStreamId>,
    /// Channels hosting them.
    pub channels: BTreeSet<gt_social::ChannelId>,
}

impl YouTubeDataset {
    pub fn table1_row(&self) -> (usize, usize, usize) {
        (
            self.domains.len(),
            self.channels.len(),
            self.scam_streams.len(),
        )
    }

    pub fn domains_with_coin(&self) -> impl Iterator<Item = &YouTubeDomain> {
        self.domains
            .iter()
            .filter(|d| !d.validation.addresses.is_empty())
    }
}

/// Build the YouTube dataset from a monitoring report: validate every
/// crawled page, keep scam-validated domains, and attach the observed
/// spans of the streams that promoted them.
pub fn build_youtube_dataset(report: &MonitorReport, keywords: &SearchKeywords) -> YouTubeDataset {
    // Validate each crawled page, grouped by domain (any validating URL
    // marks the domain).
    let mut validated: BTreeMap<String, ValidatedSite> = BTreeMap::new();
    for page in report.pages.values() {
        let Some(url) = Url::parse(&page.url) else {
            continue;
        };
        let v = validate_page(&url.host, &page.html, keywords);
        if v.is_scam() {
            validated.entry(url.host.clone()).or_insert(v);
        }
    }

    // Map lead URLs to domains, then to the streams that carried them.
    let observed: HashMap<LiveStreamId, &gt_stream::monitor::ObservedStream> =
        report.streams.iter().map(|s| (s.stream, s)).collect();
    let mut dataset = YouTubeDataset::default();
    let mut per_domain_streams: BTreeMap<String, BTreeSet<LiveStreamId>> = BTreeMap::new();
    for lead in &report.leads {
        let Some(url) = Url::parse(&lead.url) else {
            continue;
        };
        if validated.contains_key(&url.host) {
            per_domain_streams
                .entry(url.host.clone())
                .or_default()
                .insert(lead.stream);
        }
    }

    for (domain, streams) in per_domain_streams {
        let validation = validated[&domain].clone();
        let mut spans = Vec::new();
        for &sid in &streams {
            if let Some(obs) = observed.get(&sid) {
                spans.push((obs.first_seen, obs.last_seen));
                dataset.scam_streams.insert(sid);
                dataset.channels.insert(obs.channel);
            }
        }
        spans.sort();
        dataset.domains.push(YouTubeDomain {
            domain,
            validation,
            stream_spans: spans,
            streams: streams.into_iter().collect(),
        });
    }
    dataset
}

/// The Table 1 summary for both platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct Table1 {
    pub twitter_domains: usize,
    pub twitter_accounts: usize,
    pub twitter_artifacts: usize,
    pub youtube_domains: usize,
    pub youtube_accounts: usize,
    pub youtube_artifacts: usize,
}

impl Table1 {
    pub fn new(twitter: &TwitterDataset, youtube: &YouTubeDataset) -> Table1 {
        let (td, ta, tt) = twitter.table1_row();
        let (yd, ya, ys) = youtube.table1_row();
        Table1 {
            twitter_domains: td,
            twitter_accounts: ta,
            twitter_artifacts: tt,
            youtube_domains: yd,
            youtube_accounts: ya,
            youtube_artifacts: ys,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::RngFactory;
    use gt_world::sites::DomainFactory;
    use gt_world::WorldConfig;

    #[test]
    fn twitter_dataset_finds_promoted_domains_only() {
        let config = WorldConfig::test_small();
        let factory = RngFactory::new(config.seed);
        let mut snapshot = TwitterSnapshot::new();
        let mut df = DomainFactory::new();
        let world = gt_world::twitter_gen::generate(&config, &factory, &mut df, &mut snapshot);

        let dataset = build_twitter_dataset(&snapshot, &world.scam_db);
        // Every domain in the dataset actually has tweets.
        for d in &dataset.domains {
            assert!(!d.tweets.is_empty());
        }
        // The corpus is much larger than the promoted subset.
        assert!(dataset.domains.len() < world.scam_db.len());
        // Artifact count equals the sum over domains.
        let total: usize = dataset.domains.iter().map(|d| d.tweets.len()).sum();
        assert_eq!(total, dataset.tweet_count);
        assert!(dataset.accounts.len() > 1);
    }

    #[test]
    fn twitter_addresses_are_validated() {
        let config = WorldConfig::test_small();
        let factory = RngFactory::new(config.seed);
        let mut snapshot = TwitterSnapshot::new();
        let mut df = DomainFactory::new();
        let world = gt_world::twitter_gen::generate(&config, &factory, &mut df, &mut snapshot);
        let dataset = build_twitter_dataset(&snapshot, &world.scam_db);
        // Some domains carry tracked addresses, some are other-coin only.
        let with = dataset.domains_with_coin().count();
        assert!(with > 0);
        assert!(with <= dataset.domains.len());
    }
}
