//! Supervised pipeline execution: stage-level recovery, quarantine,
//! and graceful degradation.
//!
//! The paper's measurement ran for months against flaky external
//! substrates and still produced complete tables. The supervision layer
//! gives the pipeline the same property: instead of one panicking stage
//! poisoning the whole 25-stage run, a [`SupervisionPolicy`] wraps every
//! stage in a recovery state machine —
//!
//! ```text
//!            ┌────────── retry (attempt < max_attempts) ──────────┐
//!            ▼                                                    │
//! run ─▶ attempt ──panic──▶ exhausted? ──yes──▶ fallback declared? │
//!            │                   │ no ─────────────────────────────┘
//!            │ ok                ├─ yes ─▶ QUARANTINED (substitute fallback,
//!            ▼                   │         taint every dependent stage)
//!        COMPLETED /             └─ no ──▶ poison the run (strict semantics)
//!        RECOVERED
//! ```
//!
//! Every retry re-probes the bound [`RunStore`](gt_store::RunStore)
//! first, so a crash during a persist (or a flaky stage body) resumes
//! from the last successfully persisted upstream outputs instead of
//! recomputing the world.
//!
//! # Taint propagation
//!
//! A quarantined stage substitutes its declared fallback (an empty or
//! identity output), which is *wrong data served knowingly*: every
//! transitive dependent is marked **tainted**, and every report table a
//! quarantined or tainted stage feeds is listed in
//! [`RunHealth::degraded_tables`]. Tables stay filled — they just come
//! with a completeness annotation instead of an aborted run.
//!
//! # Determinism contract
//!
//! Supervision never changes *what* a healthy stage computes, only what
//! happens when one panics. Injected panics ([`FaultKind::StagePanic`]
//! (gt_sim::faults::FaultKind)) are scheduled in sim time, so attempt
//! counts, quarantine sets, taint sets, and degraded-table lists are all
//! byte-identical across thread counts and runs. A supervised run with
//! a quiet fault plan produces a byte-identical `PaperReport` to an
//! unsupervised (strict) run. Wall-clock never enters [`RunHealth`].
//!
//! Cache safety: a quarantined stage is never persisted under its
//! content address (the address names the *real* computation), but its
//! fallback payload digest still feeds dependents' cache keys — so
//! degraded downstream entries live under distinct keys and can never
//! collide with clean ones.

use serde::Serialize;

/// How the executor treats a panicking stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SupervisionPolicy {
    /// Total attempts per stage (1 = no retries).
    pub max_attempts: u32,
    /// Strict mode: the first panic poisons the run and is re-raised on
    /// the caller — the pre-supervision semantics, kept as the
    /// degenerate case. Retries and fallbacks are both disabled.
    pub strict: bool,
}

impl SupervisionPolicy {
    /// Today's poison semantics: any stage panic aborts the run.
    pub fn strict() -> Self {
        SupervisionPolicy {
            max_attempts: 1,
            strict: true,
        }
    }

    /// Recovering supervision: retry each failing stage up to
    /// `max_attempts` total attempts, then quarantine it behind its
    /// declared fallback. Stages without a fallback still poison the
    /// run once their attempts are exhausted.
    pub fn recover(max_attempts: u32) -> Self {
        SupervisionPolicy {
            max_attempts: max_attempts.max(1),
            strict: false,
        }
    }
}

impl Default for SupervisionPolicy {
    /// Strict — supervision is opt-in so existing callers keep exact
    /// pre-supervision behavior.
    fn default() -> Self {
        SupervisionPolicy::strict()
    }
}

/// Terminal state of one supervised stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum StageStatus {
    /// First attempt succeeded.
    Completed,
    /// At least one attempt panicked but a retry succeeded.
    Recovered,
    /// All attempts panicked; the declared fallback was substituted.
    Quarantined,
}

/// Recovery timeline entry for one stage.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageHealth {
    pub name: String,
    /// Attempts consumed (1 = clean first run).
    pub attempts: u32,
    pub status: StageStatus,
    /// Panic message of the last failed attempt, for recovered and
    /// quarantined stages.
    pub error: Option<String>,
    /// The stage ran fine but at least one upstream output was a
    /// quarantine fallback, so its output is degraded.
    pub tainted: bool,
    /// The stage computed but its cache write failed (full or
    /// read-only disk): the run is fine, but it will not resume warm.
    pub cache_write_failed: bool,
}

/// Executor-level health for a completed graph run.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct GraphHealth {
    /// Whether a recovering (non-strict) policy was active.
    pub supervised: bool,
    /// Total attempts across all stages (= stage count on a clean run).
    pub attempts: u64,
    /// Extra attempts beyond the first, across all stages.
    pub retries: u64,
    /// Names of quarantined stages, in registration order.
    pub quarantined: Vec<String>,
    /// Names of tainted (transitively degraded) stages, in
    /// registration order.
    pub tainted: Vec<String>,
    /// Per-stage recovery timeline, in registration order.
    pub stages: Vec<StageHealth>,
}

impl GraphHealth {
    /// No quarantines, no taint, no retries, no failed cache writes.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
            && self.tainted.is_empty()
            && self.retries == 0
            && self.stages.iter().all(|s| !s.cache_write_failed)
    }
}

/// Which `PaperReport` artifacts each pipeline stage *directly*
/// produces. Transitive damage is carried by the taint set, so the map
/// only needs direct production; stages feeding no table (monitors,
/// the chain analysis, the known-scam set) simply have no entry.
const TABLE_FEEDS: &[(&str, &[&str])] = &[
    ("twitter_dataset", &["table1.twitter"]),
    ("youtube_dataset", &["table1.youtube"]),
    (
        "twitter_payments",
        &[
            "table2.twitter_revenue",
            "funnel.twitter",
            "recipients.twitter",
        ],
    ),
    (
        "youtube_payments",
        &[
            "table2.youtube_revenue",
            "funnel.youtube",
            "recipients.youtube",
        ],
    ),
    ("twitter_weekly", &["fig3.weekly_tweets"]),
    ("youtube_weekly", &["fig4.weekly_streams"]),
    ("twitter_discover", &["discoverability.twitter"]),
    ("youtube_discover", &["discoverability.youtube"]),
    ("twitter_coins", &["coin_rates.twitter"]),
    ("youtube_coins", &["coin_rates.youtube"]),
    ("twitter_conversions", &["conversions.twitter"]),
    ("youtube_conversions", &["conversions.youtube"]),
    ("payment_origins", &["payment_origins"]),
    ("twitter_whales", &["whales.twitter"]),
    ("youtube_whales", &["whales.youtube"]),
    ("recipient_stats", &["recipients"]),
    ("outgoing_stats", &["cashout_categories"]),
    ("qr_pilot", &["appendix_b.qr_pilot"]),
    ("twitch_pilot", &["appendix_b.twitch"]),
    ("fig5_keywords", &["fig5.keywords"]),
    ("interventions", &["interventions"]),
];

/// The report tables degraded when `stages` (quarantined plus tainted)
/// produced fallback or fallback-derived output. Sorted, deduplicated.
pub fn degraded_tables<'a>(stages: impl IntoIterator<Item = &'a str>) -> Vec<String> {
    let mut tables: Vec<String> = Vec::new();
    for stage in stages {
        if let Some((_, feeds)) = TABLE_FEEDS.iter().find(|(name, _)| *name == stage) {
            tables.extend(feeds.iter().map(|t| (*t).to_string()));
        }
    }
    tables.sort();
    tables.dedup();
    tables
}

/// Run-level health: the executor's [`GraphHealth`] plus the report
/// tables it degrades and operator-facing warnings. Lives in
/// [`PaperRun`](crate::pipeline::PaperRun) and the experiments JSON —
/// never in [`PaperReport`](crate::report::PaperReport), which must
/// stay byte-identical across thread counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RunHealth {
    /// Whether a recovering (non-strict) policy was active.
    pub supervised: bool,
    /// Total attempts across all stages.
    pub attempts: u64,
    /// Extra attempts beyond the first, across all stages.
    pub retries: u64,
    /// Quarantined stage names, registration order.
    pub quarantined: Vec<String>,
    /// Tainted stage names, registration order.
    pub tainted: Vec<String>,
    /// `PaperReport` artifacts fed by a quarantined or tainted stage.
    pub degraded_tables: Vec<String>,
    /// One-line operator warnings (failed cache writes, quarantines).
    pub warnings: Vec<String>,
    /// Per-stage recovery timeline, registration order.
    pub stages: Vec<StageHealth>,
}

impl RunHealth {
    /// Fold a completed graph's health into the run-level view.
    pub fn from_graph(graph: GraphHealth) -> RunHealth {
        let degraded = degraded_tables(
            graph
                .quarantined
                .iter()
                .chain(graph.tainted.iter())
                .map(String::as_str),
        );
        let mut warnings = Vec::new();
        for stage in &graph.stages {
            if stage.status == StageStatus::Quarantined {
                warnings.push(format!(
                    "stage {}: quarantined after {} attempts ({}); fallback output substituted",
                    stage.name,
                    stage.attempts,
                    stage.error.as_deref().unwrap_or("panic"),
                ));
            }
            if stage.cache_write_failed {
                warnings.push(format!(
                    "stage {}: cache write failed (disk full or read-only?); \
                     this run is fine but will not resume warm",
                    stage.name,
                ));
            }
        }
        RunHealth {
            supervised: graph.supervised,
            attempts: graph.attempts,
            retries: graph.retries,
            quarantined: graph.quarantined,
            tainted: graph.tainted,
            degraded_tables: degraded,
            warnings,
            stages: graph.stages,
        }
    }

    /// Nothing degraded, nothing retried, nothing to warn about.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
            && self.tainted.is_empty()
            && self.retries == 0
            && self.warnings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_is_the_default_and_degenerate_case() {
        let p = SupervisionPolicy::default();
        assert!(p.strict);
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p, SupervisionPolicy::strict());
        let r = SupervisionPolicy::recover(0);
        assert!(!r.strict);
        assert_eq!(r.max_attempts, 1, "zero attempts clamps to one");
    }

    #[test]
    fn degraded_tables_union_is_sorted_and_deduped() {
        let tables = degraded_tables(["recipient_stats", "twitter_payments", "recipient_stats"]);
        assert_eq!(
            tables,
            vec![
                "funnel.twitter",
                "recipients",
                "recipients.twitter",
                "table2.twitter_revenue",
            ]
        );
        assert!(degraded_tables(["main_monitor"]).is_empty());
        assert!(degraded_tables([]).is_empty());
    }

    #[test]
    fn every_mapped_stage_is_a_real_pipeline_stage_name() {
        // Guards the map against drifting from pipeline.rs renames:
        // stage names are snake_case identifiers, one entry per stage.
        let mut seen = std::collections::HashSet::new();
        for (stage, feeds) in TABLE_FEEDS {
            assert!(seen.insert(*stage), "duplicate map entry for {stage}");
            assert!(!feeds.is_empty());
        }
        assert_eq!(TABLE_FEEDS.len(), 21);
    }

    #[test]
    fn run_health_folds_warnings_and_degraded_tables() {
        let graph = GraphHealth {
            supervised: true,
            attempts: 27,
            retries: 2,
            quarantined: vec!["qr_pilot".into()],
            tainted: vec!["fig5_keywords".into()],
            stages: vec![StageHealth {
                name: "qr_pilot".into(),
                attempts: 2,
                status: StageStatus::Quarantined,
                error: Some("boom".into()),
                tainted: false,
                cache_write_failed: true,
            }],
        };
        assert!(!graph.is_clean());
        let health = RunHealth::from_graph(graph);
        assert!(!health.is_clean());
        assert_eq!(
            health.degraded_tables,
            vec!["appendix_b.qr_pilot", "fig5.keywords"]
        );
        assert_eq!(health.warnings.len(), 2);
        assert!(health.warnings[0].contains("quarantined after 2 attempts"));
        assert!(health.warnings[1].contains("cache write failed"));
    }

    #[test]
    fn clean_graph_health_is_clean() {
        let health = RunHealth::from_graph(GraphHealth {
            supervised: true,
            attempts: 25,
            ..GraphHealth::default()
        });
        assert!(health.is_clean());
        assert!(health.degraded_tables.is_empty());
        assert!(health.warnings.is_empty());
    }
}
