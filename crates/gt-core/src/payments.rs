//! Payment isolation and revenue (Sections 5.1–5.3, Table 2).

use crate::datasets::{TwitterDataset, YouTubeDataset};
use gt_addr::{Address, Coin};
use gt_chain::{ChainReads, Transfer};
use gt_cluster::{Category, ClusterView, TagResolver};
use gt_price::PriceOracle;
use gt_sim::faults::DegradationStats;
use gt_sim::{SimDuration, SimTime};
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Co-occurrence windows from the paper.
pub const TWEET_WINDOW: SimDuration = SimDuration::days(7);
pub const STREAM_TAIL_WINDOW: SimDuration = SimDuration::hours(8);

/// An isolated payment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct IsolatedPayment {
    pub transfer: Transfer,
    pub domain: String,
    /// USD value at the day-of-payment average price.
    pub usd: f64,
    pub co_occurring: bool,
    /// True when the sender was a known scam address (consolidation).
    pub from_known_scam: bool,
}

impl IsolatedPayment {
    pub fn coin(&self) -> Coin {
        self.transfer.tx.coin
    }
}

/// The Section 5.2/5.3 funnel for one platform.
#[derive(
    Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub struct PaymentFunnel {
    /// Domains with at least one BTC/ETH/XRP address.
    pub domains_with_coin: usize,
    /// Of those, domains that received any incoming transaction.
    pub domains_paid: usize,
    /// Distinct addresses across the platform's domains.
    pub distinct_addresses: usize,
    /// All incoming payments.
    pub payments_any: usize,
    /// Payments inside a co-occurrence window (before the scam-sender
    /// filter).
    pub payments_co_occurring_raw: usize,
    /// Removed because the sender is a known scam address.
    pub consolidations_removed: usize,
    /// Final victim payments.
    pub payments_final: usize,
}

/// Revenue per coin plus totals (one platform's half of Table 2).
#[derive(
    Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub struct RevenueRow {
    pub payments_co_occurring: usize,
    pub payments_any: usize,
    pub usd_co_occurring: f64,
    pub usd_btc: f64,
    pub usd_eth: f64,
    pub usd_xrp: f64,
    pub usd_any: f64,
}

/// Everything payment analysis produces for one platform.
#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct PaymentAnalysis {
    /// All isolated payments (co-occurring and not), scam senders
    /// included but flagged.
    pub payments: Vec<IsolatedPayment>,
    pub funnel: PaymentFunnel,
    pub revenue: RevenueRow,
    /// RPC-read degradation behind this analysis (all zero when the
    /// reads went straight to the ledger). Lives in `PaperRun`, never
    /// in `PaperReport`.
    pub degradation: DegradationStats,
}

impl PaymentAnalysis {
    /// The final victim payments (co-occurring, non-scam-sender).
    pub fn victim_payments(&self) -> impl Iterator<Item = &IsolatedPayment> {
        self.payments
            .iter()
            .filter(|p| p.co_occurring && !p.from_known_scam)
    }
}

/// Is `sender` a known scam address?
fn is_known_scam(
    sender: &Address,
    known_scam_addresses: &HashSet<Address>,
    tags: &TagResolver,
    clustering: &ClusterView,
) -> bool {
    known_scam_addresses.contains(sender)
        || tags.category(*sender, clustering) == Some(Category::Scam)
}

/// One isolation input: a domain, its displayed addresses, and the
/// co-occurrence windows attached to it.
type DomainWindows = (String, Vec<Address>, Vec<(SimTime, SimTime)>);

/// Shared isolation logic over (domain, addresses, windows) triples.
/// Generic over [`ChainReads`] so the same loop runs against the raw
/// ledger or a fault-gated RPC view.
#[allow(clippy::too_many_arguments)]
fn isolate<C: ChainReads>(
    domains: Vec<DomainWindows>,
    chains: &C,
    prices: &PriceOracle,
    tags: &TagResolver,
    clustering: &ClusterView,
    known_scam_addresses: &HashSet<Address>,
) -> PaymentAnalysis {
    let mut payments = Vec::new();
    let mut funnel = PaymentFunnel {
        domains_with_coin: 0,
        domains_paid: 0,
        distinct_addresses: 0,
        payments_any: 0,
        payments_co_occurring_raw: 0,
        consolidations_removed: 0,
        payments_final: 0,
    };
    let mut distinct_addresses: HashSet<Address> = HashSet::new();
    let mut seen_tx: HashSet<gt_chain::TxRef> = HashSet::new();

    for (domain, addresses, windows) in domains {
        if addresses.is_empty() {
            continue;
        }
        funnel.domains_with_coin += 1;
        distinct_addresses.extend(addresses.iter().copied());

        let mut domain_paid = false;
        for &address in &addresses {
            for transfer in chains.incoming(address) {
                // A domain counts as paid whenever its addresses saw
                // money, even if the transaction was already attributed
                // to a sibling domain sharing the address (the paper's
                // per-domain count works the same way).
                domain_paid = true;
                if !seen_tx.insert(transfer.tx) {
                    continue; // already attributed via another domain
                }
                funnel.payments_any += 1;
                let co_occurring = windows
                    .iter()
                    .any(|&(start, end)| transfer.time >= start && transfer.time <= end);
                let from_known_scam = transfer
                    .senders
                    .iter()
                    .any(|s| is_known_scam(s, known_scam_addresses, tags, clustering));
                if co_occurring {
                    funnel.payments_co_occurring_raw += 1;
                    if from_known_scam {
                        funnel.consolidations_removed += 1;
                    } else {
                        funnel.payments_final += 1;
                    }
                }
                let usd = prices.to_usd(transfer.tx.coin, transfer.amount.0, transfer.time);
                payments.push(IsolatedPayment {
                    transfer,
                    domain: domain.clone(),
                    usd,
                    co_occurring,
                    from_known_scam,
                });
            }
        }
        if domain_paid {
            funnel.domains_paid += 1;
        }
    }
    funnel.distinct_addresses = distinct_addresses.len();

    // Revenue (Table 2).
    let mut revenue = RevenueRow {
        payments_any: funnel.payments_any,
        payments_co_occurring: funnel.payments_final,
        ..Default::default()
    };
    for p in &payments {
        revenue.usd_any += p.usd;
        if p.co_occurring && !p.from_known_scam {
            revenue.usd_co_occurring += p.usd;
            match p.coin() {
                Coin::Btc => revenue.usd_btc += p.usd,
                Coin::Eth => revenue.usd_eth += p.usd,
                Coin::Xrp => revenue.usd_xrp += p.usd,
            }
        }
    }

    PaymentAnalysis {
        payments,
        funnel,
        revenue,
        degradation: DegradationStats::default(),
    }
}

/// Run payment isolation for the Twitter dataset: a payment co-occurs
/// if it lands within one week after a promoting tweet.
pub fn analyze_twitter<C: ChainReads>(
    dataset: &TwitterDataset,
    chains: &C,
    prices: &PriceOracle,
    tags: &TagResolver,
    clustering: &ClusterView,
    known_scam_addresses: &HashSet<Address>,
) -> PaymentAnalysis {
    analyze_twitter_with_window(
        dataset,
        TWEET_WINDOW,
        chains,
        prices,
        tags,
        clustering,
        known_scam_addresses,
    )
}

/// [`analyze_twitter`] with an explicit co-occurrence window width
/// (used by the window-sweep ablation).
#[allow(clippy::too_many_arguments)]
pub fn analyze_twitter_with_window<C: ChainReads>(
    dataset: &TwitterDataset,
    window: gt_sim::SimDuration,
    chains: &C,
    prices: &PriceOracle,
    tags: &TagResolver,
    clustering: &ClusterView,
    known_scam_addresses: &HashSet<Address>,
) -> PaymentAnalysis {
    let domains = dataset
        .domains
        .iter()
        .map(|d| {
            let windows: Vec<(SimTime, SimTime)> =
                d.tweet_times.iter().map(|&t| (t, t + window)).collect();
            (d.domain.clone(), d.addresses.clone(), windows)
        })
        .collect();
    isolate(
        domains,
        chains,
        prices,
        tags,
        clustering,
        known_scam_addresses,
    )
}

/// Run payment isolation for the YouTube dataset: a payment co-occurs
/// if it lands during a promoting stream or within eight hours after.
pub fn analyze_youtube<C: ChainReads>(
    dataset: &YouTubeDataset,
    chains: &C,
    prices: &PriceOracle,
    tags: &TagResolver,
    clustering: &ClusterView,
    known_scam_addresses: &HashSet<Address>,
) -> PaymentAnalysis {
    let domains = dataset
        .domains
        .iter()
        .map(|d| {
            let windows: Vec<(SimTime, SimTime)> = d
                .stream_spans
                .iter()
                .map(|&(start, end)| (start, end + STREAM_TAIL_WINDOW))
                .collect();
            (d.domain.clone(), d.validation.addresses.clone(), windows)
        })
        .collect();
    isolate(
        domains,
        chains,
        prices,
        tags,
        clustering,
        known_scam_addresses,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_addr::BtcAddress;
    use gt_chain::{Amount, ChainView};
    use gt_cluster::TagService;
    use gt_sim::RngFactory;

    fn addr(b: u8) -> Address {
        Address::Btc(BtcAddress::P2pkh([b; 20]))
    }

    fn btc(b: u8) -> BtcAddress {
        BtcAddress::P2pkh([b; 20])
    }

    fn setup() -> (ChainView, PriceOracle, TagService) {
        (
            ChainView::new(),
            PriceOracle::new(&RngFactory::new(1)),
            TagService::new(),
        )
    }

    fn t(days: i64, secs: i64) -> SimTime {
        SimTime::from_ymd(2023, 9, 1) + SimDuration::days(days) + SimDuration::seconds(secs)
    }

    fn pay(chains: &mut ChainView, from: u8, to: u8, amount: u64, at: SimTime) {
        chains
            .btc
            .coinbase(btc(from), Amount(amount * 2), at)
            .unwrap();
        chains
            .btc
            .pay(
                &[btc(from)],
                btc(to),
                Amount(amount),
                btc(from),
                Amount(100),
                at,
            )
            .unwrap();
    }

    fn analyze(
        chains: &ChainView,
        prices: &PriceOracle,
        tags: &TagService,
        windows: Vec<(SimTime, SimTime)>,
        known: &HashSet<Address>,
    ) -> PaymentAnalysis {
        let clustering = ClusterView::build(&chains.btc);
        isolate(
            vec![("scam.com".into(), vec![addr(9)], windows)],
            chains,
            prices,
            &tags.resolver(&clustering),
            &clustering,
            known,
        )
    }

    #[test]
    fn splits_co_occurring_from_background() {
        let (mut chains, prices, tags) = setup();
        pay(&mut chains, 1, 9, 50_000_000, t(0, 3600)); // inside window
        pay(&mut chains, 2, 9, 50_000_000, t(30, 0)); // outside
        let windows = vec![(t(0, 0), t(7, 0))];
        let analysis = analyze(&chains, &prices, &tags, windows, &HashSet::new());
        assert_eq!(analysis.funnel.payments_any, 2);
        assert_eq!(analysis.funnel.payments_final, 1);
        assert_eq!(analysis.funnel.domains_paid, 1);
        assert!(analysis.revenue.usd_any > analysis.revenue.usd_co_occurring);
        assert!(analysis.revenue.usd_btc > 0.0);
        assert_eq!(analysis.revenue.usd_eth, 0.0);
    }

    #[test]
    fn known_scam_senders_are_removed() {
        let (mut chains, prices, tags) = setup();
        pay(&mut chains, 1, 9, 10_000_000, t(0, 3600)); // victim
        pay(&mut chains, 7, 9, 10_000_000, t(0, 7200)); // consolidation
        let known: HashSet<Address> = [addr(7)].into_iter().collect();
        let windows = vec![(t(0, 0), t(7, 0))];
        let analysis = analyze(&chains, &prices, &tags, windows, &known);
        assert_eq!(analysis.funnel.payments_co_occurring_raw, 2);
        assert_eq!(analysis.funnel.consolidations_removed, 1);
        assert_eq!(analysis.funnel.payments_final, 1);
        // Revenue excludes the consolidation.
        let victim_usd: f64 = analysis.victim_payments().map(|p| p.usd).sum();
        assert!((victim_usd - analysis.revenue.usd_co_occurring).abs() < 1e-9);
    }

    #[test]
    fn scam_tagged_senders_also_removed() {
        let (mut chains, prices, mut tags) = setup();
        pay(&mut chains, 5, 9, 10_000_000, t(1, 0));
        tags.tag(addr(5), Category::Scam);
        let windows = vec![(t(0, 0), t(7, 0))];
        let analysis = analyze(&chains, &prices, &tags, windows, &HashSet::new());
        assert_eq!(analysis.funnel.consolidations_removed, 1);
        assert_eq!(analysis.funnel.payments_final, 0);
    }

    #[test]
    fn unpaid_domains_counted() {
        let (chains, prices, tags) = setup();
        let analysis = analyze(
            &chains,
            &prices,
            &tags,
            vec![(t(0, 0), t(7, 0))],
            &HashSet::new(),
        );
        assert_eq!(analysis.funnel.domains_with_coin, 1);
        assert_eq!(analysis.funnel.domains_paid, 0);
        assert_eq!(analysis.funnel.payments_any, 0);
    }

    #[test]
    fn window_boundaries_are_inclusive() {
        let (mut chains, prices, tags) = setup();
        pay(&mut chains, 1, 9, 10_000_000, t(7, 0)); // exactly at close
        let windows = vec![(t(0, 0), t(7, 0))];
        let analysis = analyze(&chains, &prices, &tags, windows, &HashSet::new());
        assert_eq!(analysis.funnel.payments_final, 1);
    }
}
