//! Scam-site validation (Section 3.2, "Validating scam URLs and
//! identifying cryptocurrency addresses").
//!
//! A crawled page is accepted as a giveaway scam iff
//!
//! 1. it publishes at least one *valid* cryptocurrency address
//!    (checksum-verified by `gt-addr`), **and**
//! 2. either the page body contains a scam HTML keyword, **or**
//! 3. the domain name contains a scam domain keyword.

use gt_addr::Address;
use gt_store::{StoreDecode, StoreEncode};
use gt_stream::keywords::SearchKeywords;
use gt_text::scan_address_candidates;
use serde::{Deserialize, Serialize};

/// The validation verdict for one crawled page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct ValidatedSite {
    pub domain: String,
    /// Checksum-valid BTC/ETH/XRP addresses found on the page.
    pub addresses: Vec<Address>,
    /// Criterion 2: HTML keywords present.
    pub html_keywords: bool,
    /// Criterion 3: domain keywords present.
    pub domain_keywords: bool,
}

impl ValidatedSite {
    /// Whether the site passes the full validation rule.
    pub fn is_scam(&self) -> bool {
        !self.addresses.is_empty() && (self.html_keywords || self.domain_keywords)
    }
}

/// Validate one page.
pub fn validate_page(domain: &str, html: &str, keywords: &SearchKeywords) -> ValidatedSite {
    let mut addresses: Vec<Address> = scan_address_candidates(html)
        .into_iter()
        .filter_map(|c| gt_addr::validate_any(&c.text))
        .collect();
    addresses.sort();
    addresses.dedup();

    // Domain keywords match on the name with separators spaced out so
    // whole-word matching applies ("elon-give.com" → "elon give com").
    let spaced: String = domain
        .chars()
        .map(|c| {
            if c == '-' || c == '.' || c == '_' {
                ' '
            } else {
                c
            }
        })
        .collect();

    ValidatedSite {
        domain: domain.to_string(),
        addresses,
        html_keywords: keywords.html.matches(html),
        domain_keywords: keywords.domain.matches(&spaced),
    }
}

/// Validate the address strings annotated in a scam-DB entry (the
/// Twitter side never re-crawls; it trusts the corpus annotations but
/// still checksum-validates them).
pub fn validate_annotated_addresses(addresses: &[(String, String)]) -> Vec<Address> {
    let mut out: Vec<Address> = addresses
        .iter()
        .filter_map(|(_, text)| gt_addr::validate_any(text))
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_stream::keywords::search_keyword_set;

    fn kws() -> SearchKeywords {
        search_keyword_set()
    }

    const GOOD_ADDR: &str = "1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa";

    #[test]
    fn accepts_page_with_address_and_html_keywords() {
        let html = format!("<html>Hurry! Send BTC to {GOOD_ADDR} to participate</html>");
        let v = validate_page("random-name.com", &html, &kws());
        assert!(v.is_scam());
        assert_eq!(v.addresses.len(), 1);
        assert!(v.html_keywords);
    }

    #[test]
    fn accepts_page_with_address_and_domain_keywords_only() {
        let html = format!("<html>{GOOD_ADDR}</html>");
        let v = validate_page("elon-musk-drop.live", &html, &kws());
        assert!(v.is_scam(), "domain keywords rescue a keyword-less page");
        assert!(!v.html_keywords);
        assert!(v.domain_keywords);
    }

    #[test]
    fn rejects_page_without_valid_address() {
        let html = "<html>Hurry! participate in the giveaway, send crypto now!</html>";
        let v = validate_page("elon-drop.live", html, &kws());
        assert!(!v.is_scam(), "no address, no scam verdict");
    }

    #[test]
    fn rejects_page_with_address_but_no_keywords_anywhere() {
        let html = format!("<html>my cold storage backup: {GOOD_ADDR}</html>");
        let v = validate_page("personal-blog-site.org", &html, &kws());
        assert!(!v.is_scam());
        assert_eq!(v.addresses.len(), 1, "address found but criteria 2/3 fail");
    }

    #[test]
    fn rejects_corrupted_addresses() {
        let bad = "1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNb"; // checksum broken
        let html = format!("<html>Hurry! send to {bad}</html>");
        let v = validate_page("elon-drop.live", &html, &kws());
        assert!(v.addresses.is_empty());
        assert!(!v.is_scam());
    }

    #[test]
    fn dedupes_repeated_addresses() {
        let html = format!("<html>hurry {GOOD_ADDR} and again {GOOD_ADDR}</html>");
        let v = validate_page("x-give.com", &html, &kws());
        assert_eq!(v.addresses.len(), 1);
    }

    #[test]
    fn annotated_addresses_are_checksummed() {
        let entries = vec![
            ("BTC".to_string(), GOOD_ADDR.to_string()),
            ("BTC".to_string(), "garbage".to_string()),
            (
                "ETH".to_string(),
                "0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed".to_string(),
            ),
            (
                "DOGE".to_string(),
                "DPofMBULBSwFIaAPYZ9bbR3ePM2TfWsZZ1".to_string(),
            ),
        ];
        let valid = validate_annotated_addresses(&entries);
        assert_eq!(valid.len(), 2, "BTC + ETH valid; garbage and DOGE rejected");
    }
}
