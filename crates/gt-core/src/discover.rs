//! Discoverability statistics (Section 4.2).

use crate::datasets::{TwitterDataset, YouTubeDataset};
use gt_social::TwitterSnapshot;
use gt_store::{StoreDecode, StoreEncode};
use gt_stream::keywords::SearchKeywords;
use gt_stream::monitor::MonitorReport;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Twitter tactics: how scam tweets reach audiences.
#[derive(
    Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub struct TwitterDiscoverability {
    pub tweets: usize,
    /// Fraction carrying at least one hashtag.
    pub hashtag_rate: f64,
    /// Fraction mentioning a user.
    pub mention_rate: f64,
    /// Fraction replying to another tweet.
    pub reply_rate: f64,
}

/// Compute the Twitter tactics table.
pub fn twitter_discoverability(
    dataset: &TwitterDataset,
    snapshot: &TwitterSnapshot,
) -> TwitterDiscoverability {
    let mut tweets = 0usize;
    let mut hashtags = 0usize;
    let mut mentions = 0usize;
    let mut replies = 0usize;
    for domain in &dataset.domains {
        for &id in &domain.tweets {
            let t = snapshot.tweet(id).expect("dataset tweet exists");
            tweets += 1;
            if !t.hashtags.is_empty() {
                hashtags += 1;
            }
            if !t.mentions.is_empty() {
                mentions += 1;
            }
            if t.reply_to.is_some() {
                replies += 1;
            }
        }
    }
    let n = tweets.max(1) as f64;
    TwitterDiscoverability {
        tweets,
        hashtag_rate: hashtags as f64 / n,
        mention_rate: mentions as f64 / n,
        reply_rate: replies as f64 / n,
    }
}

/// YouTube audience statistics.
#[derive(
    Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub struct YouTubeDiscoverability {
    pub streams: usize,
    /// Median subscribers across scam-hosting channels.
    pub channel_subscribers_median: u64,
    /// The largest channel seen.
    pub channel_subscribers_max: u64,
    /// Fraction of scam streams with a coin keyword in title,
    /// description or channel name.
    pub keyword_rate: f64,
}

/// Compute the YouTube audience stats from a monitoring report.
pub fn youtube_discoverability(
    dataset: &YouTubeDataset,
    report: &MonitorReport,
    keywords: &SearchKeywords,
) -> YouTubeDiscoverability {
    let observed: HashMap<_, _> = report.streams.iter().map(|s| (s.stream, s)).collect();
    let mut subs_by_channel: HashMap<gt_social::ChannelId, u64> = HashMap::new();
    let mut with_keyword = 0usize;
    let mut streams = 0usize;
    for &sid in &dataset.scam_streams {
        let Some(obs) = observed.get(&sid) else {
            continue;
        };
        streams += 1;
        subs_by_channel.insert(obs.channel, obs.channel_subscribers);
        if keywords.coins.matches(&obs.title)
            || keywords.coins.matches(&obs.description)
            || keywords.coins.matches(&obs.channel_name)
        {
            with_keyword += 1;
        }
    }
    let mut subs: Vec<u64> = subs_by_channel.values().copied().collect();
    subs.sort_unstable();
    YouTubeDiscoverability {
        streams,
        channel_subscribers_median: subs.get(subs.len() / 2).copied().unwrap_or(0),
        channel_subscribers_max: subs.last().copied().unwrap_or(0),
        keyword_rate: with_keyword as f64 / streams.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::build_twitter_dataset;
    use gt_sim::RngFactory;
    use gt_world::sites::DomainFactory;
    use gt_world::WorldConfig;

    #[test]
    fn twitter_rates_match_generation() {
        let config = WorldConfig::scaled(0.05);
        let factory = RngFactory::new(42);
        let mut snapshot = TwitterSnapshot::new();
        let mut df = DomainFactory::new();
        let world = gt_world::twitter_gen::generate(&config, &factory, &mut df, &mut snapshot);
        let dataset = build_twitter_dataset(&snapshot, &world.scam_db);
        let stats = twitter_discoverability(&dataset, &snapshot);
        assert!(stats.tweets > 1_000);
        assert!(
            (stats.hashtag_rate - 0.96).abs() < 0.02,
            "{}",
            stats.hashtag_rate
        );
        assert!(stats.mention_rate < 0.01);
        assert!(stats.reply_rate < 0.015);
    }
}
